"""Quickstart: infer per-link loss rates from end-to-end measurements.

Builds a 300-node probing tree, simulates a measurement campaign
(m = 30 training snapshots + 1 target snapshot of S = 1000 probes per
path, LLRD1 losses over a bursty Gilbert process), runs the two-phase
Loss Inference Algorithm and prints how well the inferred rates match
ground truth.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    LLRD1,
    LossInferenceAlgorithm,
    ProberConfig,
    ProbingSimulator,
    RoutingMatrix,
    build_paths,
    random_tree,
)
from repro.metrics import AccuracyReport, evaluate_location


def main() -> None:
    # 1. Topology: a random probing tree, beacon at the root, probing
    #    destinations at the leaves.
    topo = random_tree(num_nodes=300, max_branching=10, seed=7)
    paths = build_paths(topo.network, topo.beacons, topo.destinations)
    routing = RoutingMatrix.from_paths(paths)
    print(f"topology: {topo.summary()}")
    print(f"routing matrix: {routing.num_paths} paths x {routing.num_links} links "
          f"(rank {routing.rank()} -> first moments alone are unidentifiable)")

    # 2. Measurements: m+1 snapshots; 10% of links congested, held fixed
    #    for the campaign, realised by a bursty Gilbert process.
    config = ProberConfig(probes_per_snapshot=1000, congestion_probability=0.10)
    simulator = ProbingSimulator(
        paths, topo.network.num_links, model=LLRD1, config=config
    )
    campaign = simulator.run_campaign(31, routing, seed=11)

    # 3. Inference: phase 1 learns link variances from the first 30
    #    snapshots; phase 2 solves the reduced system on the 31st.
    lia = LossInferenceAlgorithm(routing)
    result = lia.run(campaign)

    # 4. Evaluation against the simulator's ground truth.
    target = campaign[-1]
    truth = target.virtual_congested(routing)
    metrics = evaluate_location(result.loss_rates, truth, routing, LLRD1.threshold)
    accuracy = AccuracyReport.compare(
        target.realized_virtual_loss_rates(routing), result.loss_rates
    )
    print(f"\ncongested links: {int(truth.sum())} actual, "
          f"{metrics.num_identified} identified")
    print(f"detection rate DR      = {metrics.detection_rate:.3f}")
    print(f"false positive rate    = {metrics.false_positive_rate:.3f}")
    print(f"abs error (median/max) = {accuracy.absolute_errors.median:.5f} / "
          f"{accuracy.absolute_errors.maximum:.5f}")
    print(f"error factor (median)  = {accuracy.error_factors.median:.3f}")

    worst = np.argsort(result.loss_rates)[-5:][::-1]
    print("\nfive lossiest inferred links:")
    for column in worst:
        vlink = routing.virtual_links[column]
        print(f"  column {column:>4} (physical {vlink.member_indices()}): "
              f"inferred loss {result.loss_rates[column]:.4f}, "
              f"actually congested: {bool(truth[column])}")


if __name__ == "__main__":
    main()
