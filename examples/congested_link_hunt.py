"""Congested-link localisation shoot-out: LIA vs SCFS vs greedy vs CLINK.

The Figure 5 story as a runnable comparison.  One tree topology, one
campaign; every algorithm gets the same target snapshot:

* SCFS and the greedy cover see only that snapshot (binary path states);
* CLINK additionally learns per-link congestion priors from the history;
* LIA learns second-order statistics from the history and — unlike all
  of the above — also returns *loss rates*, not just a congested set.

Run:  python examples/congested_link_hunt.py
"""

import numpy as np

from repro import (
    LLRD1,
    LossInferenceAlgorithm,
    ProberConfig,
    ProbingSimulator,
    RoutingMatrix,
    build_paths,
    random_tree,
)
from repro.inference import (
    clink_localize,
    learn_clink_priors,
    scfs_localize,
    tomo_localize,
)
from repro.metrics import detection_outcome, evaluate_location
from repro.utils.tables import TextTable


def main() -> None:
    topo = random_tree(num_nodes=400, seed=21)
    paths = build_paths(topo.network, topo.beacons, topo.destinations)
    routing = RoutingMatrix.from_paths(paths)

    config = ProberConfig(probes_per_snapshot=1000, congestion_probability=0.10)
    simulator = ProbingSimulator(
        paths, topo.network.num_links, model=LLRD1, config=config
    )
    campaign = simulator.run_campaign(41, routing, seed=22)
    training, target = campaign.split_training_target()
    truth = target.virtual_congested(routing)
    print(f"{topo.summary()}; {int(truth.sum())} links congested "
          f"in the target snapshot\n")

    table = TextTable(["algorithm", "uses history", "rates?", "DR", "FPR"])

    # LIA: full two-phase inference.
    lia = LossInferenceAlgorithm(routing)
    result = lia.run(campaign)
    outcome = evaluate_location(result.loss_rates, truth, routing, LLRD1.threshold)
    table.add_row(["LIA", "yes (2nd order)", "yes",
                   outcome.detection_rate, outcome.false_positive_rate])

    # SCFS: single snapshot, tree structure.
    scfs = scfs_localize(target, paths, routing, LLRD1.threshold)
    outcome = detection_outcome(scfs.as_mask(routing.num_links), truth)
    table.add_row(["SCFS", "no", "no",
                   outcome.detection_rate, outcome.false_positive_rate])

    # Greedy smallest-set cover: single snapshot, any topology.
    tomo = tomo_localize(target, paths, routing, LLRD1.threshold)
    outcome = detection_outcome(tomo.as_mask(routing.num_links), truth)
    table.add_row(["greedy cover", "no", "no",
                   outcome.detection_rate, outcome.false_positive_rate])

    # CLINK: learned congestion priors + weighted cover.
    model = learn_clink_priors(training, paths, LLRD1.threshold)
    clink = clink_localize(target, paths, routing, LLRD1.threshold, model)
    outcome = detection_outcome(clink.as_mask(routing.num_links), truth)
    table.add_row(["CLINK", "yes (1st order)", "no",
                   outcome.detection_rate, outcome.false_positive_rate])

    print(table.render())

    congested = np.flatnonzero(truth)[:5]
    print("\nonly LIA also quantifies the loss (first five congested links):")
    realized = target.realized_virtual_loss_rates(routing)
    for c in congested:
        print(f"  link column {c:>4}: realized {realized[c]:.4f}, "
              f"LIA inferred {result.loss_rates[c]:.4f}")


if __name__ == "__main__":
    main()
