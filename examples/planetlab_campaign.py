"""A full Internet-style measurement campaign (the Section 7 pipeline).

End to end, using every substrate the paper's PlanetLab deployment
needed:

1. a PlanetLab-like topology (campus sites behind a research backbone),
   with per-AS addressing and a synthetic BGP table;
2. topology *measurement* by simulated traceroute — some routers stay
   silent, some expose multiple interfaces, sr-ally merges them
   imperfectly — so LIA runs on an erroneous measured topology;
3. a probe schedule honouring the paper's 100 KB/s per-beacon cap;
4. churning congestion (per-link propensities: trouble-prone links
   congest repeatedly, Section 7.2.2 style);
5. LIA inference + the paper's indirect validation: inference/validation
   path split and the epsilon = 0.005 consistency test;
6. Table-3-style AS location of the inferred congested links.

Run:  python examples/planetlab_campaign.py
"""

import numpy as np

from repro import (
    LossInferenceAlgorithm,
    ProberConfig,
    ProbingSimulator,
    RoutingMatrix,
    build_paths,
    planetlab_like,
)
from repro.lossmodel import INTERNET
from repro.metrics import validate_against_paths
from repro.netsim import AsMapper, classify_congested_columns, measure_topology
from repro.probing import (
    MeasurementCampaign,
    ProbeScheduler,
    restrict_campaign,
    split_paths,
)

M_TRAINING = 40


def main() -> None:
    # -- 1. the real network (unknown to the measurement system) ----------
    topo = planetlab_like(num_sites=24, hosts_per_site=2, seed=3)
    true_paths = build_paths(topo.network, topo.beacons, topo.destinations)
    print(f"true network: {topo.summary()}")

    # -- 2. measured topology via traceroute + sr-ally --------------------
    measured = measure_topology(
        topo.network, true_paths, end_hosts=topo.end_hosts, recall=0.85, seed=5
    )
    print(measured.summary())
    routing = RoutingMatrix.from_paths(measured.paths)
    print(f"measured routing matrix: {routing.num_paths} paths x "
          f"{routing.num_links} links")

    # -- 3. probe scheduling under the per-beacon rate cap ----------------
    scheduler = ProbeScheduler()  # 40-byte probes, 10 ms apart, 100 KB/s cap
    schedule = scheduler.schedule_round(true_paths, seed=7)
    print(f"one measurement round takes {schedule.round_duration_s:.0f}s "
          f"({scheduler.max_parallel_paths} parallel paths per beacon)")

    # -- 4. the campaign: churning congestion over the TRUE network -------
    config = ProberConfig(
        probes_per_snapshot=1000,
        congestion_probability=0.08,
        truth_mode="propensity",
        propensity_range=(0.1, 0.7),
    )
    simulator = ProbingSimulator(
        true_paths, topo.network.num_links, model=INTERNET, config=config
    )
    true_campaign = simulator.run_campaign(
        M_TRAINING + 1, RoutingMatrix.from_paths(true_paths), seed=9
    )
    # The collector interprets the same measurements over the measured topology.
    campaign = MeasurementCampaign(
        routing=routing, snapshots=true_campaign.snapshots
    )

    # -- 5. inference + indirect validation (Section 7.2) ------------------
    split = split_paths(len(measured.paths), seed=11)
    inference_campaign, _, inference_routing = restrict_campaign(
        campaign, measured.paths, split.inference_rows
    )
    lia = LossInferenceAlgorithm(inference_routing)
    result = lia.run(inference_campaign)

    target = campaign[-1]
    validation_paths = [measured.paths[r] for r in split.validation_rows]
    consistency = validate_against_paths(
        result,
        inference_routing,
        validation_paths,
        target.path_transmission[list(split.validation_rows)],
    )
    print(f"\ninference half: {inference_routing.num_paths} paths; "
          f"validation half: {len(validation_paths)} paths")
    print(f"consistent validation paths (eps=0.005): "
          f"{100 * consistency.consistency_rate:.1f}%")

    # -- 6. where are the congested links? (Table 3 pipeline) --------------
    mapper, plan = AsMapper.from_topology(topo)
    full_result = LossInferenceAlgorithm(routing).run(campaign)
    for threshold in (0.04, 0.02, 0.01):
        columns = np.flatnonzero(full_result.loss_rates > threshold)
        if len(columns) == 0:
            print(f"t_l={threshold}: no congested links inferred")
            continue
        # Map measured columns back to true physical links for AS lookup.
        true_links = set()
        for column in columns:
            for member in routing.virtual_links[column].members:
                true_links.add(measured.true_link_of_measured[member.index])
        true_routing = RoutingMatrix.from_paths(true_paths)
        true_columns = sorted(
            {
                true_routing.column_of_physical(t)
                for t in true_links
                if true_routing.column_of_physical(t) is not None
            }
        )
        breakdown = classify_congested_columns(
            true_columns, true_routing, mapper, plan
        )
        print(f"t_l={threshold}: {breakdown.total} congested links, "
              f"{100 * breakdown.inter_fraction:.0f}% inter-AS / "
              f"{100 * breakdown.intra_fraction:.0f}% intra-AS")


if __name__ == "__main__":
    main()
