"""A tour of the paper's identifiability theory (Sections 2 and 4).

Walks through:

1. Figure 1 — first-order moments cannot identify link loss rates: two
   different assignments produce identical path measurements;
2. the augmented matrix A of Definition 1 for that example (printed in
   the paper) and why its full column rank rescues the *variances*;
3. Figure 2's two-beacon system (6 paths, 8 links, rank 5);
4. Theorem 1 checked empirically across every topology generator;
5. what breaks when Assumption T.2 (no route fluttering) fails.

Run:  python examples/identifiability_tour.py
"""

import numpy as np

from repro import RoutingMatrix, audit_identifiability, build_paths
from repro.core.augmented import augmented_matrix
from repro.topology import find_fluttering_pairs
from repro.topology.examples import (
    figure1_paths,
    figure1_rate_ambiguity,
    figure2_paths,
)
from repro.topology.generators import (
    barabasi_albert,
    dimes_like,
    hierarchical_bottom_up,
    hierarchical_top_down,
    planetlab_like,
    random_tree,
    waxman,
)


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    section("1. Figure 1: the ambiguity of first-order moments")
    net, paths = figure1_paths()
    routing = RoutingMatrix.from_paths(paths)
    print("routing matrix R (3 paths x 5 links):")
    print(routing.matrix)
    a, b = figure1_rate_ambiguity()
    R = routing.to_dense()
    products_a = np.exp(R @ routing.aggregate_log_rates(np.log(a)))
    products_b = np.exp(R @ routing.aggregate_log_rates(np.log(b)))
    print(f"assignment A (loss on root):   path rates {np.round(products_a, 3)}")
    print(f"assignment B (loss downstream): path rates {np.round(products_b, 3)}")
    print("-> identical measurements, different link rates: unidentifiable.")

    section("2. The augmented matrix A (Definition 1)")
    A = augmented_matrix(routing.matrix)
    print("rows R_i (x) R_j for i <= j:")
    print(A.astype(int))
    print(f"rank(R) = {routing.rank()} < 5 columns, "
          f"but rank(A) = {np.linalg.matrix_rank(A)} = 5:")
    print("-> the link VARIANCES are identifiable (Lemma 2 + Lemma 3).")

    section("3. Figure 2: the multi-beacon system")
    _, paths2 = figure2_paths()
    routing2 = RoutingMatrix.from_paths(paths2)
    report = audit_identifiability(routing2)
    print(report.summary())

    section("4. Theorem 1 across every generator")
    generators = [
        ("tree", lambda: random_tree(num_nodes=150, seed=1)),
        ("waxman", lambda: waxman(num_nodes=120, num_end_hosts=12, seed=1)),
        ("barabasi-albert",
         lambda: barabasi_albert(num_nodes=120, num_end_hosts=12, seed=1)),
        ("hierarchical-td",
         lambda: hierarchical_top_down(num_ases=6, routers_per_as=15,
                                       num_end_hosts=12, seed=1)),
        ("hierarchical-bu",
         lambda: hierarchical_bottom_up(num_nodes=120, num_end_hosts=12, seed=1)),
        ("planetlab", lambda: planetlab_like(num_sites=8, seed=1)),
        ("dimes", lambda: dimes_like(num_ases=25, num_hosts=12, seed=1)),
    ]
    for name, factory in generators:
        topo = factory()
        topo_paths = build_paths(topo.network, topo.beacons, topo.destinations)
        topo_routing = RoutingMatrix.from_paths(topo_paths)
        report = audit_identifiability(topo_routing, topo_paths)
        print(f"  {name:<16} rank(R)={report.routing_rank:>4}/{report.num_links:<4} "
              f"rank(A)={report.augmented_rank:>4}/{report.num_links:<4} "
              f"means: {str(report.means_identifiable):<5} "
              f"variances: {report.variances_identifiable}")

    section("5. When T.2 fails")
    from repro.topology.graph import Network, Path

    flutter_net = Network()
    e_a = flutter_net.add_link(0, 1)
    e_b1 = flutter_net.add_link(1, 2)
    e_b2 = flutter_net.add_link(1, 3)
    e_c1 = flutter_net.add_link(2, 4)
    e_c2 = flutter_net.add_link(3, 4)
    e_d = flutter_net.add_link(4, 5)
    p1 = Path(index=0, source=0, dest=5, links=(e_a, e_b1, e_c1, e_d))
    p2 = Path(index=1, source=0, dest=5, links=(e_a, e_b2, e_c2, e_d))
    print(f"fluttering pairs detected: {find_fluttering_pairs([p1, p2])}")
    print("-> the library removes one path of each fluttering pair before "
          "inference, as Section 3.1 prescribes.")


if __name__ == "__main__":
    main()
