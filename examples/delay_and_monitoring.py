"""The paper's two proposed extensions, running: delay tomography and
online anomaly detection (Conclusion section).

Part 1 — delay tomography: link delay *variances* are identifiable from
end-to-end delay covariances by the same Theorem-1 argument (delays add
over a path); removing the low-variance links and solving the centered
reduced system recovers each congested link's per-snapshot delay
deviation.

Part 2 — online monitoring: LIA wrapped as a streaming service with a
rolling training window, cheap path-level screening, and per-link
congestion onset/cleared events with durations.

Run:  python examples/delay_and_monitoring.py
"""

import numpy as np

from repro import (
    LLRD1,
    ProberConfig,
    ProbingSimulator,
    RoutingMatrix,
    build_paths,
    random_tree,
)
from repro.delay import DelayInferenceAlgorithm, DelayProbingSimulator
from repro.monitor import OnlineLossMonitor


def delay_tomography_demo() -> None:
    print("=== Part 1: delay tomography ===")
    topo = random_tree(num_nodes=200, seed=13)
    paths = build_paths(topo.network, topo.beacons, topo.destinations)
    routing = RoutingMatrix.from_paths(paths)

    simulator = DelayProbingSimulator(
        paths, topo.network.num_links, congestion_probability=0.08, seed=14
    )
    campaign = simulator.run_campaign(41, routing, seed=15)
    training, target = campaign.split_training_target()

    algorithm = DelayInferenceAlgorithm(routing)
    estimate = algorithm.learn_variances(training)
    result = algorithm.infer(target, estimate)

    queueing_cols = routing.aggregate_any(simulator.congested)
    print(f"links with queueing: {int(queueing_cols.sum())}; "
          f"kept by variance cut: {len(result.kept_columns)}")

    link_training = np.vstack(
        [s.virtual_link_delays(routing) for s in training.snapshots]
    )
    true_dev = target.virtual_link_delays(routing) - link_training.mean(axis=0)
    print("link | learned var (ms^2) | true deviation | inferred deviation")
    for column in result.kept_columns[:8]:
        print(f"  {column:>4} | {estimate.variances[column]:>14.1f} | "
              f"{true_dev[column]:>+11.3f} ms | "
              f"{result.delay_deviations[column]:>+11.3f} ms")


def monitoring_demo() -> None:
    print("\n=== Part 2: online anomaly detection ===")
    topo = random_tree(num_nodes=200, seed=23)
    paths = build_paths(topo.network, topo.beacons, topo.destinations)
    routing = RoutingMatrix.from_paths(paths)

    config = ProberConfig(probes_per_snapshot=600, congestion_probability=0.06)
    simulator = ProbingSimulator(
        paths, topo.network.num_links, model=LLRD1, config=config
    )

    monitor = OnlineLossMonitor(
        routing, window=12, refresh_interval=4, localize_always=True
    )

    # Phase A: a steady congested regime warms the window up.
    steady = simulator.run_campaign(16, routing, seed=24, truth_mode="fixed")
    for snapshot in steady.snapshots:
        report = monitor.observe(snapshot)
        for event in report.events:
            print(f"  {event}")

    print(f"currently congested links: {monitor.currently_congested()}")

    # Phase B: the network heals; the monitor emits 'cleared' events.
    from repro.lossmodel import SnapshotGroundTruth

    quiet = SnapshotGroundTruth(
        congested=np.zeros(topo.network.num_links, dtype=bool),
        loss_rates=np.zeros(topo.network.num_links),
    )
    print("network heals...")
    for seed in range(3):
        report = monitor.observe(
            simulator.run_snapshot(seed=500 + seed, truth=quiet)
        )
        for event in report.events:
            print(f"  {event}")
    print(f"currently congested links: {monitor.currently_congested()}")


if __name__ == "__main__":
    delay_tomography_demo()
    monitoring_demo()
