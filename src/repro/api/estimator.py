"""The unified Estimator protocol and its result/config types.

Before this seam existed every inference backend had its own calling
convention — ``LossInferenceAlgorithm.run(campaign)``, a near-duplicate
``DelayInferenceAlgorithm``, and three free functions
(``scfs_localize``/``clink_localize``/``tomo_localize``) with ad-hoc
signatures — so every consumer (experiments, CLI, monitor) hand-wired
its own loop.  The protocol collapses all of them to one shape::

    estimator = repro.api.get("lia")          # or "delay"/"scfs"/"clink"/"tomo"
    estimator.fit(training_campaign, paths=paths)
    result = estimator.predict(target_snapshot)     # -> InferenceResult
    results = estimator.predict_batch(window)       # -> [InferenceResult]

plus a declarative config round-trip: ``estimator.spec()`` returns an
:class:`EstimatorSpec` (JSON-safe method name + parameters) and
``repro.api.from_spec(spec)`` rebuilds an equivalent estimator.  A
distributed or streaming backend only needs to satisfy this protocol to
plug into every Scenario, experiment and CLI verb.

Adapters are free to narrow the campaign/snapshot types they accept (the
delay backend consumes :class:`~repro.delay.prober.DelayCampaign` /
``DelaySnapshot``); the protocol is duck-typed on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

#: The value semantics of an :class:`InferenceResult`.
RESULT_KINDS = ("rates", "binary", "delay")


class NotFittedError(RuntimeError):
    """``predict`` was called before ``fit``."""


@dataclass(frozen=True)
class EstimatorSpec:
    """Declarative, JSON-safe description of one estimator configuration.

    ``method`` is a registry key (see :mod:`repro.api.registry`);
    ``params`` maps constructor keyword arguments and must stay
    JSON-serialisable so a spec can ride inside a
    :class:`~repro.runner.TrialSpec`, a cache key, or a config file.
    ``label`` names the estimator inside a scenario (defaults to the
    method) so one scenario can run two configurations of one backend.
    """

    method: str
    params: Dict[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.method:
            raise ValueError("an estimator spec needs a method name")

    @property
    def display_label(self) -> str:
        return self.label if self.label is not None else self.method

    def build(self) -> "Estimator":
        """Instantiate through the registry (late import avoids a cycle)."""
        from repro.api.registry import get

        return get(self.method, **self.params)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"method": self.method, "params": dict(self.params)}
        if self.label is not None:
            payload["label"] = self.label
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EstimatorSpec":
        return cls(
            method=str(payload["method"]),
            params=dict(payload.get("params", {})),
            label=payload.get("label"),
        )


@dataclass(frozen=True)
class InferenceResult:
    """Uniform per-column output of any estimator.

    ``values`` always has one entry per routing-matrix column:

    * ``kind == "rates"`` — inferred loss rates (LIA);
    * ``kind == "binary"`` — the 0/1 congestion proxy of a boolean
      localiser (Table 1's point: these methods cannot estimate rates);
    * ``kind == "delay"`` — inferred delay deviations in ms.

    ``congested_columns`` carries the columns the *algorithm itself*
    flagged (binary localisers); rate estimators leave it ``None`` and
    callers threshold :attr:`values`.  ``raw`` keeps the backend-native
    result object (:class:`~repro.core.engine.LIAResult`,
    :class:`~repro.inference.base.LocalizationResult`, …) so existing
    metric plumbing keeps working unchanged.
    """

    method: str
    kind: str
    values: np.ndarray
    congested_columns: Optional[Tuple[int, ...]] = None
    raw: object = None

    def __post_init__(self) -> None:
        if self.kind not in RESULT_KINDS:
            raise ValueError(
                f"kind must be one of {RESULT_KINDS}, got {self.kind!r}"
            )
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError("values must be one-dimensional (one per column)")
        object.__setattr__(self, "values", values)

    @property
    def num_links(self) -> int:
        return int(self.values.shape[0])

    @property
    def loss_rates(self) -> np.ndarray:
        """Per-column loss rates (proxy values for binary localisers)."""
        if self.kind == "delay":
            raise ValueError("a delay result carries deviations, not loss rates")
        return self.values

    def congested_mask(self, threshold: Optional[float] = None) -> np.ndarray:
        """Boolean congestion mask.

        Binary localisers answer from their own picks; rate/delay
        estimators need an explicit *threshold* on :attr:`values`.
        """
        if self.congested_columns is not None:
            mask = np.zeros(self.num_links, dtype=bool)
            mask[list(self.congested_columns)] = True
            return mask
        if threshold is None:
            raise ValueError(
                f"a {self.kind!r} result needs an explicit threshold"
            )
        return self.values > threshold


@runtime_checkable
class Estimator(Protocol):
    """What every inference backend looks like to the rest of the system.

    Class attributes:

    ``name``
        the registry key (``"lia"``, ``"scfs"``, …);
    ``kind``
        the :data:`RESULT_KINDS` entry of its predictions;
    ``uses_training``
        whether ``fit`` actually learns from the campaign.  Single-
        snapshot baselines (SCFS, greedy cover) only bind topology
        context in ``fit``; a scenario sweeping the training-window
        length evaluates them once instead of once per window.
    """

    name: str
    kind: str
    uses_training: bool

    def fit(self, campaign, paths: Optional[Sequence] = None) -> "Estimator":
        """Learn from a training campaign; returns ``self`` for chaining.

        *paths* supplies the probing paths when the backend needs path
        structure (hop counts, per-beacon trees); campaign-only backends
        ignore it.
        """
        ...

    def predict(self, snapshot) -> InferenceResult:
        """Infer per-column performance for one snapshot."""
        ...

    def predict_batch(self, window: Sequence) -> List[InferenceResult]:
        """Infer a window of snapshots (backends batch where they can)."""
        ...

    def spec(self) -> EstimatorSpec:
        """The declarative configuration that rebuilds this estimator."""
        ...
