"""String-keyed registry of estimator backends.

The one place that maps method names to adapter classes::

    from repro.api import registry
    estimator = registry.get("lia", reduction_strategy="gap")
    registry.available()            # ("clink", "delay", "lia", "scfs", "tomo")

``register`` lets downstream code (a distributed backend, a notebook
prototype) plug in new estimators without touching this package; the CLI
(``repro infer --method`` / ``repro compare``) and
:class:`~repro.api.scenario.Scenario` dispatch exclusively through here.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Tuple, Type

from repro.api.adapters import (
    CLINKEstimator,
    DelayEstimator,
    LIAEstimator,
    SCFSEstimator,
    TomoEstimator,
)
from repro.api.estimator import Estimator, EstimatorSpec

_REGISTRY: Dict[str, Callable[..., Estimator]] = {
    LIAEstimator.name: LIAEstimator,
    DelayEstimator.name: DelayEstimator,
    SCFSEstimator.name: SCFSEstimator,
    CLINKEstimator.name: CLINKEstimator,
    TomoEstimator.name: TomoEstimator,
}
#: Guards registry mutation: the thread execution backend (and any
#: embedding service) may register estimators concurrently.
_REGISTRY_LOCK = threading.Lock()


def available() -> Tuple[str, ...]:
    """Registered method names, sorted."""
    return tuple(sorted(_REGISTRY))


def get(name: str, **params) -> Estimator:
    """Build a fresh estimator for *name* with the given parameters."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown estimator {name!r}; registered: {', '.join(available())}"
        ) from None
    return factory(**params)


def register(
    name: str, factory: Callable[..., Estimator], overwrite: bool = False
) -> None:
    """Add (or, with *overwrite*, replace) a backend under *name*."""
    if not name:
        raise ValueError("estimator name must be non-empty")
    with _REGISTRY_LOCK:
        if name in _REGISTRY and not overwrite:
            raise ValueError(
                f"estimator {name!r} already registered (pass overwrite=True)"
            )
        _REGISTRY[name] = factory


def unregister(name: str) -> None:
    """Remove a backend (built-ins included — tests restore them)."""
    with _REGISTRY_LOCK:
        _REGISTRY.pop(name, None)


def estimator_class(name: str) -> Type:
    """The registered factory itself (for ``from_spec`` classmethods)."""
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown estimator {name!r}; registered: {', '.join(available())}"
        )
    return _REGISTRY[name]  # type: ignore[return-value]


def from_spec(spec) -> Estimator:
    """Build an estimator from an :class:`EstimatorSpec` or its dict form."""
    if not isinstance(spec, EstimatorSpec):
        spec = EstimatorSpec.from_dict(spec)
    return get(spec.method, **spec.params)
