"""Declarative scenario pipeline: topology → probe → estimate → score.

A :class:`Scenario` is the whole evaluation loop every experiment module
used to hand-wire, as one reusable object::

    topology generator → fluttering cleanup → prober → estimator(s) → metrics

Declare the pieces, call :meth:`Scenario.run` with a seed, and get a
:class:`ScenarioResult` carrying per-estimator detection outcomes and
:class:`~repro.metrics.AccuracyReport`s.  The experiment modules phrase
their trial functions as scenario runs, so adding a topology knob, an
estimator, or a metric touches this module once instead of a dozen
trial loops.

Seed discipline matches the historical experiment wiring exactly: the
topology is generated with ``derive_seed(seed, topology_salt)`` and the
campaign with ``derive_seed(seed, campaign_salt)``, so rewired
experiments stay seed-for-seed identical to their pre-Scenario
payloads (pinned in ``tests/test_api.py``).

The stages are also usable à la carte — :meth:`Scenario.prepare`,
:meth:`Scenario.simulate` and :meth:`Scenario.evaluate` — for studies
that splice extra steps into the middle (fig9 inserts its simulated
traceroute measurement between topology and inference).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, is_dataclass
from types import SimpleNamespace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.api.estimator import EstimatorSpec, InferenceResult
from repro.lossmodel import INTERNET, LLRD1, LLRD2, LossRateModel
from repro.lossmodel.bernoulli import BernoulliProcess
from repro.lossmodel.congestion import CongestionLossProcess
from repro.lossmodel.gilbert import GilbertProcess
from repro.lossmodel.processes import LossProcess
from repro.netsim.sim.config import TrafficConfig
from repro.metrics import (
    AccuracyReport,
    DetectionOutcome,
    detection_outcome,
    evaluate_location,
)
from repro.probing import MeasurementCampaign, ProberConfig, ProbingSimulator
from repro.probing.snapshot import Snapshot
from repro.topology.prepare import PreparedTopology, prepare_topology
from repro.utils.rng import derive_seed

#: Named loss-rate models a serialised scenario may reference.
MODEL_REGISTRY: Dict[str, LossRateModel] = {
    LLRD1.name: LLRD1,
    LLRD2.name: LLRD2,
    INTERNET.name: INTERNET,
}


@dataclass
class EstimatorEvaluation:
    """One estimator's scored predictions over the target snapshots.

    ``num_training`` is the training-window length this evaluation used
    (``None`` for estimators that do not learn from history, evaluated
    once per scenario).  ``detections`` align with the targets that
    carried ground truth; ``accuracy`` compares inferred rates against
    the last target's realized per-column loss fractions and is ``None``
    for binary/delay estimators or truth-free campaigns.
    """

    spec: EstimatorSpec
    label: str
    num_training: Optional[int]
    results: List[InferenceResult]
    detections: List[DetectionOutcome] = field(default_factory=list)
    accuracy: Optional[AccuracyReport] = None

    @property
    def result(self) -> InferenceResult:
        """The prediction for the (last) target snapshot."""
        return self.results[-1]

    @property
    def detection(self) -> DetectionOutcome:
        """The detection outcome on the (last) scored target."""
        if not self.detections:
            raise ValueError(
                f"estimator {self.label!r} has no detection outcomes "
                "(targets carried no ground truth)"
            )
        return self.detections[-1]


@dataclass
class ScenarioResult:
    """Everything one scenario run produced, queryable per estimator."""

    scenario: "Scenario"
    prepared: PreparedTopology
    campaign: MeasurementCampaign
    targets: List[Snapshot]
    evaluations: List[EstimatorEvaluation]

    def evaluation(
        self, label: str, num_training: Optional[int] = None
    ) -> EstimatorEvaluation:
        """The evaluation for *label* (and window length, when swept)."""
        matches = [
            e
            for e in self.evaluations
            if e.label == label
            and (num_training is None or e.num_training == num_training)
        ]
        if not matches:
            raise KeyError(
                f"no evaluation for estimator {label!r}"
                + (f" at m={num_training}" if num_training is not None else "")
            )
        if len(matches) > 1:
            raise KeyError(
                f"estimator {label!r} was evaluated at several window "
                "lengths; pass num_training"
            )
        return matches[0]

    def labels(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for evaluation in self.evaluations:
            if evaluation.label not in seen:
                seen.append(evaluation.label)
        return tuple(seen)


@dataclass
class Scenario:
    """Declarative description of one evaluation pipeline.

    Parameters
    ----------
    topology, params:
        Generator kind (see :func:`repro.topology.prepare.make_topology`)
        and sizing (any object with ``tree_nodes``/``mesh_nodes``/
        ``num_end_hosts``; the experiment harness passes its
        ``ScaleParams`` presets).  ``params`` may stay ``None`` when a
        pre-built topology is passed to :meth:`run`.
    prober, model, process:
        Probing knobs (:class:`~repro.probing.ProberConfig`), the
        two-class loss-rate model, and optionally a non-default loss
        process.
    traffic:
        The :class:`~repro.netsim.sim.config.TrafficConfig` stage.  The
        default (``kind="analytic"``) keeps the historical behaviour;
        ``kind="congestion"`` swaps the loss process for a
        :class:`~repro.lossmodel.CongestionLossProcess` built over the
        prepared topology's probing paths, so drops emerge from queue
        overflow in the packet-level simulator.  Mutually exclusive
        with an explicit ``process``.
    estimators:
        The :class:`~repro.api.EstimatorSpec`s to fit and score.
    num_training, training_grid, num_targets:
        The campaign holds ``max(grid) + num_targets`` snapshots; each
        learning estimator is fitted on suffix windows
        ``snapshots[max_m - m : max_m]`` for every ``m`` in the grid
        (default grid: ``(num_training,)``) and scored on the trailing
        ``num_targets`` snapshots.
    topology_salt, campaign_salt:
        Sub-seed derivation indices (the historical per-experiment
        values; defaults match the common wiring).
    propensities, propensity_salt:
        Optional hook building explicit per-physical-link congestion
        propensities from the prepared topology (Table 3's inter-AS
        boost); called as ``propensities(prepared, derived_seed)``.
    """

    topology: str = "tree"
    params: Optional[object] = None
    prober: ProberConfig = field(default_factory=ProberConfig)
    model: LossRateModel = LLRD1
    process: Optional[LossProcess] = None
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    estimators: Tuple[EstimatorSpec, ...] = (EstimatorSpec("lia"),)
    num_training: int = 50
    training_grid: Optional[Tuple[int, ...]] = None
    num_targets: int = 1
    topology_salt: int = 0
    campaign_salt: int = 1
    propensities: Optional[
        Callable[[PreparedTopology, Optional[int]], np.ndarray]
    ] = None
    propensity_salt: int = 1

    def __post_init__(self) -> None:
        if self.num_targets < 1:
            raise ValueError("num_targets must be at least 1")
        if self.training_grid is not None and (
            not self.training_grid or min(self.training_grid) < 1
        ):
            raise ValueError("training_grid must hold positive window lengths")
        if self.training_grid is None and self.num_training < 1:
            raise ValueError("num_training must be at least 1")
        if not self.estimators:
            raise ValueError("a scenario needs at least one estimator")
        if self.traffic.is_congestion and self.process is not None:
            raise ValueError(
                "congestion traffic builds its own loss process; "
                "drop the explicit process= (or use analytic traffic)"
            )

    # -- derived sizes ---------------------------------------------------------

    @property
    def grid(self) -> Tuple[int, ...]:
        """Training-window lengths to evaluate, in declaration order."""
        if self.training_grid is not None:
            return tuple(int(m) for m in self.training_grid)
        return (int(self.num_training),)

    @property
    def campaign_length(self) -> int:
        """Snapshots one run simulates: longest window + targets."""
        return max(self.grid) + self.num_targets

    # -- pipeline stages -------------------------------------------------------

    def prepare(self, seed: Optional[int] = None) -> PreparedTopology:
        """Stage 1+2: topology generation and fluttering cleanup."""
        if self.params is None:
            raise ValueError(
                "scenario has no sizing params; pass prepared= to run()"
            )
        return prepare_topology(
            self.topology, self.params, derive_seed(seed, self.topology_salt)
        )

    def build_simulator(self, prepared: PreparedTopology) -> ProbingSimulator:
        """The prober over a prepared topology.

        With congestion traffic the loss process is constructed *here*,
        per prepared topology — the packet simulator is specific to the
        probing paths it must carry.
        """
        num_links = prepared.topology.network.num_links
        process = self.process
        if self.traffic.is_congestion:
            process = CongestionLossProcess(
                prepared.paths, num_links, traffic=self.traffic
            )
        return ProbingSimulator(
            prepared.paths,
            num_links,
            model=self.model,
            process=process,
            config=self.prober,
        )

    def simulate(
        self,
        prepared: PreparedTopology,
        seed: Optional[int] = None,
        campaign_seed: Optional[int] = None,
        length: Optional[int] = None,
    ) -> MeasurementCampaign:
        """Stage 3: run the probing campaign.

        *campaign_seed* bypasses the salt derivation (callers that manage
        their own seed streams); *length* overrides the campaign length
        (measurement-only studies).
        """
        if campaign_seed is None:
            campaign_seed = derive_seed(seed, self.campaign_salt)
        propensities = None
        if self.propensities is not None:
            propensities = self.propensities(
                prepared, derive_seed(seed, self.propensity_salt)
            )
        return self.build_simulator(prepared).run_campaign(
            length if length is not None else self.campaign_length,
            prepared.routing,
            seed=campaign_seed,
            propensities=propensities,
        )

    # -- estimation + scoring --------------------------------------------------

    def evaluate(
        self,
        prepared: PreparedTopology,
        campaign: MeasurementCampaign,
        target_consumer: Optional[
            Callable[[str, Optional[int], int, Snapshot, InferenceResult], None]
        ] = None,
    ) -> ScenarioResult:
        """Stages 4+5: fit/predict every estimator and score it.

        *target_consumer* streams multi-target batches: it is called as
        ``consumer(label, num_training, target_index, target, result)``
        for every scored target, in target order, and the returned
        evaluations then retain only the *last* result per window — so a
        long consecutive-snapshot study (the duration experiment, a
        monitoring replay) folds its per-target statistics incrementally
        instead of retaining every ``InferenceResult`` after scoring,
        matching the runner's streaming result-store memory model.  Note
        the batch solve itself is still one multi-RHS system (that is
        what makes it fast), so the per-target results do exist
        transiently while the window is scored; the consumer bounds what
        the *returned* ``ScenarioResult`` holds on to.
        """
        routing = prepared.routing
        max_m = len(campaign) - self.num_targets
        if max_m < 1:
            raise ValueError(
                f"campaign of {len(campaign)} snapshots cannot hold "
                f"{self.num_targets} targets plus a training window"
            )
        if max(self.grid) > max_m:
            raise ValueError(
                f"training window {max(self.grid)} exceeds the "
                f"{max_m} available training snapshots"
            )
        targets = list(campaign.snapshots[max_m:])
        evaluations: List[EstimatorEvaluation] = []
        for spec in self.estimators:
            estimator = spec.build()
            if getattr(estimator, "uses_training", True):
                for m in self.grid:
                    training = MeasurementCampaign(
                        routing=routing,
                        snapshots=campaign.snapshots[max_m - m : max_m],
                    )
                    estimator.fit(training, paths=prepared.paths)
                    evaluations.append(
                        self._score(
                            spec, estimator, m, targets, routing,
                            target_consumer,
                        )
                    )
            else:
                context = MeasurementCampaign(
                    routing=routing, snapshots=campaign.snapshots[:max_m]
                )
                estimator.fit(context, paths=prepared.paths)
                evaluations.append(
                    self._score(
                        spec, estimator, None, targets, routing,
                        target_consumer,
                    )
                )
        return ScenarioResult(
            scenario=self,
            prepared=prepared,
            campaign=campaign,
            targets=targets,
            evaluations=evaluations,
        )

    def _score(
        self,
        spec: EstimatorSpec,
        estimator,
        num_training: Optional[int],
        targets: Sequence[Snapshot],
        routing,
        target_consumer=None,
    ) -> EstimatorEvaluation:
        if len(targets) > 1:
            results = estimator.predict_batch(targets)
        else:
            results = [estimator.predict(targets[0])]
        return self._score_results(
            spec, num_training, targets, results, routing, target_consumer
        )

    def _score_results(
        self,
        spec: EstimatorSpec,
        num_training: Optional[int],
        targets: Sequence[Snapshot],
        results: List[InferenceResult],
        routing,
        target_consumer=None,
    ) -> EstimatorEvaluation:
        """Score predictions already in hand (the tail half of ``_score``).

        Split out so :func:`evaluate_forest` can run many trees' phase-2
        solves as one batched system and still score each tree through
        exactly the code path :meth:`evaluate` uses.
        """
        if target_consumer is not None:
            for index, (target, result) in enumerate(zip(targets, results)):
                target_consumer(
                    spec.display_label, num_training, index, target, result
                )
        detections: List[DetectionOutcome] = []
        for target, result in zip(targets, results):
            if target.truth is None:
                continue
            truth = target.virtual_congested(routing)
            if result.congested_columns is not None:
                detections.append(
                    detection_outcome(result.congested_mask(), truth)
                )
            elif result.kind == "rates":
                detections.append(
                    evaluate_location(
                        result.values, truth, routing, self.model.threshold
                    )
                )
        accuracy = None
        last_target, last_result = targets[-1], results[-1]
        if (
            last_result.kind == "rates"
            and last_target.realized_loss_fractions is not None
        ):
            accuracy = AccuracyReport.compare(
                last_target.realized_virtual_loss_rates(routing),
                last_result.values,
            )
        return EstimatorEvaluation(
            spec=spec,
            label=spec.display_label,
            num_training=num_training,
            # With a consumer the caller has already folded per-target
            # state; keep only the last result so memory stays flat in
            # the target count.
            results=results if target_consumer is None else [results[-1]],
            detections=detections,
            accuracy=accuracy,
        )

    # -- declarative round-trip ------------------------------------------------

    def spec(self) -> Dict[str, Any]:
        """JSON-safe declaration that :meth:`from_spec` rebuilds.

        Callable hooks (``propensities``) and hand-built custom loss
        processes have no declarative form and raise; the registry-backed
        pieces — model name, gilbert/bernoulli process, traffic config,
        estimator specs — serialise to plain dicts, so a scenario can
        ride inside a ``TrialSpec``, a cache key, or a config file.
        """
        if self.propensities is not None:
            raise ValueError(
                "a propensities hook is a callable and cannot be serialised"
            )
        if self.process is None:
            process: Optional[Dict[str, Any]] = None
        elif type(self.process) is GilbertProcess:
            process = {"kind": "gilbert", "stay_bad": self.process.stay_bad}
        elif type(self.process) is BernoulliProcess:
            process = {"kind": "bernoulli"}
        else:
            raise ValueError(
                f"loss process {type(self.process).__name__} has no "
                "declarative form (congestion traffic is declared via "
                "traffic=, not process=)"
            )
        if self.params is None:
            params: Optional[Dict[str, Any]] = None
        elif is_dataclass(self.params):
            params = asdict(self.params)
        else:
            params = dict(vars(self.params))
        model = (
            self.model.name
            if MODEL_REGISTRY.get(self.model.name) == self.model
            else asdict(self.model)
        )
        return {
            "topology": self.topology,
            "params": params,
            "prober": asdict(self.prober),
            "model": model,
            "process": process,
            "traffic": self.traffic.to_dict(),
            "estimators": [spec.to_dict() for spec in self.estimators],
            "num_training": self.num_training,
            "training_grid": (
                list(self.training_grid)
                if self.training_grid is not None
                else None
            ),
            "num_targets": self.num_targets,
            "topology_salt": self.topology_salt,
            "campaign_salt": self.campaign_salt,
            "propensity_salt": self.propensity_salt,
        }

    @classmethod
    def from_spec(cls, payload: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`spec` output (or parsed JSON)."""
        model_payload = payload.get("model", LLRD1.name)
        if isinstance(model_payload, str):
            if model_payload not in MODEL_REGISTRY:
                raise ValueError(
                    f"unknown loss-rate model {model_payload!r}; "
                    f"known: {sorted(MODEL_REGISTRY)}"
                )
            model = MODEL_REGISTRY[model_payload]
        else:
            fields = dict(model_payload)
            fields["good_range"] = tuple(fields["good_range"])
            fields["congested_range"] = tuple(fields["congested_range"])
            model = LossRateModel(**fields)
        process_payload = payload.get("process")
        if process_payload is None:
            process: Optional[LossProcess] = None
        else:
            kind = process_payload.get("kind")
            if kind == "gilbert":
                process = GilbertProcess(
                    stay_bad=process_payload.get("stay_bad", 0.35)
                )
            elif kind == "bernoulli":
                process = BernoulliProcess()
            else:
                raise ValueError(f"unknown loss process kind {kind!r}")
        prober_payload = dict(payload.get("prober", {}))
        if "propensity_range" in prober_payload:
            prober_payload["propensity_range"] = tuple(
                prober_payload["propensity_range"]
            )
        params_payload = payload.get("params")
        grid = payload.get("training_grid")
        return cls(
            topology=payload.get("topology", "tree"),
            params=(
                SimpleNamespace(**params_payload)
                if params_payload is not None
                else None
            ),
            prober=ProberConfig(**prober_payload),
            model=model,
            process=process,
            traffic=TrafficConfig.from_dict(payload.get("traffic", {})),
            estimators=tuple(
                EstimatorSpec.from_dict(e)
                for e in payload.get("estimators", [{"method": "lia"}])
            ),
            num_training=int(payload.get("num_training", 50)),
            training_grid=tuple(int(m) for m in grid) if grid else None,
            num_targets=int(payload.get("num_targets", 1)),
            topology_salt=int(payload.get("topology_salt", 0)),
            campaign_salt=int(payload.get("campaign_salt", 1)),
            propensity_salt=int(payload.get("propensity_salt", 1)),
        )

    # -- end to end ------------------------------------------------------------

    def run(
        self,
        seed: Optional[int] = None,
        prepared: Optional[PreparedTopology] = None,
        campaign: Optional[MeasurementCampaign] = None,
        campaign_seed: Optional[int] = None,
        target_consumer=None,
    ) -> ScenarioResult:
        """The full pipeline; stages already in hand can be passed in."""
        if prepared is None:
            prepared = self.prepare(seed)
        if campaign is None:
            campaign = self.simulate(prepared, seed, campaign_seed=campaign_seed)
        return self.evaluate(prepared, campaign, target_consumer=target_consumer)


def evaluate_forest(
    runs: Sequence[Tuple["Scenario", PreparedTopology, MeasurementCampaign]],
    target_consumer: Optional[
        Callable[[str, Optional[int], int, Snapshot, InferenceResult], None]
    ] = None,
) -> List[ScenarioResult]:
    """Evaluate many independent scenario runs with one batched LIA solve.

    The campaign-scale shape: a *forest* of small independent trees, each
    with its own (scenario, prepared topology, campaign) triple.  Fitting
    (phase 1) runs per tree exactly as :meth:`Scenario.evaluate` would,
    but the LIA phase-2 solves — one small triangular system per tree —
    are queued across the whole forest and dispatched as a single
    block-diagonal :func:`repro.core.engine.infer_many` call, which
    packs them into batched BLAS instead of a Python loop over trees.

    Byte-identity: ``infer_many``'s packed mode is bit-identical to a
    loop of ``engine.infer`` calls, and scoring goes through the same
    ``_score_results`` tail as the sequential path, so the returned
    :class:`ScenarioResult`\\ s equal ``[s.evaluate(p, c) for s, p, c in
    runs]`` exactly (pinned in ``tests/test_api.py``).  Only single-target
    LIA evaluations are batched; multi-target windows and non-LIA
    estimators fall through to the sequential scoring path unchanged.

    *target_consumer* has the same contract as in :meth:`Scenario.evaluate`
    and is invoked in run order, then estimator/window order within a run.
    """
    from repro.api.adapters import LIAEstimator
    from repro.core.engine import infer_many

    queued: List[tuple] = []  # (engine, snapshot, estimate) across all trees
    deferred: List[List[dict]] = []  # per-run scoring jobs, in order
    contexts: List[tuple] = []

    for scenario, prepared, campaign in runs:
        routing = prepared.routing
        max_m = len(campaign) - scenario.num_targets
        if max_m < 1:
            raise ValueError(
                f"campaign of {len(campaign)} snapshots cannot hold "
                f"{scenario.num_targets} targets plus a training window"
            )
        if max(scenario.grid) > max_m:
            raise ValueError(
                f"training window {max(scenario.grid)} exceeds the "
                f"{max_m} available training snapshots"
            )
        targets = list(campaign.snapshots[max_m:])
        jobs: List[dict] = []

        def queue(spec, estimator, num_training, targets=targets, jobs=jobs):
            if (
                isinstance(estimator, LIAEstimator)
                and len(targets) == 1
                and estimator._estimate is not None
            ):
                # Defer phase 2 into the forest-wide batched solve.  The
                # engine and estimate are captured *now*: the estimator
                # object is refitted for the next window, but each fit
                # produces a fresh estimate and the engine persists.
                index = len(queued)
                queued.append(
                    (
                        estimator._algorithm.engine,
                        targets[0],
                        estimator._estimate,
                    )
                )
                jobs.append(
                    {
                        "spec": spec,
                        "num_training": num_training,
                        "estimator": estimator,
                        "results": None,
                        "span": (index, index + 1),
                    }
                )
                return
            # Everything else scores through the sequential path.
            if len(targets) > 1:
                results = estimator.predict_batch(targets)
            else:
                results = [estimator.predict(targets[0])]
            jobs.append(
                {
                    "spec": spec,
                    "num_training": num_training,
                    "estimator": estimator,
                    "results": results,
                    "span": None,
                }
            )

        for spec in scenario.estimators:
            estimator = spec.build()
            if getattr(estimator, "uses_training", True):
                for m in scenario.grid:
                    training = MeasurementCampaign(
                        routing=routing,
                        snapshots=campaign.snapshots[max_m - m : max_m],
                    )
                    estimator.fit(training, paths=prepared.paths)
                    queue(spec, estimator, m)
            else:
                context = MeasurementCampaign(
                    routing=routing, snapshots=campaign.snapshots[:max_m]
                )
                estimator.fit(context, paths=prepared.paths)
                queue(spec, estimator, None)

        deferred.append(jobs)
        contexts.append((scenario, prepared, campaign, targets))

    batch = infer_many(queued) if queued else []

    scenario_results: List[ScenarioResult] = []
    for (scenario, prepared, campaign, targets), jobs in zip(contexts, deferred):
        evaluations: List[EstimatorEvaluation] = []
        for job in jobs:
            results = job["results"]
            if results is None:
                lo, hi = job["span"]
                estimator = job["estimator"]
                results = [
                    InferenceResult(
                        method=estimator.name,
                        kind=estimator.kind,
                        values=r.loss_rates,
                        raw=r,
                    )
                    for r in batch[lo:hi]
                ]
            evaluations.append(
                scenario._score_results(
                    job["spec"],
                    job["num_training"],
                    targets,
                    results,
                    prepared.routing,
                    target_consumer,
                )
            )
        scenario_results.append(
            ScenarioResult(
                scenario=scenario,
                prepared=prepared,
                campaign=campaign,
                targets=targets,
                evaluations=evaluations,
            )
        )
    return scenario_results
