"""repro.api — the unified estimator protocol and scenario pipeline.

One composable seam over every inference backend:

* :class:`Estimator` — ``fit(campaign) -> self`` /
  ``predict(snapshot) -> InferenceResult`` / ``predict_batch(window)``,
  plus a ``spec()``/``from_spec()`` config round-trip;
* :mod:`repro.api.registry` — string-keyed construction
  (``get("lia"|"delay"|"scfs"|"clink"|"tomo")``) and ``register`` for
  external backends;
* :class:`Scenario` — a declarative topology → prober → estimator(s) →
  metrics pipeline returning a :class:`ScenarioResult` with
  per-estimator accuracy reports;
* :class:`DistributedEstimator` — fans any estimator's
  ``predict_batch`` across a :class:`~repro.runner.ParallelRunner`
  backend (including ``remote``), one kept-column group per shard.

Quickstart::

    from repro.api import EstimatorSpec, Scenario, get
    from repro.experiments import scale_params

    scenario = Scenario(
        topology="tree",
        params=scale_params("tiny"),
        num_training=10,
        estimators=(EstimatorSpec("lia"), EstimatorSpec("scfs")),
    )
    outcome = scenario.run(seed=7)
    for label in outcome.labels():
        print(label, outcome.evaluation(label).detection.detection_rate)
"""

from repro.api.adapters import (
    CLINKEstimator,
    DelayEstimator,
    LIAEstimator,
    SCFSEstimator,
    TomoEstimator,
)
from repro.api.distributed import DistributedEstimator, distributed
from repro.api.estimator import (
    Estimator,
    EstimatorSpec,
    InferenceResult,
    NotFittedError,
)
from repro.api.registry import available, from_spec, get, register, unregister
from repro.api.scenario import (
    MODEL_REGISTRY,
    EstimatorEvaluation,
    Scenario,
    ScenarioResult,
    evaluate_forest,
)

__all__ = [
    "CLINKEstimator",
    "DelayEstimator",
    "DistributedEstimator",
    "Estimator",
    "EstimatorEvaluation",
    "EstimatorSpec",
    "InferenceResult",
    "LIAEstimator",
    "MODEL_REGISTRY",
    "NotFittedError",
    "SCFSEstimator",
    "Scenario",
    "ScenarioResult",
    "TomoEstimator",
    "available",
    "distributed",
    "evaluate_forest",
    "from_spec",
    "get",
    "register",
    "unregister",
]
