"""Distributed batch inference over the runner's execution backends.

:class:`DistributedEstimator` wraps any registry estimator and fans
``predict_batch`` out across a :class:`~repro.runner.ParallelRunner`
— including the ``remote`` backend, where each shard travels to a
``repro worker`` process on another machine.  The fan-out unit is the
same one :meth:`~repro.core.engine.InferenceEngine.infer_batch` batches
on: **one kept-column group per shard**.  Snapshots whose phase-2
reduction keeps the same column set share a factorization, so they stay
together on one worker; snapshots with different kept sets gain nothing
from co-location and are split apart.

Workers receive everything they need as one JSON params payload — the
training campaign as a :class:`~repro.io.serialization.CampaignDocument`
dict, the estimator's :class:`~repro.api.estimator.EstimatorSpec`, and
the raw target snapshots — and refit phase 1 from scratch.  Phase 1 is
deterministic, so every worker reconstructs the exact variance estimate
the coordinator used for grouping, and distributed results match a
local ``predict_batch`` to machine precision.  The price of the wire
trip is that :attr:`~repro.api.estimator.InferenceResult.raw` comes
back ``None``: backend-native result objects do not survive JSON.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.api.estimator import EstimatorSpec, InferenceResult, NotFittedError
from repro.io.serialization import (
    CampaignDocument,
    document_from_dict,
    document_to_dict,
)
from repro.probing.snapshot import Snapshot
from repro.runner import ParallelRunner, TrialSpec


def _snapshot_to_wire(snapshot: Snapshot) -> Dict[str, Any]:
    return {
        "num_probes": snapshot.num_probes,
        "path_transmission": snapshot.path_transmission.tolist(),
    }


def _snapshot_from_wire(payload: Dict[str, Any]) -> Snapshot:
    return Snapshot(
        path_transmission=np.asarray(
            payload["path_transmission"], dtype=np.float64
        ),
        num_probes=int(payload["num_probes"]),
    )


def _result_to_wire(result: InferenceResult) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "method": result.method,
        "kind": result.kind,
        "values": result.values.tolist(),
    }
    if result.congested_columns is not None:
        payload["congested_columns"] = list(result.congested_columns)
    return payload


def _result_from_wire(payload: Dict[str, Any]) -> InferenceResult:
    congested = payload.get("congested_columns")
    return InferenceResult(
        method=payload["method"],
        kind=payload["kind"],
        values=np.asarray(payload["values"], dtype=np.float64),
        congested_columns=(
            tuple(int(c) for c in congested) if congested is not None else None
        ),
    )


def _distributed_trial(spec: TrialSpec) -> List[Dict[str, Any]]:
    """One shard of a distributed ``predict_batch``: refit, then infer.

    Module-level on purpose: the process backend ships it by pickle and
    the remote backend by ``module:qualname`` reference, so it must be
    importable on the worker.
    """
    params = spec.params
    document = document_from_dict(params["document"])
    estimator = EstimatorSpec.from_dict(params["estimator"]).build()
    estimator.fit(document.campaign(), paths=document.paths)
    snapshots = [_snapshot_from_wire(s) for s in params["snapshots"]]
    return [_result_to_wire(r) for r in estimator.predict_batch(snapshots)]


class DistributedEstimator:
    """Fan one estimator's ``predict_batch`` across an execution backend.

    Parameters
    ----------
    base:
        The estimator configuration to distribute — an
        :class:`EstimatorSpec` (or its dict form).  A local copy is
        fitted for grouping; each shard rebuilds its own from the spec.
    runner:
        The :class:`~repro.runner.ParallelRunner` that executes the
        shards.  Must have ``shard_size=1`` so each kept-column group
        maps to exactly one shard.  ``None`` builds a serial runner
        (useful as a wire-format check: results must be identical).
    """

    uses_training = True

    def __init__(
        self,
        base: EstimatorSpec,
        runner: Optional[ParallelRunner] = None,
    ) -> None:
        if not isinstance(base, EstimatorSpec):
            base = EstimatorSpec.from_dict(base)
        if runner is None:
            runner = ParallelRunner(n_jobs=1)
        if runner.shard_size != 1:
            raise ValueError(
                "DistributedEstimator needs shard_size=1 so one kept-column "
                f"group maps to one shard, got {runner.shard_size}"
            )
        self.base = base
        self.runner = runner
        self._local = base.build()
        self._document_payload: Optional[Dict[str, Any]] = None

    @property
    def name(self) -> str:
        return self.base.method

    @property
    def kind(self) -> str:
        return self._local.kind

    def spec(self) -> EstimatorSpec:
        return self.base

    def fit(
        self, document: CampaignDocument, paths: Optional[Sequence] = None
    ) -> "DistributedEstimator":
        """Fit on a (serialisable) campaign document.

        Unlike the in-process adapters, the distributed wrapper takes
        the :class:`CampaignDocument`, not the campaign: workers must
        rebuild topology, paths and training snapshots from JSON, so the
        document is the natural unit.  *paths* is accepted for protocol
        compatibility and ignored — the document carries its own.
        """
        self._document_payload = document_to_dict(document)
        self._local.fit(document.campaign(), paths=document.paths)
        return self

    # -- grouping --------------------------------------------------------------

    def _group_key(self, snapshot: Snapshot) -> object:
        """The co-location key: kept-column set where the backend has one."""
        algorithm = getattr(self._local, "algorithm", None)
        engine = getattr(algorithm, "engine", None)
        estimate = getattr(self._local, "_estimate", None)
        if engine is not None and estimate is not None:
            return engine.reduce(estimate, snapshot.num_probes).key()
        # Binary localisers have no reduction; probe count is the only
        # thing that distinguishes snapshots structurally.
        return snapshot.num_probes

    def _group(self, window: Sequence[Snapshot]) -> List[List[int]]:
        groups: Dict[object, List[int]] = {}
        for index, snapshot in enumerate(window):
            groups.setdefault(self._group_key(snapshot), []).append(index)
        return list(groups.values())

    # -- inference -------------------------------------------------------------

    def predict(self, snapshot: Snapshot) -> InferenceResult:
        return self.predict_batch([snapshot])[0]

    def predict_batch(self, window: Sequence[Snapshot]) -> List[InferenceResult]:
        if self._document_payload is None:
            raise NotFittedError(
                "DistributedEstimator.predict called before fit()"
            )
        window = list(window)
        if not window:
            return []
        groups = self._group(window)
        estimator_payload = self.base.to_dict()
        specs = [
            TrialSpec(
                experiment=f"distributed/{self.base.method}",
                index=shard,
                # Phase 1 refits are deterministic; the seed only keys
                # the spec identity.  Results embed the full document,
                # so they are never worth persisting in a shard cache.
                seed=shard,
                params={
                    "document": self._document_payload,
                    "estimator": estimator_payload,
                    "snapshots": [
                        _snapshot_to_wire(window[i]) for i in indices
                    ],
                },
                cacheable=False,
            )
            for shard, indices in enumerate(groups)
        ]
        view = self.runner.run(
            f"distributed/{self.base.method}", _distributed_trial, specs
        )
        results: List[Optional[InferenceResult]] = [None] * len(window)
        for shard, indices in enumerate(groups):
            payloads = view[shard]
            for payload, index in zip(payloads, indices):
                results[index] = _result_from_wire(payload)
        return results  # type: ignore[return-value]


def distributed(
    base: EstimatorSpec, runner: Optional[ParallelRunner] = None
) -> DistributedEstimator:
    """Sugar: ``distributed(EstimatorSpec("lia"), runner).fit(doc)``."""
    return DistributedEstimator(base, runner=runner)
