"""Estimator-protocol adapters for the five inference backends.

Each adapter is a thin, state-holding binding of one backend to the
:class:`~repro.api.estimator.Estimator` shape.  The adapters own **no**
algorithmic code: ``fit``/``predict`` delegate to the exact call paths
the experiments used before the redesign (``tests/test_api.py`` pins
byte-for-byte equality), so routing an experiment through an adapter
cannot change its numbers.

Construction takes only statistical knobs (JSON-safe, round-tripped via
``spec()``); the topology binding — routing matrix, probing paths —
arrives with the first ``fit``.  Refitting on the same routing matrix
reuses the backend's warm caches (intersecting pairs, ``R*``
factorizations), which is what makes sweeping the training-window
length cheap.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.api.estimator import EstimatorSpec, InferenceResult, NotFittedError


class _EstimatorBase:
    """Shared plumbing: batch fallback, spec round-trip, fit checks."""

    name: str = ""
    kind: str = "rates"
    uses_training: bool = True

    def _spec_params(self) -> dict:
        raise NotImplementedError

    def spec(self) -> EstimatorSpec:
        return EstimatorSpec(method=self.name, params=self._spec_params())

    @classmethod
    def from_spec(cls, spec) -> "_EstimatorBase":
        """Rebuild from an :class:`EstimatorSpec` (or its dict form)."""
        if not isinstance(spec, EstimatorSpec):
            spec = EstimatorSpec.from_dict(spec)
        if spec.method != cls.name:
            raise ValueError(
                f"spec is for method {spec.method!r}, not {cls.name!r}"
            )
        return cls(**spec.params)

    def predict_batch(self, window: Sequence) -> List[InferenceResult]:
        return [self.predict(snapshot) for snapshot in window]

    def _require_fitted(self, attribute: str) -> None:
        if getattr(self, attribute, None) is None:
            raise NotFittedError(
                f"{type(self).__name__}.predict called before fit()"
            )


class LIAEstimator(_EstimatorBase):
    """The paper's Loss Inference Algorithm behind the protocol.

    ``fit`` runs phase 1 (variance learning) on the campaign; ``predict``
    runs phase 2 on one snapshot.  Refits over the same routing matrix
    share one :class:`~repro.core.engine.InferenceEngine`, so the
    intersecting-pairs structure is built once and kept-column
    factorizations are reused across training windows.
    """

    name = "lia"
    kind = "rates"
    uses_training = True

    def __init__(
        self,
        variance_method: str = "wls",
        reduction_strategy: str = "threshold",
        drop_negative: bool = True,
        floor: Optional[float] = None,
        congestion_threshold: float = 0.002,
        cutoff_scale: float = 16.0,
    ) -> None:
        self.variance_method = variance_method
        self.reduction_strategy = reduction_strategy
        self.drop_negative = drop_negative
        self.floor = floor
        self.congestion_threshold = congestion_threshold
        self.cutoff_scale = cutoff_scale
        self._algorithm = None
        self._estimate = None

    def _spec_params(self) -> dict:
        return {
            "variance_method": self.variance_method,
            "reduction_strategy": self.reduction_strategy,
            "drop_negative": self.drop_negative,
            "floor": self.floor,
            "congestion_threshold": self.congestion_threshold,
            "cutoff_scale": self.cutoff_scale,
        }

    @property
    def algorithm(self):
        """The bound :class:`~repro.core.lia.LossInferenceAlgorithm`."""
        return self._algorithm

    def fit(self, campaign, paths: Optional[Sequence] = None) -> "LIAEstimator":
        from repro.core.lia import LossInferenceAlgorithm

        if self._algorithm is None or self._algorithm.routing is not campaign.routing:
            self._algorithm = LossInferenceAlgorithm(
                campaign.routing,
                variance_method=self.variance_method,
                reduction_strategy=self.reduction_strategy,
                drop_negative=self.drop_negative,
                floor=self.floor,
                congestion_threshold=self.congestion_threshold,
                cutoff_scale=self.cutoff_scale,
            )
        self._estimate = self._algorithm.learn_variances(campaign)
        return self

    def predict(self, snapshot) -> InferenceResult:
        self._require_fitted("_estimate")
        result = self._algorithm.infer(snapshot, self._estimate)
        return InferenceResult(
            method=self.name, kind=self.kind,
            values=result.loss_rates, raw=result,
        )

    def predict_batch(self, window: Sequence) -> List[InferenceResult]:
        self._require_fitted("_estimate")
        results = self._algorithm.infer_batch(window, self._estimate)
        return [
            InferenceResult(
                method=self.name, kind=self.kind,
                values=r.loss_rates, raw=r,
            )
            for r in results
        ]


class DelayEstimator(_EstimatorBase):
    """Delay tomography (the LIA recipe on additive delays).

    Consumes :class:`~repro.delay.prober.DelayCampaign` /
    ``DelaySnapshot``; predictions carry per-column delay *deviations*
    from the training mean, in ms.
    """

    name = "delay"
    kind = "delay"
    uses_training = True

    def __init__(
        self, variance_cutoff_ms2: float = 1.0, variance_method: str = "wls"
    ) -> None:
        self.variance_cutoff_ms2 = variance_cutoff_ms2
        self.variance_method = variance_method
        self._algorithm = None
        self._estimate = None

    def _spec_params(self) -> dict:
        return {
            "variance_cutoff_ms2": self.variance_cutoff_ms2,
            "variance_method": self.variance_method,
        }

    @property
    def algorithm(self):
        """The bound :class:`~repro.delay.inference.DelayInferenceAlgorithm`."""
        return self._algorithm

    def fit(self, campaign, paths: Optional[Sequence] = None) -> "DelayEstimator":
        from repro.delay.inference import DelayInferenceAlgorithm

        if self._algorithm is None or self._algorithm.routing is not campaign.routing:
            self._algorithm = DelayInferenceAlgorithm(
                campaign.routing,
                variance_cutoff_ms2=self.variance_cutoff_ms2,
                variance_method=self.variance_method,
            )
        self._estimate = self._algorithm.learn_variances(campaign)
        return self

    def predict(self, snapshot) -> InferenceResult:
        self._require_fitted("_estimate")
        result = self._algorithm.infer(snapshot, self._estimate)
        return InferenceResult(
            method=self.name, kind=self.kind,
            values=result.delay_deviations, raw=result,
        )


class _BinaryLocalizerBase(_EstimatorBase):
    """Shared binding for the boolean congestion-location baselines."""

    kind = "binary"

    def __init__(self, link_threshold: float = 0.002) -> None:
        self.link_threshold = link_threshold
        self._routing = None
        self._paths = None

    def _spec_params(self) -> dict:
        return {"link_threshold": self.link_threshold}

    def _bind(self, campaign, paths: Optional[Sequence]) -> None:
        if paths is not None:
            self._paths = list(paths)
        self._routing = campaign.routing
        if self._paths is None:
            raise ValueError(
                f"{self.name} needs the probing paths: fit(campaign, paths=paths)"
            )

    def _localize(self, snapshot):
        raise NotImplementedError

    def fit(self, campaign, paths: Optional[Sequence] = None):
        self._bind(campaign, paths)
        return self

    def predict(self, snapshot) -> InferenceResult:
        self._require_fitted("_routing")
        localized = self._localize(snapshot)
        return InferenceResult(
            method=self.name,
            kind=self.kind,
            values=localized.loss_rate_proxy(self._routing),
            congested_columns=localized.congested_columns,
            raw=localized,
        )


class SCFSEstimator(_BinaryLocalizerBase):
    """Smallest Consistent Failure Set (Duffield 2006), per beacon tree.

    Uses one snapshot and no history — ``fit`` only binds topology
    context, hence ``uses_training = False``.
    """

    name = "scfs"
    uses_training = False

    def _localize(self, snapshot):
        from repro.inference.scfs import scfs_localize

        return scfs_localize(
            snapshot, self._paths, self._routing, self.link_threshold
        )


class TomoEstimator(_BinaryLocalizerBase):
    """Unweighted greedy smallest-set cover for general meshes."""

    name = "tomo"
    uses_training = False

    def _localize(self, snapshot):
        from repro.inference.tomo import tomo_localize

        return tomo_localize(
            snapshot, self._paths, self._routing, self.link_threshold
        )


class CLINKEstimator(_BinaryLocalizerBase):
    """CLINK-style MAP location with priors learned from the campaign."""

    name = "clink"
    uses_training = True

    def __init__(
        self, link_threshold: float = 0.002, smoothing: float = 1.0
    ) -> None:
        super().__init__(link_threshold=link_threshold)
        self.smoothing = smoothing
        self._model = None

    def _spec_params(self) -> dict:
        params = super()._spec_params()
        params["smoothing"] = self.smoothing
        return params

    def fit(self, campaign, paths: Optional[Sequence] = None) -> "CLINKEstimator":
        from repro.inference.clink import learn_clink_priors

        self._bind(campaign, paths)
        self._model = learn_clink_priors(
            campaign, self._paths, self.link_threshold, smoothing=self.smoothing
        )
        return self

    def _localize(self, snapshot):
        from repro.inference.clink import clink_localize

        self._require_fitted("_model")
        return clink_localize(
            snapshot, self._paths, self._routing, self.link_threshold, self._model
        )
