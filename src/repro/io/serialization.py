"""JSON (de)serialisation of topologies, paths and campaigns.

A real deployment measures with one toolchain and infers with another;
this module is the seam: a topology + path set + snapshot series can be
written to a single JSON document and loaded back into the exact objects
LIA consumes, so external measurement data (or archived campaigns) drive
the library without touching the simulators.

Format (documented, versioned)::

    {
      "format": "repro-campaign/1",
      "network": {"nodes": N, "links": [[tail, head], ...]},
      "beacons": [...], "destinations": [...],
      "paths": [{"source": s, "dest": d, "links": [link_index, ...]}, ...],
      "snapshots": [
         {"num_probes": S, "path_transmission": [...]},
         ...
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path as FilePath
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.probing.snapshot import MeasurementCampaign, Snapshot
from repro.topology.graph import Network, Path
from repro.topology.routing import RoutingMatrix

FORMAT_TAG = "repro-campaign/1"


@dataclass
class CampaignDocument:
    """Everything needed to run LIA, bundled for storage."""

    network: Network
    beacons: List[int]
    destinations: List[int]
    paths: List[Path]
    snapshots: List[Snapshot]

    def routing(self) -> RoutingMatrix:
        return RoutingMatrix.from_paths(self.paths)

    def campaign(self) -> MeasurementCampaign:
        return MeasurementCampaign(
            routing=self.routing(), snapshots=list(self.snapshots)
        )


def network_to_dict(network: Network) -> Dict:
    return {
        "nodes": network.num_nodes,
        "links": [[link.tail, link.head] for link in network.links],
    }


def network_from_dict(payload: Dict) -> Network:
    network = Network()
    for node in range(int(payload["nodes"])):
        network.add_node(node)
    for tail, head in payload["links"]:
        network.add_link(int(tail), int(head))
    return network


def paths_to_list(paths: Sequence[Path]) -> List[Dict]:
    return [
        {
            "source": p.source,
            "dest": p.dest,
            "links": list(p.link_indices()),
        }
        for p in paths
    ]


def paths_from_list(payload: Sequence[Dict], network: Network) -> List[Path]:
    paths: List[Path] = []
    for index, entry in enumerate(payload):
        links = tuple(network.link(int(i)) for i in entry["links"])
        paths.append(
            Path(
                index=index,
                source=int(entry["source"]),
                dest=int(entry["dest"]),
                links=links,
            )
        )
    return paths


def document_to_dict(document: CampaignDocument) -> Dict:
    return {
        "format": FORMAT_TAG,
        "network": network_to_dict(document.network),
        "beacons": list(document.beacons),
        "destinations": list(document.destinations),
        "paths": paths_to_list(document.paths),
        "snapshots": [
            {
                "num_probes": snap.num_probes,
                "path_transmission": snap.path_transmission.tolist(),
            }
            for snap in document.snapshots
        ],
    }


def document_from_dict(payload: Dict) -> CampaignDocument:
    tag = payload.get("format")
    if tag != FORMAT_TAG:
        raise ValueError(f"unsupported document format {tag!r}")
    network = network_from_dict(payload["network"])
    paths = paths_from_list(payload["paths"], network)
    snapshots = [
        Snapshot(
            path_transmission=np.asarray(
                entry["path_transmission"], dtype=np.float64
            ),
            num_probes=int(entry["num_probes"]),
        )
        for entry in payload["snapshots"]
    ]
    for snap in snapshots:
        if snap.num_paths != len(paths):
            raise ValueError("snapshot width does not match path count")
    return CampaignDocument(
        network=network,
        beacons=[int(b) for b in payload["beacons"]],
        destinations=[int(d) for d in payload["destinations"]],
        paths=paths,
        snapshots=snapshots,
    )


def save_campaign(
    document: CampaignDocument, path: Union[str, FilePath]
) -> None:
    """Write a campaign document as JSON."""
    with open(path, "w") as handle:
        json.dump(document_to_dict(document), handle)


def load_campaign(path: Union[str, FilePath]) -> CampaignDocument:
    """Read a campaign document written by :func:`save_campaign`."""
    with open(path) as handle:
        payload = json.load(handle)
    return document_from_dict(payload)
