"""Storage seam: JSON campaign documents for external measurement data."""

from repro.io.serialization import (
    CampaignDocument,
    document_from_dict,
    document_to_dict,
    load_campaign,
    network_from_dict,
    network_to_dict,
    paths_from_list,
    paths_to_list,
    save_campaign,
)

__all__ = [
    "CampaignDocument",
    "document_from_dict",
    "document_to_dict",
    "load_campaign",
    "network_from_dict",
    "network_to_dict",
    "paths_from_list",
    "paths_to_list",
    "save_campaign",
]
