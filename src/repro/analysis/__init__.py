"""``repro.analysis`` — project-invariant static analysis (reprolint).

A rule-based AST lint engine enforcing the invariants this repo's
runtime tests otherwise catch only after a violation ships:

* **determinism** — payload-affecting modules (anything transitively
  imported by ``repro.experiments``/``api``/``lossmodel``/``netsim``)
  use no process-global RNG, no wall-clock reads, no bare-set iteration;
* **registry sync** — static CLI choice tuples equal the runtime
  registries they mirror;
* **kernel-tier parity** — both kernel tiers implement every
  ``KERNEL_OPS`` op with the same signature, and ``@njit`` bodies avoid
  nopython-hostile constructs;
* **concurrency** — module-level registries/caches/globals are mutated
  under a lock (the ``thread`` backend shares the process).

Run it as ``repro lint [--format json] [paths]`` (CI blocks on
``repro lint src/``), or from Python::

    from repro.analysis import lint_paths
    report = lint_paths(["src"])
    assert report.exit_code == 0, report.findings

Suppress a finding per line with a justification comment::

    created = time.time()  # reprolint: disable=wall-clock -- metadata only

New rules subclass :class:`Rule`, yield :class:`Finding` objects and
call :func:`register_rule` — the registry mirrors ``repro.api.registry``.
The package is pure stdlib: linting never imports, let alone executes,
the code under analysis.
"""

from repro.analysis.base import (
    Rule,
    all_rules,
    available_rules,
    get_rule,
    register_rule,
    unregister_rule,
)
from repro.analysis.engine import LintReport, lint_paths, lint_project
from repro.analysis.findings import Finding, parse_suppressions
from repro.analysis.project import (
    PAYLOAD_ROOTS,
    ModuleInfo,
    Project,
    module_name_for,
)
from repro.analysis.report import render, render_json, render_markdown, render_text

__all__ = [
    "Finding",
    "LintReport",
    "ModuleInfo",
    "PAYLOAD_ROOTS",
    "Project",
    "Rule",
    "all_rules",
    "available_rules",
    "get_rule",
    "lint_paths",
    "lint_project",
    "module_name_for",
    "parse_suppressions",
    "register_rule",
    "render",
    "render_json",
    "render_markdown",
    "render_text",
    "unregister_rule",
]
