"""Registry-sync rule: static CLI choice mirrors must match registries.

``repro.cli`` (and ``repro.runner.args``) deliberately keep *static*
copies of each runtime registry's names so that building an argparse
parser never imports scipy or the netsim stack.  The price of a mirror
is drift; this rule pays it once, statically, for every mirror at
lint time instead of per-mirror runtime pin tests.

Each :class:`Mirror` names the tuple holding the static copy and the
registry it must equal.  Registries are read literally: a dict display
(string keys, or ``SomeClass.name`` attributes resolved through the
class body — following one ``from ... import`` hop inside the project)
plus any module-level ``register*("name", ...)`` calls.  A registry the
rule cannot statically resolve is itself a finding: these tables are
load-bearing, so they must stay analysable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.astutil import (
    class_str_attribute,
    constant_str_sequence,
    top_level_assignment,
)
from repro.analysis.base import Rule
from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project

__all__ = ["MIRRORS", "Mirror", "RegistrySyncRule"]


@dataclass(frozen=True)
class Mirror:
    """One static choice tuple and the registry it mirrors."""

    mirror_module: str
    mirror_name: str
    source_module: str
    source_name: str
    #: "tuple" = plain tuple of strings; "registry" = dict keys plus
    #: module-level register*() calls.
    source_kind: str = "tuple"


MIRRORS: Tuple[Mirror, ...] = (
    Mirror("repro.cli", "METHOD_CHOICES", "repro.api.registry",
           "_REGISTRY", "registry"),
    Mirror("repro.cli", "VARIANCE_SOLVER_CHOICES", "repro.core.variance",
           "VARIANCE_METHODS"),
    Mirror("repro.cli", "TRAFFIC_CHOICES", "repro.netsim.sim.config",
           "TRAFFIC_KINDS"),
    Mirror("repro.cli", "EXPERIMENT_CHOICES", "repro.experiments",
           "EXPERIMENTS", "registry"),
    Mirror("repro.cli", "SCALE_CHOICES", "repro.experiments.base",
           "SCALES"),
    Mirror("repro.cli", "KERNEL_TIER_CHOICES", "repro.core.kernels",
           "KERNEL_TIERS"),
    Mirror("repro.runner.args", "BACKEND_CHOICES", "repro.runner.backends",
           "_BACKENDS", "registry"),
)


class RegistrySyncRule(Rule):
    rule_id = "registry-sync"
    description = (
        "static CLI choice tuples must equal the registries they mirror "
        "(dict keys + register() calls), name for name"
    )

    def __init__(self, mirrors: Tuple[Mirror, ...] = MIRRORS) -> None:
        self.mirrors = mirrors

    def check_project(self, project: Project) -> Iterator[Finding]:
        for mirror in self.mirrors:
            yield from self._check_mirror(project, mirror)

    def _check_mirror(
        self, project: Project, mirror: Mirror
    ) -> Iterator[Finding]:
        holder = project.find_module(mirror.mirror_module)
        source = project.find_module(mirror.source_module)
        if holder is None or source is None:
            # Partial lint (single file): nothing to compare against.
            return
        assignment = top_level_assignment(holder.tree, mirror.mirror_name)
        if assignment is None:
            yield self.finding(
                holder,
                1,
                0,
                f"{mirror.mirror_module}.{mirror.mirror_name} is gone but "
                f"is the static mirror of "
                f"{mirror.source_module}.{mirror.source_name}",
            )
            return
        stmt, value = assignment
        declared = constant_str_sequence(value)
        if declared is None:
            yield self.finding(
                holder,
                stmt.lineno,
                stmt.col_offset,
                f"{mirror.mirror_name} must be a literal tuple/list of "
                "strings so the mirror stays statically checkable",
            )
            return
        if mirror.source_kind == "registry":
            names, problem = _registry_names(
                project, source, mirror.source_name
            )
        else:
            names, problem = _tuple_names(source, mirror.source_name)
        if problem is not None:
            yield self.finding(source, problem[0], 0, problem[1])
            return
        missing = sorted(set(names) - set(declared))
        extra = sorted(set(declared) - set(names))
        if missing or extra:
            detail = []
            if missing:
                detail.append(f"missing {', '.join(missing)}")
            if extra:
                detail.append(f"stale {', '.join(extra)}")
            yield self.finding(
                holder,
                stmt.lineno,
                stmt.col_offset,
                f"{mirror.mirror_name} drifted from "
                f"{mirror.source_module}.{mirror.source_name}: "
                f"{'; '.join(detail)}",
            )


def _tuple_names(
    source: ModuleInfo, name: str
) -> Tuple[Tuple[str, ...], Optional[Tuple[int, str]]]:
    assignment = top_level_assignment(source.tree, name)
    if assignment is None:
        return (), (1, f"registry tuple {name} not found in {source.name}")
    stmt, value = assignment
    names = constant_str_sequence(value)
    if names is None:
        return (), (
            stmt.lineno,
            f"{name} is not a literal tuple of strings; the registry-sync "
            "rule cannot verify its mirrors",
        )
    return names, None


def _registry_names(
    project: Project, source: ModuleInfo, name: str
) -> Tuple[Tuple[str, ...], Optional[Tuple[int, str]]]:
    """Keys of a registry dict plus module-level ``register*()`` calls."""
    assignment = top_level_assignment(source.tree, name)
    if assignment is None:
        return (), (1, f"registry dict {name} not found in {source.name}")
    stmt, value = assignment
    if not isinstance(value, ast.Dict):
        return (), (
            stmt.lineno,
            f"{name} is not a dict display; the registry-sync rule "
            "cannot statically read its keys",
        )
    names: List[str] = []
    for key in value.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            names.append(key.value)
            continue
        resolved = _resolve_name_attribute(project, source, key)
        if resolved is None:
            return (), (
                getattr(key, "lineno", stmt.lineno),
                f"cannot statically resolve a key of {name}; use a string "
                "literal or a Class.name attribute with a literal value",
            )
        names.append(resolved)
    for node in source.tree.body:
        call = node.value if isinstance(node, ast.Expr) else None
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id.startswith("register")
            and call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            names.append(call.args[0].value)
    return tuple(names), None


def _resolve_name_attribute(
    project: Project, source: ModuleInfo, key: Optional[ast.expr]
) -> Optional[str]:
    """Resolve a ``SomeClass.name`` registry key to its string value."""
    if not (
        isinstance(key, ast.Attribute) and isinstance(key.value, ast.Name)
    ):
        return None
    class_name, attribute = key.value.id, key.attr
    value = class_str_attribute(source.tree, class_name, attribute)
    if value is not None:
        return value
    # One import hop: `from repro.api.adapters import LIAEstimator`.
    for node in source.tree.body:
        if not (isinstance(node, ast.ImportFrom) and node.module):
            continue
        origins: Dict[str, str] = {
            (alias.asname or alias.name): alias.name for alias in node.names
        }
        if class_name not in origins:
            continue
        target = project.find_module(node.module)
        if target is None:
            return None
        return class_str_attribute(target.tree, origins[class_name], attribute)
    return None
