"""Determinism rules: payload modules must be seed-for-seed reproducible.

The repo's load-bearing contract — pinned at runtime by
``tests/test_runner.py``, ``tests/test_kernels.py`` and
``scripts/diff_result_stores.py`` — is that every experiment payload is
a pure function of its seeds: identical across reruns, worker counts,
execution backends and kernel tiers.  Three statically checkable ways
to break that:

``unseeded-random``
    calling the process-global RNGs (``np.random.rand``,
    ``random.random``, ...) or constructing a generator without a seed
    (``np.random.default_rng()``).  All randomness must flow from an
    explicit seed threaded through the call tree.
``wall-clock``
    reading wall-clock time (``time.time()``, ``datetime.now()``): the
    value differs per run and, cached into a payload, breaks byte
    identity.  ``time.perf_counter()`` is exempt — duration
    measurement is what the timing experiment exists to do.
``set-iteration``
    materialising or iterating a bare ``set`` where order can escape
    into results: set hash order is stable within one process but not a
    contract across versions/machines.  Wrap in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_name, import_bindings
from repro.analysis.base import Rule
from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project

__all__ = ["SetIterationRule", "UnseededRandomRule", "WallClockRule"]

#: numpy.random names that are fine *when given a seed argument*.
_SEEDED_FACTORIES = {
    "default_rng",
    "Generator",
    "MT19937",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "RandomState",
    "SFC64",
    "SeedSequence",
}

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}


class UnseededRandomRule(Rule):
    rule_id = "unseeded-random"
    description = (
        "no process-global or unseeded RNG (np.random.*, random.*, "
        "default_rng()) in payload-affecting modules"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        if not project.is_payload(module):
            return
        bindings = import_bindings(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, bindings)
            if name is None:
                continue
            if name.startswith("numpy.random."):
                leaf = name.rsplit(".", 1)[1]
                if leaf in _SEEDED_FACTORIES:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            f"{leaf}() built without a seed; thread an "
                            "explicit seed or SeedSequence through instead",
                        )
                else:
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"np.random.{leaf} uses the process-global RNG; "
                        "use a Generator from np.random.default_rng(seed)",
                    )
            elif name.startswith("random.") and name.count(".") == 1:
                leaf = name.rsplit(".", 1)[1]
                if leaf == "Random" and (node.args or node.keywords):
                    continue
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"random.{leaf} draws from the process-global stdlib "
                    "RNG; use a seeded random.Random or numpy Generator",
                )


class WallClockRule(Rule):
    rule_id = "wall-clock"
    description = (
        "no wall-clock reads (time.time, datetime.now) in "
        "payload-affecting modules; perf_counter is exempt"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        if not project.is_payload(module):
            return
        bindings = import_bindings(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, bindings)
            if name in _WALL_CLOCK:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"{name}() reads the wall clock; payloads must not "
                    "depend on when a run happened "
                    "(time.perf_counter is fine for durations)",
                )


def _is_bare_set(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class SetIterationRule(Rule):
    rule_id = "set-iteration"
    description = (
        "no iteration over bare sets where order can reach payload "
        "data; wrap in sorted(...)"
    )

    #: Builtins that materialise iteration order into an ordered result.
    _ORDER_SINKS = ("list", "tuple", "enumerate", "iter", "next")

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        if not project.is_payload(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and _is_bare_set(node.iter):
                yield self._order_finding(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for comp in node.generators:
                    if _is_bare_set(comp.iter):
                        yield self._order_finding(module, comp.iter)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._ORDER_SINKS
                and node.args
                and _is_bare_set(node.args[0])
            ):
                yield self._order_finding(module, node.args[0])

    def _order_finding(self, module: ModuleInfo, node: ast.expr) -> Finding:
        return self.finding(
            module,
            node.lineno,
            node.col_offset,
            "iteration order of a bare set escapes into an ordered "
            "result; wrap the set in sorted(...)",
        )
