"""Kernel-tier parity rules: both tiers implement every ``KERNEL_OPS`` op.

``repro.core.kernels`` promises that the numpy and numba tiers are
interchangeable: every op named in ``KERNEL_OPS`` exists in both
backend modules with the same signature (or is explicitly declared
absent with ``op = None``, the way the numpy tier opts out of the fused
``gram_matvec``).  Runtime tests prove the *arithmetic* agrees; this
rule proves the *surface* agrees before anything runs — deleting a
backend function or renaming a parameter fails the lint, not a
campaign three layers up.

``njit-unsupported`` complements it: ``@njit`` bodies must avoid
constructs numba's nopython mode rejects (dict/set comprehensions,
f-strings) — those fail at first call, which for ``cache=True`` kernels
can be deep inside a worker process.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.astutil import (
    constant_str_sequence,
    decorator_names,
    import_bindings,
    top_level_assignment,
)
from repro.analysis.base import Rule
from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project

__all__ = ["KernelTierParityRule", "NjitConstructsRule"]

_KERNELS_PACKAGE = "repro.core.kernels"
_BACKEND_MODULES = (
    "repro.core.kernels.numpy_backend",
    "repro.core.kernels.numba_backend",
)


def _function_signatures(tree: ast.Module) -> Dict[str, List[str]]:
    """Top-level function name -> positional parameter names."""
    signatures: Dict[str, List[str]] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            names = [a.arg for a in args.posonlyargs] + [
                a.arg for a in args.args
            ]
            signatures[node.name] = names
    return signatures


def _none_assignments(tree: ast.Module) -> Dict[str, int]:
    """Names explicitly assigned ``None`` at module level -> line."""
    nones: Dict[str, int] = {}
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not (isinstance(value, ast.Constant) and value.value is None):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                nones[target.id] = node.lineno
    return nones


class KernelTierParityRule(Rule):
    rule_id = "kernel-parity"
    description = (
        "every KERNEL_OPS entry exists in both kernel backend modules "
        "with identical parameter names (or an explicit `op = None`)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        package = project.find_module(_KERNELS_PACKAGE)
        if package is None:
            return
        assignment = top_level_assignment(package.tree, "KERNEL_OPS")
        if assignment is None:
            yield self.finding(
                package, 1, 0,
                "KERNEL_OPS tuple not found; the kernel registry contract "
                "must stay statically visible",
            )
            return
        stmt, value = assignment
        ops = constant_str_sequence(value)
        if ops is None:
            yield self.finding(
                package, stmt.lineno, 0,
                "KERNEL_OPS must be a literal tuple of op-name strings",
            )
            return
        backends: List[Tuple[ModuleInfo, Dict[str, List[str]], Dict[str, int]]] = []
        for name in _BACKEND_MODULES:
            module = project.find_module(name)
            if module is None:
                yield self.finding(
                    package, stmt.lineno, 0,
                    f"kernel backend module {name} is missing from the "
                    "project; both tiers must exist",
                )
                continue
            backends.append(
                (module, _function_signatures(module.tree),
                 _none_assignments(module.tree))
            )
        for op in ops:
            implemented: List[Tuple[ModuleInfo, List[str]]] = []
            for module, functions, nones in backends:
                if op in functions:
                    implemented.append((module, functions[op]))
                elif op not in nones:
                    yield self.finding(
                        module, 1, 0,
                        f"kernel op {op!r} from KERNEL_OPS has no function "
                        f"in {module.name} (declare `{op} = None` if this "
                        "tier intentionally opts out)",
                    )
            if len(implemented) == 2 and implemented[0][1] != implemented[1][1]:
                first, second = implemented
                yield self.finding(
                    second[0], 1, 0,
                    f"kernel op {op!r} signature drifted between tiers: "
                    f"{first[0].name} takes ({', '.join(first[1])}), "
                    f"{second[0].name} takes ({', '.join(second[1])})",
                )


#: Constructs numba's nopython mode rejects, by AST node type.
_UNSUPPORTED = (
    (ast.DictComp, "dict comprehension"),
    (ast.SetComp, "set comprehension"),
    (ast.JoinedStr, "f-string"),
)


class NjitConstructsRule(Rule):
    rule_id = "njit-unsupported"
    description = (
        "@njit function bodies must avoid constructs nopython mode "
        "rejects (dict/set comprehensions, f-strings)"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        bindings = import_bindings(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            decorators = decorator_names(node, bindings)
            if not any(
                name in ("numba.njit", "numba.jit") for name in decorators
            ):
                continue
            for inner in ast.walk(node):
                for node_type, label in _UNSUPPORTED:
                    if isinstance(inner, node_type):
                        yield self.finding(
                            module,
                            inner.lineno,
                            inner.col_offset,
                            f"{label} inside @njit function "
                            f"{node.name!r} fails to compile in nopython "
                            "mode (first call, possibly in a worker)",
                        )
