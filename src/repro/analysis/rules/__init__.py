"""Built-in rules: importing this package registers all of them.

Four families, eight rules, each targeting a failure mode this repo has
actually shipped fixes for (see CHANGES.md PRs 6–9):

========================  ====================================================
``unseeded-random``       process-global / unseeded RNG in payload modules
``wall-clock``            ``time.time()`` & friends in payload modules
``set-iteration``         bare-set iteration order escaping into results
``registry-sync``         static CLI choice tuples vs runtime registries
``kernel-parity``         KERNEL_OPS implemented in both kernel tiers
``njit-unsupported``      nopython-hostile constructs in ``@njit`` bodies
``unlocked-global``       module globals rebound outside a lock
``unlocked-mutation``     module containers mutated outside a lock
========================  ====================================================
"""

from __future__ import annotations

from repro.analysis.base import available_rules, register_rule
from repro.analysis.rules.concurrency import (
    ContainerMutationRule,
    GlobalRebindRule,
)
from repro.analysis.rules.determinism import (
    SetIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.rules.kernel_parity import (
    KernelTierParityRule,
    NjitConstructsRule,
)
from repro.analysis.rules.registry_sync import RegistrySyncRule

__all__ = [
    "ContainerMutationRule",
    "GlobalRebindRule",
    "KernelTierParityRule",
    "NjitConstructsRule",
    "RegistrySyncRule",
    "SetIterationRule",
    "UnseededRandomRule",
    "WallClockRule",
]

_BUILTINS = (
    UnseededRandomRule,
    WallClockRule,
    SetIterationRule,
    RegistrySyncRule,
    KernelTierParityRule,
    NjitConstructsRule,
    GlobalRebindRule,
    ContainerMutationRule,
)

for _rule_class in _BUILTINS:
    if _rule_class.rule_id not in available_rules():
        register_rule(_rule_class())
del _rule_class
