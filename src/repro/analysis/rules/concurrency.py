"""Concurrency rules: module-level mutable state wants a lock.

The ``thread`` :class:`~repro.runner.backends.ExecutionBackend` (and the
planned asyncio monitoring service) run trials concurrently *inside one
process*, so every module-level registry, cache and tier switch is
shared state.  Two statically checkable hazards:

``unlocked-global``
    a function rebinds a module global (``global x; x = ...``) outside
    a ``with <module-level lock>:`` block.  Tier switches
    (``set_kernel_tier``) and cache invalidation
    (``invalidate_forest_plans``) are the canonical cases.
``unlocked-mutation``
    a function mutates a module-level container (``_REGISTRY[k] = v``,
    ``_plans.move_to_end(...)``, ``cache.clear()``) outside a lock.

A mutation is considered guarded when it executes under ``with <lock>``
where ``<lock>`` is a module-level ``threading.Lock()`` / ``RLock()`` /
``Condition()`` (or ``multiprocessing`` equivalent).  Genuinely
single-writer seams (import-time memoisation, idempotent caches) should
carry a ``# reprolint: disable=...`` comment documenting that contract
— the suppression *is* the documentation.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Set, Tuple

from repro.analysis.astutil import dotted_name, import_bindings
from repro.analysis.base import Rule
from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project

__all__ = ["GlobalRebindRule", "ContainerMutationRule"]

_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
}

_CONTAINER_FACTORIES = {
    "dict",
    "list",
    "set",
    "collections.OrderedDict",
    "collections.defaultdict",
    "collections.deque",
    "collections.Counter",
}

#: Methods that mutate a container in place.
_MUTATORS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "update",
}


def _module_locks(module: ModuleInfo) -> Set[str]:
    bindings = import_bindings(module.tree)
    locks: Set[str] = set()
    for node in module.tree.body:
        targets: List[ast.expr] = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Call):
            continue
        name = dotted_name(value.func, bindings)
        if name not in _LOCK_FACTORIES:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                locks.add(target.id)
    return locks


def _module_containers(module: ModuleInfo) -> Set[str]:
    bindings = import_bindings(module.tree)
    containers: Set[str] = set()
    for node in module.tree.body:
        targets: List[ast.expr] = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        mutable = isinstance(
            value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
                    ast.SetComp)
        )
        if not mutable and isinstance(value, ast.Call):
            mutable = dotted_name(value.func, bindings) in _CONTAINER_FACTORIES
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                containers.add(target.id)
    return containers


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _global_names(function: ast.stmt) -> Set[str]:
    """Names this function body declares ``global`` (nested defs excluded)."""
    names: Set[str] = set()

    def visit(stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.Global):
                names.update(stmt.names)
            for block in _sub_blocks(stmt):
                visit(block)

    visit(function.body)
    return names


def _sub_blocks(stmt: ast.stmt) -> List[List[ast.stmt]]:
    blocks: List[List[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        value = getattr(stmt, attr, None)
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            blocks.append(value)
    for handler in getattr(stmt, "handlers", []):
        blocks.append(handler.body)
    for case in getattr(stmt, "cases", []):
        blocks.append(case.body)
    return blocks


def _scan(
    stmts: Sequence[ast.stmt], locks: Set[str], under_lock: bool
) -> Iterator[Tuple[ast.stmt, bool]]:
    """Yield (simple statement, guarded?) pairs, tracking ``with`` locks."""
    for stmt in stmts:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            guarded = under_lock or any(
                isinstance(item.context_expr, ast.Name)
                and item.context_expr.id in locks
                for item in stmt.items
            )
            yield from _scan(stmt.body, locks, guarded)
            continue
        blocks = _sub_blocks(stmt)
        if blocks:
            # Compound statement: header expressions (if/while tests, for
            # iterables) are scanned as synthetic simple statements so a
            # mutating call in a header is still seen; bodies recurse.
            for attr in ("test", "iter", "subject"):
                value = getattr(stmt, attr, None)
                if isinstance(value, ast.expr):
                    yield ast.copy_location(ast.Expr(value=value), stmt), under_lock
            for block in blocks:
                yield from _scan(block, locks, under_lock)
        else:
            yield stmt, under_lock


class GlobalRebindRule(Rule):
    rule_id = "unlocked-global"
    description = (
        "functions rebinding module globals (`global x; x = ...`) must "
        "hold a module-level lock (the thread backend shares the process)"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        locks = _module_locks(module)
        for function in _functions(module.tree):
            declared = _global_names(function)
            if not declared:
                continue
            for stmt, guarded in _scan(function.body, locks, False):
                if guarded:
                    continue
                for target in _assigned_names(stmt):
                    if target in declared:
                        yield self.finding(
                            module,
                            stmt.lineno,
                            stmt.col_offset,
                            f"global {target!r} rebound outside a lock in "
                            f"{function.name}(); guard it with a module "
                            "threading.Lock or document the single-writer "
                            "contract in a suppression",
                        )


def _assigned_names(stmt: ast.stmt) -> List[str]:
    names: List[str] = []
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(
                element.id
                for element in target.elts
                if isinstance(element, ast.Name)
            )
    return names


class ContainerMutationRule(Rule):
    rule_id = "unlocked-mutation"
    description = (
        "module-level containers (registries, caches) must be mutated "
        "under a module-level lock"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        containers = _module_containers(module)
        if not containers:
            return
        locks = _module_locks(module)
        for function in _functions(module.tree):
            # Names shadowed by parameters are locals, not module state.
            shadowed = {
                arg.arg
                for arg in (
                    function.args.posonlyargs
                    + function.args.args
                    + function.args.kwonlyargs
                )
            }
            visible = containers - shadowed
            if not visible:
                continue
            for stmt, guarded in _scan(function.body, locks, False):
                if guarded:
                    continue
                for node, name in _mutations(stmt, visible):
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"module-level container {name!r} mutated outside "
                        f"a lock in {function.name}(); guard it with a "
                        "module threading.Lock or document the "
                        "single-writer contract in a suppression",
                    )


def _mutations(
    stmt: ast.stmt, containers: Set[str]
) -> Iterator[Tuple[ast.AST, str]]:
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            name = _subscript_base(target)
            if name in containers:
                yield target, name
    elif isinstance(stmt, ast.AugAssign):
        name = _subscript_base(stmt.target)
        if name in containers:
            yield stmt.target, name
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            name = _subscript_base(target)
            if name in containers:
                yield target, name
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in containers
            and node.func.attr in _MUTATORS
        ):
            yield node, node.func.value.id


def _subscript_base(node: ast.expr) -> str:
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
        return node.value.id
    return ""
