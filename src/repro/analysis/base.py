"""The :class:`Rule` protocol and the string-keyed rule registry.

Mirrors the ``repro.api.registry`` idiom: concrete rules register under
a stable ``rule_id`` (the id users write in ``# reprolint: disable=``
comments), downstream code can plug in project-specific rules with
:func:`register_rule`, and the engine dispatches exclusively through
:func:`all_rules`.  Registry mutation is lock-guarded — the same
concurrency contract the ``unlocked-mutation`` rule enforces on every
other registry in the tree.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, ClassVar, Dict, Iterable, Iterator, Tuple

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.project import ModuleInfo, Project

__all__ = [
    "Rule",
    "all_rules",
    "available_rules",
    "get_rule",
    "register_rule",
    "unregister_rule",
]


class Rule:
    """One named invariant checked against the parse tree.

    Subclasses set ``rule_id``/``description`` and override
    :meth:`check_module` (called once per parsed file) and/or
    :meth:`check_project` (called once per lint run, for cross-file
    invariants like registry mirrors).  Both yield :class:`Finding`\\ s;
    the engine applies suppressions afterwards, so rules never need to
    read comments.
    """

    rule_id: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def check_module(
        self, module: "ModuleInfo", project: "Project"
    ) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "Project") -> Iterator[Finding]:
        return iter(())

    def finding(
        self, module: "ModuleInfo", line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=module.display_path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
        )


_RULES: Dict[str, Rule] = {}
_RULES_LOCK = threading.Lock()


def register_rule(rule: Rule, overwrite: bool = False) -> None:
    """Add (or, with *overwrite*, replace) a rule under its ``rule_id``."""
    if not rule.rule_id:
        raise ValueError("rule_id must be non-empty")
    with _RULES_LOCK:
        if rule.rule_id in _RULES and not overwrite:
            raise ValueError(
                f"rule {rule.rule_id!r} already registered (pass overwrite=True)"
            )
        _RULES[rule.rule_id] = rule


def unregister_rule(rule_id: str) -> None:
    """Remove a rule (built-ins included — tests restore them)."""
    with _RULES_LOCK:
        _RULES.pop(rule_id, None)


def available_rules() -> Tuple[str, ...]:
    """Registered rule ids, sorted."""
    with _RULES_LOCK:
        return tuple(sorted(_RULES))


def get_rule(rule_id: str) -> Rule:
    with _RULES_LOCK:
        try:
            return _RULES[rule_id]
        except KeyError:
            raise ValueError(
                f"unknown rule {rule_id!r}; registered: "
                f"{', '.join(sorted(_RULES))}"
            ) from None


def all_rules(only: Iterable[str] = ()) -> Tuple[Rule, ...]:
    """Every registered rule (or the *only* subset), id-sorted."""
    wanted = tuple(only)
    if wanted:
        return tuple(get_rule(rule_id) for rule_id in sorted(wanted))
    with _RULES_LOCK:
        return tuple(_RULES[rule_id] for rule_id in sorted(_RULES))
