"""The :class:`Finding` record and per-line suppression directives.

A finding is one rule violation anchored to a file/line/column; the
engine sorts findings into a stable (path, line, col, rule) order so
lint output is deterministic run to run — the linter holds itself to
the same determinism bar it enforces.

Suppressions are per-line comments::

    value = time.time()  # reprolint: disable=wall-clock -- cache metadata

    # reprolint: disable=unlocked-global -- single-writer: import time only
    _cache = compute()

An inline directive suppresses findings on its own line; a directive on
a comment-only line suppresses findings on the next line (for
statements too long to carry the comment).  ``disable=all`` suppresses
every rule.  Text after ``--`` is the human justification and is kept
out of the rule-id list.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass, field
from typing import Dict, FrozenSet, List, Mapping

__all__ = [
    "Finding",
    "SUPPRESS_ALL",
    "parse_suppressions",
]

#: Wildcard rule id accepted in ``disable=`` lists.
SUPPRESS_ALL = "all"

_DIRECTIVE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str = field(compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location()}: {self.rule_id}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def parse_suppressions(source: str) -> Mapping[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule ids suppressed on them."""
    table: Dict[int, List[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        ids = []
        for token in match.group(1).split(","):
            # "--" starts the justification; drop it and everything after.
            token = token.split("--")[0].strip()
            if token:
                ids.append(token)
        if not ids:
            continue
        # A comment-only line guards the statement on the next line.
        target = lineno + 1 if text.strip().startswith("#") else lineno
        table.setdefault(target, []).extend(ids)
    return {line: frozenset(ids) for line, ids in table.items()}
