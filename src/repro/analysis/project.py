"""The project model the rules run against: parsed modules + import graph.

A :class:`Project` is built from paths (files or directories), parses
every ``.py`` file once, maps each file to its dotted module name by
walking up through ``__init__.py`` packages, and derives the *payload
closure*: the set of modules whose behaviour can reach an experiment
payload.  Determinism rules only fire inside that closure — a test
helper calling ``random.random()`` is nobody's business; the same call
in a module imported by ``repro.experiments`` corrupts seed-for-seed
reproducibility.

The closure is computed statically from import statements:

* every module under one of :data:`PAYLOAD_ROOTS` is payload-affecting;
* so is everything those modules (transitively) import;
* a file *outside* any package (scripts, examples) is treated as a
  payload entrypoint when it imports anything from the ``repro``
  package — its output *is* the payload.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.findings import parse_suppressions

__all__ = [
    "ModuleInfo",
    "PAYLOAD_ROOTS",
    "Project",
    "module_name_for",
]

#: Packages whose (transitive) imports feed experiment payloads.
PAYLOAD_ROOTS = (
    "repro.experiments",
    "repro.api",
    "repro.lossmodel",
    "repro.netsim",
)


def module_name_for(path: Path) -> Tuple[str, bool]:
    """Dotted module name for *path* and whether it is a package.

    Walks up while the parent directory is a package (``__init__.py``),
    so ``src/repro/core/engine.py`` maps to ``repro.core.engine``
    wherever the tree is checked out.  A free-standing script maps to
    its bare stem.
    """
    is_package = path.name == "__init__.py"
    parts: List[str] = []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    parts.reverse()
    if not is_package:
        parts.append(path.stem)
    if not parts:
        parts = [path.stem]
    return ".".join(parts), is_package


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    name: str
    is_package: bool
    source: str
    tree: ast.Module
    suppressions: Mapping[int, FrozenSet[str]]

    @property
    def display_path(self) -> str:
        """The path findings are reported under (relative when possible)."""
        try:
            return os.path.relpath(self.path)
        except ValueError:  # pragma: no cover - different drive on windows
            return str(self.path)


def _matches_root(name: str, roots: Sequence[str]) -> bool:
    return any(name == root or name.startswith(root + ".") for root in roots)


@dataclass
class Project:
    """Every parsed module plus the derived import graph."""

    modules: List[ModuleInfo]
    payload_roots: Tuple[str, ...] = PAYLOAD_ROOTS
    _by_name: Dict[str, ModuleInfo] = field(init=False, repr=False)
    _imports: Dict[str, Tuple[str, ...]] = field(init=False, repr=False)
    _payload: Optional[FrozenSet[str]] = field(
        init=False, repr=False, default=None
    )

    def __post_init__(self) -> None:
        self._by_name = {info.name: info for info in self.modules}
        self._imports = {}

    def find_module(self, name: str) -> Optional[ModuleInfo]:
        return self._by_name.get(name)

    def imported_names(self, info: ModuleInfo) -> Tuple[str, ...]:
        """Raw dotted names *info* imports (relative imports resolved)."""
        cached = self._imports.get(info.name)
        if cached is not None:
            return cached
        names: List[str] = []
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                names.extend(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(info, node)
                if base:
                    names.append(base)
                    names.extend(f"{base}.{alias.name}" for alias in node.names)
        resolved = tuple(names)
        self._imports[info.name] = resolved
        return resolved

    @staticmethod
    def _resolve_from(info: ModuleInfo, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        package = info.name.split(".")
        if not info.is_package:
            package = package[:-1]
        hops = node.level - 1
        if hops:
            package = package[: len(package) - hops] if hops < len(package) else []
        parts = package + ([node.module] if node.module else [])
        return ".".join(parts)

    def import_edges(self, info: ModuleInfo) -> Tuple[str, ...]:
        """Imports of *info* restricted to modules present in the project."""
        edges = []
        for name in self.imported_names(info):
            if name in self._by_name:
                edges.append(name)
        return tuple(edges)

    def payload_modules(self) -> FrozenSet[str]:
        """Names of in-project modules inside the payload closure."""
        if self._payload is not None:
            return self._payload
        queue = sorted(
            name
            for name in self._by_name
            if _matches_root(name, self.payload_roots)
        )
        reached: Set[str] = set(queue)
        while queue:
            current = queue.pop()
            info = self._by_name[current]
            for edge in self.import_edges(info):
                if edge not in reached:
                    reached.add(edge)
                    queue.append(edge)
        self._payload = frozenset(reached)
        return self._payload

    def is_payload(self, info: ModuleInfo) -> bool:
        """Whether determinism rules apply to *info* (see module docstring)."""
        if _matches_root(info.name, self.payload_roots):
            return True
        if info.name in self.payload_modules():
            return True
        if "." not in info.name and not info.is_package:
            # Free-standing script/example: a payload entrypoint as soon
            # as it drives the repro package.
            return any(
                name == "repro" or name.startswith("repro.")
                for name in self.imported_names(info)
            )
        return False


def iter_source_files(paths: Sequence[os.PathLike]) -> List[Path]:
    """All ``.py`` files under *paths*, sorted, caches skipped."""
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if any(
                part.startswith(".") and part not in (".", "..")
                for part in candidate.parts
            ):
                continue
            seen.setdefault(candidate.resolve(), None)
    return list(seen)


def load_module(path: Path) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises SyntaxError)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    name, is_package = module_name_for(path)
    return ModuleInfo(
        path=path,
        name=name,
        is_package=is_package,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )
