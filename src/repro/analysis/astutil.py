"""Shared AST helpers: import bindings, dotted-name resolution, literals.

Every rule works on the parse tree alone — nothing here imports or
executes project code, which is what lets the linter check modules
whose runtime dependencies (scipy, numba) may be absent.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "call_name",
    "class_str_attribute",
    "constant_str_sequence",
    "decorator_names",
    "dotted_name",
    "import_bindings",
    "top_level_assignment",
]


def import_bindings(tree: ast.Module) -> Dict[str, str]:
    """Map local names introduced by imports to their dotted origins.

    ``import numpy as np`` binds ``np -> numpy``; ``import numpy.random``
    binds ``numpy -> numpy``; ``from numpy import random as npr`` binds
    ``npr -> numpy.random``; ``from time import time`` binds
    ``time -> time.time``.  Relative imports are skipped — the rules
    that need them resolve modules through the project, not here.
    """
    bindings: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bindings[alias.asname] = alias.name
                else:
                    bindings[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                bindings[local] = f"{node.module}.{alias.name}"
    return bindings


def dotted_name(
    node: ast.AST, bindings: Optional[Dict[str, str]] = None
) -> Optional[str]:
    """The dotted path of a Name/Attribute chain, resolved through imports.

    ``np.random.rand`` with ``np -> numpy`` resolves to
    ``numpy.random.rand``.  Returns None for anything that is not a
    plain attribute chain rooted at a name (calls, subscripts, ...).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    if bindings and root in bindings:
        root = bindings[root]
    parts.append(root)
    return ".".join(reversed(parts))


def call_name(
    node: ast.Call, bindings: Optional[Dict[str, str]] = None
) -> Optional[str]:
    """Dotted path of a call target (see :func:`dotted_name`)."""
    return dotted_name(node.func, bindings)


def decorator_names(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    bindings: Optional[Dict[str, str]] = None,
) -> Tuple[str, ...]:
    """Dotted names of decorators, unwrapping calls (``@njit(cache=True)``)."""
    names = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target, bindings)
        if name is not None:
            names.append(name)
    return tuple(names)


def top_level_assignment(
    tree: ast.Module, name: str
) -> Optional[Tuple[ast.stmt, ast.expr]]:
    """The last module-level assignment to *name* and its value node."""
    found: Optional[Tuple[ast.stmt, ast.expr]] = None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    found = (node, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and node.target.id == name:
                found = (node, node.value)
    return found


def constant_str_sequence(value: ast.expr) -> Optional[Tuple[str, ...]]:
    """The strings of a tuple/list display of constants, else None."""
    if not isinstance(value, (ast.Tuple, ast.List)):
        return None
    items: List[str] = []
    for element in value.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        items.append(element.value)
    return tuple(items)


def class_str_attribute(
    tree: ast.Module, class_name: str, attribute: str
) -> Optional[str]:
    """The string constant ``attribute`` assigned in ``class class_name``."""
    for node in tree.body:
        if not (isinstance(node, ast.ClassDef) and node.name == class_name):
            continue
        for stmt in node.body:
            targets: Sequence[ast.expr] = ()
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == attribute
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    return value.value
    return None
