"""Argparse front end for ``repro lint`` and ``scripts/run_reprolint.py``.

Kept separate from :mod:`repro.cli` so the linter can run standalone
(``python -m repro.analysis.cli src``) without pulling in numpy — the
analysis package is pure stdlib.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.engine import lint_paths
from repro.analysis.report import FORMATS, render, render_markdown

__all__ = ["build_parser", "main", "run_lint"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Project-invariant static analysis: determinism, registry "
            "sync, kernel-tier parity, concurrency (repro.analysis)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE_ID",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--summary-file",
        default=None,
        help=(
            "append a markdown summary of the run to this file "
            "(CI passes $GITHUB_STEP_SUMMARY)"
        ),
    )
    return parser


def run_lint(
    paths: List[str],
    fmt: str = "text",
    rule_ids: Optional[List[str]] = None,
    summary_file: Optional[str] = None,
) -> int:
    """Lint *paths*; print the report; return the process exit code."""
    from repro.analysis.base import all_rules

    import repro.analysis.rules  # noqa: F401 - registers the built-ins

    try:
        rules = all_rules(rule_ids or ())
        report = lint_paths(paths, rules)
    except (FileNotFoundError, ValueError) as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    print(render(report, fmt))
    if summary_file:
        with open(summary_file, "a", encoding="utf-8") as handle:
            handle.write(render_markdown(report))
    return report.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        from repro.analysis.base import all_rules

        import repro.analysis.rules  # noqa: F401

        for rule in all_rules():
            print(f"{rule.rule_id}: {rule.description}")
        return 0
    return run_lint(
        args.paths,
        fmt=args.format,
        rule_ids=args.rule,
        summary_file=args.summary_file,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via scripts/
    sys.exit(main())
