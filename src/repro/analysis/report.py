"""Reporters: render a :class:`LintReport` as text, JSON, or markdown.

Text is the human/terminal format (one ``path:line:col: rule: message``
per finding plus a summary line); JSON is the machine format CI parses;
markdown feeds ``$GITHUB_STEP_SUMMARY`` so findings show up on the run
page without digging through logs.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintReport

__all__ = ["FORMATS", "render", "render_json", "render_markdown", "render_text"]

FORMATS = ("text", "json")


def render_text(report: LintReport) -> str:
    lines = [finding.render() for finding in report.findings]
    summary = (
        f"{len(report.findings)} finding(s) "
        f"({len(report.suppressed)} suppressed) in {report.files} file(s)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def render(report: LintReport, fmt: str) -> str:
    if fmt == "json":
        return render_json(report)
    if fmt == "text":
        return render_text(report)
    raise ValueError(f"unknown format {fmt!r}; choose one of {FORMATS}")


def render_markdown(report: LintReport) -> str:
    """A step-summary table: findings if any, else a green one-liner."""
    if not report.findings:
        return (
            f"**reprolint: clean** — {report.files} files, "
            f"{len(report.rules)} rules, "
            f"{len(report.suppressed)} documented suppression(s)\n"
        )
    lines = [
        f"**reprolint: {len(report.findings)} finding(s)** "
        f"in {report.files} files",
        "",
        "| location | rule | message |",
        "| --- | --- | --- |",
    ]
    for finding in report.findings:
        message = finding.message.replace("|", "\\|")
        lines.append(f"| `{finding.location()}` | {finding.rule_id} | {message} |")
    lines.append("")
    return "\n".join(lines)
