"""The lint engine: build a project, run every rule, apply suppressions.

:func:`lint_paths` is the one entry point the CLI, the CI wrapper and
the tests share.  The engine is deliberately boring: parse everything,
run file-scope rules per module and project-scope rules once, drop
findings whose line carries a matching ``# reprolint: disable=``
directive, sort what's left.  Unparseable files surface as
``syntax-error`` findings rather than crashing the run — a broken file
is exactly when you want the linter to keep going.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.analysis.base import Rule, all_rules
from repro.analysis.findings import SUPPRESS_ALL, Finding
from repro.analysis.project import (
    ModuleInfo,
    Project,
    iter_source_files,
    load_module,
)

__all__ = ["LintReport", "lint_paths", "lint_project"]


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files: int = 0
    rules: Tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        return {
            "files": self.files,
            "rules": list(self.rules),
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
        }


def build_project(paths: Sequence[os.PathLike]) -> Tuple[Project, List[Finding]]:
    """Parse every file under *paths*; syntax errors become findings."""
    modules: List[ModuleInfo] = []
    errors: List[Finding] = []
    for path in iter_source_files(paths):
        try:
            modules.append(load_module(path))
        except SyntaxError as error:
            errors.append(
                Finding(
                    path=os.path.relpath(path),
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    rule_id="syntax-error",
                    message=f"file does not parse: {error.msg}",
                )
            )
    return Project(modules), errors


def lint_project(
    project: Project,
    rules: Sequence[Rule] = (),
    extra_findings: Iterable[Finding] = (),
) -> LintReport:
    """Run *rules* (default: every registered rule) over *project*."""
    active = tuple(rules) or all_rules()
    raw: List[Finding] = list(extra_findings)
    for rule in active:
        raw.extend(rule.check_project(project))
        for module in project.modules:
            raw.extend(rule.check_module(module, project))

    by_path = {module.display_path: module for module in project.modules}
    report = LintReport(
        files=len(project.modules),
        rules=tuple(rule.rule_id for rule in active),
    )
    for finding in sorted(set(raw)):
        module = by_path.get(finding.path)
        suppressed_ids = (
            module.suppressions.get(finding.line, frozenset())
            if module is not None
            else frozenset()
        )
        if finding.rule_id in suppressed_ids or SUPPRESS_ALL in suppressed_ids:
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report


def lint_paths(
    paths: Sequence[os.PathLike], rules: Sequence[Rule] = ()
) -> LintReport:
    """Parse *paths* and lint them; the one-call entry point."""
    # Importing the rules package registers the built-in rules.
    import repro.analysis.rules  # noqa: F401

    project, errors = build_project(paths)
    return lint_project(project, rules, extra_findings=errors)
