"""sr-ally-style alias resolution and measured-topology reconstruction.

Takes the traceroute records of :mod:`repro.netsim.traceroute` and builds
the topology a measurement platform would *believe* in:

1. **alias resolution** — interface addresses belonging to one router are
   merged with probability ``recall`` per non-canonical interface
   (sr-ally "does not guarantee complete identification"); unmerged
   interfaces become separate measured nodes, splitting the router;
2. **anonymous reconstruction** — silent routers become pseudo-nodes
   keyed by (router, previous hop), the neighbour-context heuristic;
3. **path rebuilding** — every traced path is re-expressed over measured
   nodes, producing the measured network and path set on which LIA's
   routing matrix is built.

The returned structure keeps the measured-link -> true-link mapping (pure
ground truth, for evaluation only) plus error diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.netsim.traceroute import TracerouteRecord, TracerouteSimulator
from repro.topology.graph import Link, Network, NodeId, Path
from repro.utils.rng import SeedLike, as_rng


@dataclass
class AliasResolution:
    """Outcome of sr-ally over the observed interface addresses."""

    #: observed interface address -> measured node key
    node_key_of_interface: Dict[int, "tuple"]
    #: true routers whose interfaces ended up split across measured nodes
    split_routers: Set[NodeId]


def resolve_aliases(
    simulator: TracerouteSimulator,
    records: Sequence[TracerouteRecord],
    recall: float = 0.85,
    seed: SeedLike = None,
) -> AliasResolution:
    """Simulate sr-ally with the given per-interface merge recall."""
    if not 0 <= recall <= 1:
        raise ValueError(f"recall must be in [0, 1], got {recall}")
    rng = as_rng(seed)

    observed: Dict[NodeId, Set[int]] = {}
    for record in records:
        for hop in record.hops:
            if hop.interface is not None:
                observed.setdefault(hop.true_router, set()).add(hop.interface)

    node_key_of_interface: Dict[int, tuple] = {}
    split: Set[NodeId] = set()
    for router, interfaces in observed.items():
        canonical = simulator.canonical_address(router)
        anchor = canonical if canonical in interfaces else min(interfaces)
        for interface in sorted(interfaces):
            if interface == anchor or rng.random() < recall:
                node_key_of_interface[interface] = ("router", router)
            else:
                node_key_of_interface[interface] = ("iface", interface)
                split.add(router)
    return AliasResolution(
        node_key_of_interface=node_key_of_interface, split_routers=split
    )


@dataclass
class MeasuredTopology:
    """The topology and paths a platform reconstructs from traceroutes.

    ``paths`` align one-to-one (same order) with the true paths traced,
    so end-to-end measurements taken on the true network apply directly.
    ``true_link_of_measured`` maps each measured physical link index to
    the true physical link index it was observed as (ground truth, for
    evaluation).
    """

    network: Network
    paths: List[Path]
    true_link_of_measured: Dict[int, int]
    num_anonymous_nodes: int
    num_split_routers: int

    def summary(self) -> str:
        return (
            f"measured topology: {self.network.num_nodes} nodes "
            f"({self.num_anonymous_nodes} anonymous, "
            f"{self.num_split_routers} split routers), "
            f"{self.network.num_links} links over {len(self.paths)} paths"
        )


def build_measured_topology(
    simulator: TracerouteSimulator,
    true_paths: Sequence[Path],
    records: Sequence[TracerouteRecord],
    resolution: AliasResolution,
) -> MeasuredTopology:
    """Assemble the measured network and measured paths from traces."""
    if len(true_paths) != len(records):
        raise ValueError("one traceroute record per path required")

    key_to_id: Dict[tuple, int] = {}
    measured = Network()

    def node_id(key: tuple) -> int:
        if key not in key_to_id:
            key_to_id[key] = len(key_to_id)
            measured.add_node(key_to_id[key])
        return key_to_id[key]

    anonymous_keys: Set[tuple] = set()
    measured_paths: List[Path] = []
    true_link_of_measured: Dict[int, int] = {}

    for path, record in zip(true_paths, records):
        node_keys: List[tuple] = [("host", path.source)]
        previous_router: NodeId = path.source
        for hop in record.hops:
            if hop.interface is not None:
                key = resolution.node_key_of_interface[hop.interface]
            else:
                key = ("anon", hop.true_router, previous_router)
                anonymous_keys.add(key)
            node_keys.append(key)
            previous_router = hop.true_router
        # The final hop is the destination host itself; name it stably so
        # all paths to one destination share the node.
        node_keys[-1] = ("host", path.dest)

        hops: List[Link] = []
        for (key_a, key_b), true_link in zip(
            zip(node_keys, node_keys[1:]), path.links
        ):
            a, b = node_id(key_a), node_id(key_b)
            link = measured.find_link(a, b)
            if link is None:
                link = measured.add_link(a, b)
                true_link_of_measured[link.index] = true_link.index
            hops.append(link)
        measured_paths.append(
            Path(
                index=len(measured_paths),
                source=node_id(("host", path.source)),
                dest=node_id(("host", path.dest)),
                links=tuple(hops),
            )
        )

    return MeasuredTopology(
        network=measured,
        paths=measured_paths,
        true_link_of_measured=true_link_of_measured,
        num_anonymous_nodes=len(anonymous_keys),
        num_split_routers=len(resolution.split_routers),
    )


def measure_topology(
    network: Network,
    true_paths: Sequence[Path],
    end_hosts: Sequence[NodeId] = (),
    recall: float = 0.85,
    seed: SeedLike = None,
    simulator: Optional[TracerouteSimulator] = None,
) -> MeasuredTopology:
    """One-call convenience: trace, resolve aliases, rebuild topology."""
    rng = as_rng(seed)
    if simulator is None:
        simulator = TracerouteSimulator(network, end_hosts=end_hosts, seed=rng)
    records = simulator.trace_all(true_paths)
    resolution = resolve_aliases(simulator, records, recall=recall, seed=rng)
    return build_measured_topology(simulator, true_paths, records, resolution)
