"""Synthetic IPv4 addressing: prefix allocation and longest-prefix match.

The Internet experiments of Section 7 need two address-plane mechanisms:
router interfaces with real IPs (traceroute reports interfaces, not
routers) and an IP -> AS mapping built from a BGP table (the paper uses
RouteViews).  This module provides the substrate: a deterministic prefix
allocator that carves per-AS prefixes out of ``10.0.0.0/8``, and a binary
trie doing longest-prefix-match lookups — the same mechanism a BGP RIB
uses, so the Table 3 classification pipeline is exercised faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

ADDRESS_BITS = 32


def format_ipv4(address: int) -> str:
    """Dotted-quad rendering of a 32-bit address."""
    if not 0 <= address < 2**32:
        raise ValueError(f"not a 32-bit address: {address}")
    return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad text into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


@dataclass(frozen=True)
class Prefix:
    """An address prefix ``network/length``."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= ADDRESS_BITS:
            raise ValueError(f"bad prefix length {self.length}")
        host_bits = ADDRESS_BITS - self.length
        if self.network & ((1 << host_bits) - 1):
            raise ValueError("network has host bits set")

    def contains(self, address: int) -> bool:
        host_bits = ADDRESS_BITS - self.length
        return (address >> host_bits) == (self.network >> host_bits)

    @property
    def num_addresses(self) -> int:
        return 1 << (ADDRESS_BITS - self.length)

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.length}"


class PrefixAllocator:
    """Carve equal-sized child prefixes out of a parent block.

    Deterministic: the i-th allocation is always the i-th child, so a
    topology generator seeded identically produces identical addressing.
    """

    def __init__(self, parent: Prefix = Prefix(0x0A000000, 8), child_length: int = 16):
        if child_length < parent.length or child_length > ADDRESS_BITS:
            raise ValueError("child prefixes must nest inside the parent")
        self.parent = parent
        self.child_length = child_length
        self._next = 0
        self._capacity = 1 << (child_length - parent.length)

    def allocate(self) -> Prefix:
        if self._next >= self._capacity:
            raise RuntimeError(
                f"prefix space exhausted after {self._capacity} allocations"
            )
        host_bits = ADDRESS_BITS - self.child_length
        network = self.parent.network | (self._next << host_bits)
        self._next += 1
        return Prefix(network=network, length=self.child_length)


class HostAllocator:
    """Hand out consecutive host addresses inside one prefix."""

    def __init__(self, prefix: Prefix):
        self.prefix = prefix
        self._next = 1  # skip the network address

    def allocate(self) -> int:
        if self._next >= self.prefix.num_addresses - 1:  # keep broadcast free
            raise RuntimeError(f"host space of {self.prefix} exhausted")
        address = self.prefix.network | self._next
        self._next += 1
        return address


class _TrieNode:
    __slots__ = ("zero", "one", "value", "terminal")

    def __init__(self) -> None:
        self.zero: Optional[_TrieNode] = None
        self.one: Optional[_TrieNode] = None
        self.value = None
        self.terminal = False


class LongestPrefixTrie:
    """Binary trie supporting longest-prefix-match lookups.

    The classic RIB data structure: insert ``(prefix, value)`` pairs, look
    up an address, get the value of the most specific covering prefix.
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: Prefix, value) -> None:
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (ADDRESS_BITS - 1 - depth)) & 1
            if bit:
                if node.one is None:
                    node.one = _TrieNode()
                node = node.one
            else:
                if node.zero is None:
                    node.zero = _TrieNode()
                node = node.zero
        if not node.terminal:
            self._size += 1
        node.terminal = True
        node.value = value

    def lookup(self, address: int):
        """Value of the longest matching prefix, or ``None``."""
        if not 0 <= address < 2**32:
            raise ValueError(f"not a 32-bit address: {address}")
        node = self._root
        best = None
        if node.terminal:
            best = node.value
        for depth in range(ADDRESS_BITS):
            bit = (address >> (ADDRESS_BITS - 1 - depth)) & 1
            node = node.one if bit else node.zero
            if node is None:
                break
            if node.terminal:
                best = node.value
        return best

    def items(self) -> Iterator[Tuple[Prefix, object]]:
        """All (prefix, value) pairs, depth-first."""

        def walk(node: _TrieNode, bits: int, depth: int):
            if node.terminal:
                yield Prefix(bits << (ADDRESS_BITS - depth), depth), node.value
            if node.zero is not None:
                yield from walk(node.zero, bits << 1, depth + 1)
            if node.one is not None:
                yield from walk(node.one, (bits << 1) | 1, depth + 1)

        yield from walk(self._root, 0, 0)
