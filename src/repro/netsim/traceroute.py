"""Traceroute simulation with realistic measurement artefacts (Section 7.1).

The paper builds its routing topology with traceroute and reports two
error sources: 5–10 % of routers do not answer ICMP (anonymous hops), and
~16 % expose multiple interfaces whose addresses the sr-ally tool merges
imperfectly.  This module reproduces both so the Internet-experiment
pipeline exercises LIA on a *measured* (erroneous) topology while probes
flow over the *true* one:

* every router is a persistent responder or non-responder;
* multi-interface routers answer with the interface facing the probe's
  previous hop; single-interface routers always answer with a canonical
  address;
* anonymous hops are reconstructed with the standard neighbour-context
  heuristic: a silent router seen behind the same previous hop is assumed
  to be the same box (one pseudo-node per (router, previous-hop) pair).

:func:`repro.netsim.aliases.resolve_aliases` then plays sr-ally with a
configurable recall; unmerged interfaces split one true router into
several measured nodes, inflating the measured topology exactly the way
the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


from repro.netsim.addressing import HostAllocator, Prefix
from repro.topology.graph import Network, NodeId, Path
from repro.utils.rng import SeedLike, as_rng


@dataclass
class TracerouteConfig:
    """Measurement artefact rates (paper-reported defaults)."""

    no_response_rate: float = 0.07
    multi_interface_fraction: float = 0.16
    #: End hosts run our software, so they always respond.
    hosts_always_respond: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.no_response_rate < 1:
            raise ValueError("no_response_rate must be in [0, 1)")
        if not 0 <= self.multi_interface_fraction <= 1:
            raise ValueError("multi_interface_fraction must be in [0, 1]")


@dataclass(frozen=True)
class Hop:
    """One traceroute hop: the responding interface, or an anonymous mark.

    ``interface`` is ``None`` for silent routers; ``true_router`` is
    simulator ground truth used by evaluation code only (a real
    deployment would not have it).
    """

    true_router: NodeId
    interface: Optional[int]


@dataclass(frozen=True)
class TracerouteRecord:
    """The hops of one source -> destination trace."""

    source: NodeId
    dest: NodeId
    hops: Tuple[Hop, ...]


class TracerouteSimulator:
    """Per-router interface/address behaviour plus trace generation."""

    def __init__(
        self,
        network: Network,
        config: Optional[TracerouteConfig] = None,
        end_hosts: Sequence[NodeId] = (),
        seed: SeedLike = None,
    ) -> None:
        self.network = network
        self.config = config if config is not None else TracerouteConfig()
        rng = as_rng(seed)
        hosts = set(end_hosts)

        # 172.16.0.0/12 keeps interface addresses disjoint from any AS plan
        # built out of 10.0.0.0/8.
        self._allocator = HostAllocator(Prefix(0xAC100000, 12))
        self._canonical: Dict[NodeId, int] = {}
        self._per_neighbor: Dict[Tuple[NodeId, NodeId], int] = {}
        self._multi: Dict[NodeId, bool] = {}
        self._responds: Dict[NodeId, bool] = {}
        for node in network.nodes():
            self._canonical[node] = self._allocator.allocate()
            is_host = node in hosts
            self._multi[node] = (not is_host) and bool(
                rng.random() < self.config.multi_interface_fraction
            )
            if is_host and self.config.hosts_always_respond:
                self._responds[node] = True
            else:
                self._responds[node] = bool(
                    rng.random() >= self.config.no_response_rate
                )

    # -- interface/address queries ------------------------------------------

    def is_multi_interface(self, node: NodeId) -> bool:
        return self._multi[node]

    def responds(self, node: NodeId) -> bool:
        return self._responds[node]

    def canonical_address(self, node: NodeId) -> int:
        return self._canonical[node]

    def interface_address(self, node: NodeId, from_neighbor: NodeId) -> int:
        """Address *node* reports when probed through *from_neighbor*."""
        if not self._multi[node]:
            return self._canonical[node]
        key = (node, from_neighbor)
        if key not in self._per_neighbor:
            self._per_neighbor[key] = self._allocator.allocate()
        return self._per_neighbor[key]

    def interfaces_of(self, node: NodeId) -> List[int]:
        """All addresses this router has exposed so far."""
        addresses = [self._canonical[node]]
        addresses.extend(
            addr for (n, _), addr in self._per_neighbor.items() if n == node
        )
        return addresses

    # -- tracing -----------------------------------------------------------------

    def trace(self, path: Path) -> TracerouteRecord:
        """Trace along a known path (TTL-walking its routers in order)."""
        hops: List[Hop] = []
        previous = path.source
        for link in path.links:
            router = link.head
            if self._responds[router]:
                interface = self.interface_address(router, previous)
                hops.append(Hop(true_router=router, interface=interface))
            else:
                hops.append(Hop(true_router=router, interface=None))
            previous = router
        return TracerouteRecord(source=path.source, dest=path.dest, hops=tuple(hops))

    def trace_all(self, paths: Sequence[Path]) -> List[TracerouteRecord]:
        return [self.trace(path) for path in paths]
