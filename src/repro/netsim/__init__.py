"""Measurement-plane substrates: addressing, AS mapping, traceroute.

The :mod:`repro.netsim.sim` subpackage adds the data plane: a
discrete-event packet-level simulator whose congestion-induced drops
feed the tomography pipeline through
:class:`repro.lossmodel.CongestionLossProcess`.
"""

from repro.netsim.addressing import (
    HostAllocator,
    LongestPrefixTrie,
    Prefix,
    PrefixAllocator,
    format_ipv4,
    parse_ipv4,
)
from repro.netsim.aliases import (
    AliasResolution,
    MeasuredTopology,
    build_measured_topology,
    measure_topology,
    resolve_aliases,
)
from repro.netsim.asmap import (
    AddressPlan,
    AsLocationBreakdown,
    AsMapper,
    build_address_plan,
    classify_congested_columns,
)
from repro.netsim.sim import (
    TRAFFIC_KINDS,
    CongestionSimulator,
    SnapshotTrace,
    TrafficConfig,
)
from repro.netsim.traceroute import (
    Hop,
    TracerouteConfig,
    TracerouteRecord,
    TracerouteSimulator,
)

__all__ = [
    "AddressPlan",
    "AliasResolution",
    "AsLocationBreakdown",
    "AsMapper",
    "CongestionSimulator",
    "Hop",
    "HostAllocator",
    "LongestPrefixTrie",
    "MeasuredTopology",
    "Prefix",
    "PrefixAllocator",
    "SnapshotTrace",
    "TRAFFIC_KINDS",
    "TracerouteConfig",
    "TracerouteRecord",
    "TracerouteSimulator",
    "TrafficConfig",
    "build_address_plan",
    "build_measured_topology",
    "classify_congested_columns",
    "format_ipv4",
    "measure_topology",
    "parse_ipv4",
    "resolve_aliases",
]
