"""IP -> AS mapping and inter/intra-AS link classification (Table 3).

The paper maps congested links to autonomous systems with a BGP table
from RouteViews.  Our substitute builds the same artefact synthetically:
every AS of an annotated topology receives a prefix, every router an
address inside its AS's prefix, and the "BGP table" is the resulting
(prefix -> ASN) list served through a longest-prefix-match trie.  The
Table 3 pipeline — classify each inferred congested link as inter- or
intra-AS by resolving its endpoint addresses — then runs unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.netsim.addressing import (
    HostAllocator,
    LongestPrefixTrie,
    Prefix,
    PrefixAllocator,
)
from repro.topology.generators.common import GeneratedTopology
from repro.topology.graph import NodeId
from repro.topology.routing import RoutingMatrix


@dataclass
class AddressPlan:
    """Concrete addressing of an AS-annotated topology."""

    node_address: Dict[NodeId, int]
    as_prefix: Dict[int, Prefix]
    bgp_table: List[Tuple[Prefix, int]] = field(default_factory=list)

    def address_of(self, node: NodeId) -> int:
        return self.node_address[node]


def build_address_plan(topology: GeneratedTopology) -> AddressPlan:
    """Allocate one prefix per AS and one loopback address per router."""
    if not topology.as_of_node:
        raise ValueError(
            f"topology {topology.name!r} carries no AS annotations; "
            "use an AS-aware generator"
        )
    allocator = PrefixAllocator()
    as_prefix: Dict[int, Prefix] = {}
    hosts: Dict[int, HostAllocator] = {}
    for asn in sorted(set(topology.as_of_node.values())):
        prefix = allocator.allocate()
        as_prefix[asn] = prefix
        hosts[asn] = HostAllocator(prefix)
    node_address: Dict[NodeId, int] = {}
    for node in sorted(topology.as_of_node):
        asn = topology.as_of_node[node]
        node_address[node] = hosts[asn].allocate()
    bgp_table = [(as_prefix[asn], asn) for asn in sorted(as_prefix)]
    return AddressPlan(
        node_address=node_address, as_prefix=as_prefix, bgp_table=bgp_table
    )


class AsMapper:
    """Resolve addresses to AS numbers through a synthetic BGP table."""

    def __init__(self, bgp_table: Iterable[Tuple[Prefix, int]]):
        self._trie = LongestPrefixTrie()
        count = 0
        for prefix, asn in bgp_table:
            self._trie.insert(prefix, asn)
            count += 1
        if count == 0:
            raise ValueError("BGP table is empty")

    @classmethod
    def from_topology(cls, topology: GeneratedTopology) -> "tuple[AsMapper, AddressPlan]":
        plan = build_address_plan(topology)
        return cls(plan.bgp_table), plan

    def asn_of(self, address: int) -> Optional[int]:
        return self._trie.lookup(address)

    def link_is_inter_as(self, tail_address: int, head_address: int) -> bool:
        """True when the two endpoint addresses map to different ASes.

        Unresolvable addresses (no covering prefix) count as inter-AS,
        mirroring the conservative treatment of unmapped hops in
        measurement studies.
        """
        tail_as = self.asn_of(tail_address)
        head_as = self.asn_of(head_address)
        if tail_as is None or head_as is None:
            return True
        return tail_as != head_as


@dataclass(frozen=True)
class AsLocationBreakdown:
    """Counts of inter- vs intra-AS links among a set of links."""

    inter_as: int
    intra_as: int

    @property
    def total(self) -> int:
        return self.inter_as + self.intra_as

    @property
    def inter_fraction(self) -> float:
        return self.inter_as / self.total if self.total else 0.0

    @property
    def intra_fraction(self) -> float:
        return self.intra_as / self.total if self.total else 0.0


def classify_congested_columns(
    columns: Sequence[int],
    routing: RoutingMatrix,
    mapper: AsMapper,
    plan: AddressPlan,
) -> AsLocationBreakdown:
    """Table 3's classification of congested links into inter/intra-AS.

    A virtual column counts as inter-AS when *any* member physical link
    crosses an AS boundary (a lossy alias chain spanning a border is an
    inter-AS observation, matching how MILS-style groups were argued
    about in prior work).
    """
    inter = intra = 0
    for column in columns:
        vlink = routing.virtual_links[column]
        crosses = any(
            mapper.link_is_inter_as(
                plan.address_of(member.tail), plan.address_of(member.head)
            )
            for member in vlink.members
        )
        if crosses:
            inter += 1
        else:
            intra += 1
    return AsLocationBreakdown(inter_as=inter, intra_as=intra)
