"""Discrete-event packet-level simulator with congestion-induced loss.

The package is layered bottom-up:

* :mod:`~repro.netsim.sim.clock` — monotonic clock + heap scheduler
  with (time, sequence) total-order tie-breaking;
* :mod:`~repro.netsim.sim.packet`, :mod:`~repro.netsim.sim.link` —
  packets and finite-buffer FIFO links that drop on overflow;
* :mod:`~repro.netsim.sim.pacer`, :mod:`~repro.netsim.sim.host`,
  :mod:`~repro.netsim.sim.cc` — token-bucket pacing, flow hosts, and
  the background congestion controllers (CBR / AIMD / rate prober);
* :mod:`~repro.netsim.sim.simulator` — the per-snapshot orchestrator
  producing ``(num_links, num_probes)`` drop and delay realisations;
* :mod:`~repro.netsim.sim.config` — the declarative ``TrafficConfig``
  stage consumed by ``Scenario`` and the CLI.
"""

from repro.netsim.sim.cc import (
    AIMDController,
    CongestionController,
    ConstantBitRate,
    OnOffCBR,
    RateProber,
)
from repro.netsim.sim.clock import Clock, EventScheduler
from repro.netsim.sim.config import TRAFFIC_KINDS, TrafficConfig
from repro.netsim.sim.host import Host, ProbeTap
from repro.netsim.sim.link import SimLink
from repro.netsim.sim.pacer import Pacer
from repro.netsim.sim.packet import Packet
from repro.netsim.sim.simulator import (
    CongestionSimulator,
    SnapshotTrace,
)

__all__ = [
    "AIMDController",
    "Clock",
    "CongestionController",
    "CongestionSimulator",
    "ConstantBitRate",
    "EventScheduler",
    "Host",
    "OnOffCBR",
    "Pacer",
    "Packet",
    "ProbeTap",
    "RateProber",
    "SimLink",
    "SnapshotTrace",
    "TRAFFIC_KINDS",
    "TrafficConfig",
]
