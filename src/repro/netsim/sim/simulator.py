"""The snapshot orchestrator: links + taps + background flows -> traces.

``CongestionSimulator`` is built once per prepared topology (the link
set and probing paths are static across a campaign) and then runs one
discrete-event simulation per snapshot:

* every link that carries at least one probing path becomes a
  :class:`~repro.netsim.sim.link.SimLink` (finite FIFO, drop on
  overflow);
* a :class:`~repro.netsim.sim.host.ProbeTap` per link emits one probe
  per slot, so all paths crossing the link share one drop realisation —
  Assumption S.1 holds structurally, at the queue;
* per-link on/off CBR drivers are calibrated so queue overflow drops
  roughly the snapshot's *assigned* loss rate
  (:meth:`~repro.netsim.sim.cc.OnOffCBR.for_target_loss`);
* multi-hop AIMD and BBR-like prober flows ride randomly chosen probing
  paths, coupling queues across links.

Determinism: every stochastic choice draws from a stream spawned off
one ``SeedSequence([seed])`` in a fixed order (tap phases, then one
stream per link driver, then one per cross flow), and the event loop
breaks ties by scheduling sequence — so a snapshot trace is a pure
function of ``(topology, config, loss_rates, num_probes, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.netsim.sim.cc import AIMDController, OnOffCBR, RateProber
from repro.netsim.sim.clock import EventScheduler
from repro.netsim.sim.config import TrafficConfig
from repro.netsim.sim.host import Host, ProbeTap
from repro.netsim.sim.link import SimLink
from repro.netsim.sim.packet import Packet

#: Assigned rates at or below this are treated as loss-free: no driver
#: is attached (the queue then only overflows under cross-flow bursts).
MIN_DRIVER_LOSS = 1e-6


def _as_link_indices(path) -> "tuple[int, ...]":
    """Accept a raw index sequence or a topology ``Path``-like object."""
    if hasattr(path, "link_indices"):
        return tuple(int(i) for i in path.link_indices())
    return tuple(int(i) for i in path)


@dataclass
class SnapshotTrace:
    """Everything one simulated snapshot produced, active-link indexed."""

    active_links: np.ndarray   # (num_active,) physical link indices
    drops: np.ndarray          # (num_active, num_probes) bool
    delays_ms: np.ndarray      # (num_active, num_probes) probe sojourn, ms
    events: int                # scheduler dispatches
    packets_forwarded: int     # link service completions (all traffic)
    background_sent: int       # host emissions (drivers + cross flows)
    probe_drops: int

    @property
    def num_probes(self) -> int:
        return int(self.drops.shape[1])

    def loss_fractions(self) -> np.ndarray:
        return self.drops.mean(axis=1)


class CongestionSimulator:
    """Event-driven loss/delay realisations over one probing layout."""

    def __init__(
        self,
        paths: Sequence[object],
        num_links: int,
        config: Optional[TrafficConfig] = None,
    ) -> None:
        if num_links <= 0:
            raise ValueError(f"num_links must be positive, got {num_links}")
        if not paths:
            raise ValueError("need at least one probing path")
        self.config = config if config is not None else TrafficConfig(
            kind="congestion"
        )
        self.num_links = int(num_links)
        self._paths: List[tuple] = [_as_link_indices(p) for p in paths]
        for path in self._paths:
            bad = [i for i in path if not 0 <= i < num_links]
            if bad:
                raise ValueError(
                    f"path references links {bad} outside 0..{num_links - 1}"
                )
        active = sorted({i for path in self._paths for i in path})
        self.active_links = np.asarray(active, dtype=np.int64)
        self._row: Dict[int, int] = {k: r for r, k in enumerate(active)}
        self.last_trace: Optional[SnapshotTrace] = None

    @property
    def num_active_links(self) -> int:
        return int(self.active_links.shape[0])

    # -- one snapshot ----------------------------------------------------------

    def run_snapshot(
        self, loss_rates: np.ndarray, num_probes: int, seed: int
    ) -> SnapshotTrace:
        """Simulate one snapshot; returns the per-active-link trace."""
        rates = np.asarray(loss_rates, dtype=np.float64)
        if rates.shape != (self.num_links,):
            raise ValueError(
                f"need one loss rate per link ({self.num_links}), "
                f"got shape {rates.shape}"
            )
        if num_probes <= 0:
            raise ValueError(f"num_probes must be positive, got {num_probes}")
        cfg = self.config
        num_active = self.num_active_links
        num_cross = cfg.num_aimd_flows + cfg.num_prober_flows

        seq = np.random.SeedSequence([int(seed)])
        streams = [
            np.random.default_rng(child)
            for child in seq.spawn(1 + num_active + num_cross)
        ]
        tap_rng, flow_streams = streams[0], streams[1:]

        scheduler = EventScheduler()
        drops = np.zeros((num_active, num_probes), dtype=bool)
        # Dropped (or unresolved) probes default to the full-buffer
        # sojourn — the delay a probe would have seen had one more slot
        # been free — keeping the delay matrix smooth at loss instants.
        full_sojourn = (
            cfg.buffer_packets / cfg.capacity_per_slot + cfg.prop_delay_slots
        )
        delays = np.full((num_active, num_probes), full_sojourn)
        hosts: Dict[int, Host] = {}
        row_of = self._row
        probe_drops = 0

        def on_drop(packet: Packet, link: SimLink, now: float) -> None:
            nonlocal probe_drops
            if packet.probe_slot is not None:
                drops[row_of[link.index], packet.probe_slot] = True
                probe_drops += 1
            else:
                hosts[packet.flow_id].handle_drop(packet, link, now)

        def on_deliver(packet: Packet, now: float) -> None:
            if packet.probe_slot is not None:
                link = packet.route[-1]
                delays[row_of[link.index], packet.probe_slot] = (
                    now - packet.sent_at
                )
            else:
                hosts[packet.flow_id].handle_delivery(packet, now)

        links: Dict[int, SimLink] = {
            int(k): SimLink(
                index=int(k),
                rate=cfg.capacity_per_slot,
                delay=cfg.prop_delay_slots,
                buffer=cfg.buffer_packets,
                scheduler=scheduler,
                on_drop=on_drop,
                on_deliver=on_deliver,
            )
            for k in self.active_links
        }

        # Probe taps: one per active link, de-phased within the slot.
        phases = tap_rng.random(num_active)
        for r, k in enumerate(self.active_links):
            ProbeTap(
                flow_id=-1 - r,
                link=links[int(k)],
                num_probes=num_probes,
                scheduler=scheduler,
                phase=float(phases[r]),
                probe_size=cfg.probe_size,
            ).start()

        horizon = float(num_probes)
        flow_id = 0

        # Calibrated per-link congestion drivers.
        for r, k in enumerate(self.active_links):
            target = float(rates[int(k)])
            rng = flow_streams[r]
            if target <= MIN_DRIVER_LOSS:
                continue
            cc = OnOffCBR.for_target_loss(
                min(target, 0.95),
                capacity=cfg.capacity_per_slot,
                buffer=cfg.buffer_packets,
                overload_factor=cfg.overload_factor,
                burst_slots=cfg.burst_slots,
                overflow_occupancy=cfg.overflow_occupancy,
            )
            cc.bind(rng)
            host = Host(
                flow_id=flow_id,
                route=(links[int(k)],),
                cc=cc,
                scheduler=scheduler,
                bucket=2.0,
                start_time=float(rng.random()),
                stop_time=horizon,
            )
            hosts[flow_id] = host
            host.start()
            flow_id += 1

        # Multi-hop cross traffic over randomly chosen probing paths.
        cross_rate = cfg.cross_rate_fraction * cfg.capacity_per_slot
        cross_cap = cfg.cross_max_fraction * cfg.capacity_per_slot
        for c in range(num_cross):
            rng = flow_streams[num_active + c]
            route_links = self._paths[int(rng.integers(len(self._paths)))]
            route = tuple(links[i] for i in route_links)
            if c < cfg.num_aimd_flows:
                cc = AIMDController(
                    initial_rate=max(cross_rate, 0.1),
                    min_rate=0.1,
                    max_rate=cross_cap,
                )
            else:
                cc = RateProber(
                    initial_rate=max(cross_rate, 0.1),
                    min_rate=0.1,
                    max_rate=cross_cap,
                )
            cc.bind(rng)
            host = Host(
                flow_id=flow_id,
                route=route,
                cc=cc,
                scheduler=scheduler,
                bucket=2.0,
                start_time=float(rng.random()),
                stop_time=horizon,
            )
            hosts[flow_id] = host
            host.start()
            flow_id += 1

        # Run past the horizon so in-flight probes of the last slot clear
        # every queue (worst case: full buffer ahead plus propagation).
        tail = cfg.buffer_packets / cfg.capacity_per_slot + (
            cfg.prop_delay_slots + 1.0
        )
        scheduler.run_until(horizon + tail)

        trace = SnapshotTrace(
            active_links=self.active_links,
            drops=drops,
            delays_ms=delays * cfg.slot_ms,
            events=scheduler.events_dispatched,
            packets_forwarded=sum(l.served for l in links.values()),
            background_sent=sum(h.packets_sent for h in hosts.values()),
            probe_drops=probe_drops,
        )
        self.last_trace = trace
        return trace

    # -- full matrices ---------------------------------------------------------

    def expand_drops(self, trace: SnapshotTrace) -> np.ndarray:
        """Lift a trace's active-link drop matrix to all physical links.

        Rows of links no probing path traverses stay all-``False`` —
        they are unobservable to every estimator and carry no realised
        traffic in the simulator.
        """
        full = np.zeros((self.num_links, trace.num_probes), dtype=bool)
        full[trace.active_links] = trace.drops
        return full
