"""Declarative traffic-stage configuration for the Scenario pipeline.

``TrafficConfig`` selects how a :class:`repro.api.Scenario` realises
per-link packet loss:

* ``kind="analytic"`` (default) — the historical path: a
  :class:`~repro.lossmodel.processes.LossProcess` (Gilbert/Bernoulli)
  samples drops from the assigned average rates.  Every pre-existing
  experiment payload is produced by this branch, unchanged.
* ``kind="congestion"`` — the discrete-event path: drops are *induced*
  by queue overflow in :class:`~repro.netsim.sim.simulator.
  CongestionSimulator`, with the remaining fields sizing the links and
  the background cross-traffic.

The config is JSON-round-trippable (:meth:`to_dict` /
:meth:`from_dict`) so it can ride inside ``Scenario.spec()``, a
``TrialSpec``, or a shard-cache key.  ``TRAFFIC_KINDS`` is the
canonical choice tuple; the CLI keeps a static mirror
(``repro.cli.TRAFFIC_CHOICES``) pinned in sync by tests, mirroring how
``METHOD_CHOICES`` shadows the estimator registry.

All times are measured in *probe slots* (one slot = one probe
inter-departure interval) and all sizes in service units of one
background data packet, so one config is scale-free across
probe-interval choices; ``slot_ms`` carries the physical timebase for
the delay byproducts.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping

TRAFFIC_KINDS = ("analytic", "congestion")


@dataclass(frozen=True)
class TrafficConfig:
    """How a scenario turns assigned loss rates into packet drops.

    Congestion-branch knobs (ignored for ``kind="analytic"``):

    ``capacity_per_slot``
        Link service rate in data packets per probe slot.  20 means the
        1-per-slot probe stream is a 5 % load by packet count (and far
        less by service time, probes being ``probe_size`` units).
    ``buffer_packets``
        Finite FIFO depth, including the packet in service; overflow is
        the *only* loss mechanism in the simulator.
    ``prop_delay_slots``
        Per-link propagation delay.
    ``overload_factor``, ``burst_slots``, ``overflow_occupancy``
        Calibration of the per-link on/off driver
        (:meth:`repro.netsim.sim.cc.OnOffCBR.for_target_loss`): ON-phase
        send rate relative to capacity, mean overflow-burst length in
        slots, and the fraction of overload time the queue is actually
        full at a random arrival instant.
    ``num_aimd_flows``, ``num_prober_flows``
        Multi-hop background flows (Reno-style AIMD and BBR-like rate
        probers) routed over randomly chosen probing paths; they couple
        queues across links and react to the drops they suffer.
    ``cross_rate_fraction``, ``cross_max_fraction``
        Initial and maximum rate of each cross flow relative to link
        capacity.  The default cap keeps the *sum* of the default flow
        fleet under one capacity, so cross traffic alone never
        overflows a queue — good links stay under the paper's 0.002
        threshold — while on driver-congested links the cross flows
        both suffer drops (and back off, the closed loop) and deepen
        the overflow bursts.
    ``probe_size``
        Probe service size relative to a data packet (40 B vs ~1 kB in
        the paper's measurement plane).
    ``slot_ms``
        Physical duration of one slot, used only to express the
        simulator's queueing-delay byproducts in milliseconds.
    """

    kind: str = "analytic"
    capacity_per_slot: float = 20.0
    buffer_packets: int = 12
    prop_delay_slots: float = 0.02
    overload_factor: float = 2.0
    burst_slots: float = 3.0
    overflow_occupancy: float = 0.75
    num_aimd_flows: int = 2
    num_prober_flows: int = 1
    cross_rate_fraction: float = 0.25
    cross_max_fraction: float = 0.3
    probe_size: float = 0.05
    slot_ms: float = 10.0

    def __post_init__(self) -> None:
        if self.kind not in TRAFFIC_KINDS:
            raise ValueError(
                f"traffic kind must be one of {TRAFFIC_KINDS}, got {self.kind!r}"
            )
        if self.capacity_per_slot <= 0:
            raise ValueError("capacity_per_slot must be positive")
        if self.buffer_packets < 1:
            raise ValueError("buffer_packets must be at least 1")
        if self.prop_delay_slots < 0:
            raise ValueError("prop_delay_slots must be non-negative")
        if self.overload_factor <= 1:
            raise ValueError("overload_factor must exceed 1")
        if self.burst_slots <= 0:
            raise ValueError("burst_slots must be positive")
        if not 0 < self.overflow_occupancy <= 1:
            raise ValueError("overflow_occupancy must be in (0, 1]")
        if self.num_aimd_flows < 0 or self.num_prober_flows < 0:
            raise ValueError("background flow counts must be non-negative")
        if not 0 <= self.cross_rate_fraction <= 1:
            raise ValueError("cross_rate_fraction must be in [0, 1]")
        if self.cross_max_fraction < self.cross_rate_fraction:
            raise ValueError(
                "cross_max_fraction must be at least cross_rate_fraction"
            )
        if self.probe_size <= 0:
            raise ValueError("probe_size must be positive")
        if self.slot_ms <= 0:
            raise ValueError("slot_ms must be positive")

    @property
    def is_congestion(self) -> bool:
        return self.kind == "congestion"

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TrafficConfig":
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(
                f"unknown TrafficConfig fields: {sorted(unknown)}"
            )
        return cls(**dict(payload))
