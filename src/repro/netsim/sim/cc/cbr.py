"""Constant-bit-rate sources, steady and on/off-modulated.

:class:`ConstantBitRate` is the plain fixed-rate source (light ambient
load on uncongested links).  :class:`OnOffCBR` is the *calibrated
congestion driver*: it alternates exponentially-distributed ON phases —
sending above the link's service rate so the FIFO fills and overflows —
with OFF phases long enough that the time-average overflow fraction
matches a target loss rate.  The calibration arithmetic lives in
:meth:`OnOffCBR.for_target_loss`; the controller itself only walks its
phase schedule, lazily and deterministically, off the flow's private
RNG stream.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netsim.sim.cc.base import CongestionController


class ConstantBitRate(CongestionController):
    """Fixed-rate source; the base class already does everything."""


class OnOffCBR(CongestionController):
    """Exponential ON/OFF modulation of a constant-rate source.

    Phases are drawn lazily as simulation time passes the current phase
    boundary.  Because hosts query :meth:`pacing_rate` with monotonically
    increasing ``now``, the draw sequence is a pure function of the RNG
    stream — same seed, same phase schedule, bit for bit.
    """

    def __init__(
        self,
        on_rate: float,
        mean_on: float,
        mean_off: float,
        start: float = 0.0,
    ) -> None:
        super().__init__(on_rate)
        if mean_on <= 0 or mean_off < 0:
            raise ValueError(
                f"need mean_on > 0 and mean_off >= 0, got "
                f"({mean_on}, {mean_off})"
            )
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self._start = float(start)
        self._rng: Optional[np.random.Generator] = None
        self._on = False
        self._phase_end = float(start)

    @classmethod
    def for_target_loss(
        cls,
        target_loss: float,
        capacity: float,
        buffer: int,
        overload_factor: float = 2.0,
        burst_slots: float = 3.0,
        overflow_occupancy: float = 0.75,
    ) -> "OnOffCBR":
        """Calibrate ON/OFF means so overflow drops ~``target_loss`` probes.

        During ON the source sends at ``overload_factor * capacity``, so
        the queue gains ``(overload_factor - 1) * capacity`` packets per
        slot and reaches the *buffer* limit after a fill time; from then
        until OFF the queue hovers at the limit and a probe arriving in
        that window is dropped with probability ``overflow_occupancy``
        (the queue briefly opens one slot after each departure).  Setting

            mean ON  = fill + burst_slots
            mean OFF = overflow time / target - mean ON

        makes the long-run overflow-time fraction ``target_loss /
        overflow_occupancy``, i.e. an expected probe-drop fraction of
        ``target_loss``, in mean bursts of ``burst_slots`` consecutive
        slots.  The calibration is approximate by design — cross traffic
        and the probe load itself shift it — and the congestion
        experiments treat it as such.
        """
        if not 0 < target_loss < 1:
            raise ValueError(f"target loss must be in (0, 1), got {target_loss}")
        if overload_factor <= 1:
            raise ValueError("overload_factor must exceed 1 to fill the queue")
        if not 0 < overflow_occupancy <= 1:
            raise ValueError("overflow_occupancy must be in (0, 1]")
        fill = buffer / ((overload_factor - 1.0) * capacity)
        overflow = max(burst_slots, 1e-6)
        mean_on = fill + overflow
        duty = min(target_loss / overflow_occupancy, 0.98)
        cycle = overflow / duty
        mean_off = max(cycle - mean_on, 1e-3)
        return cls(
            on_rate=overload_factor * capacity,
            mean_on=mean_on,
            mean_off=mean_off,
        )

    def bind(self, rng: Optional[np.random.Generator]) -> None:
        if rng is None:
            raise ValueError("OnOffCBR needs a per-flow RNG stream")
        self._rng = rng
        # Start OFF at a uniformly random point of the first off phase so
        # the links' schedules are desynchronised from slot 0.
        first_off = rng.exponential(self.mean_off) if self.mean_off > 0 else 0.0
        self._on = self.mean_off == 0.0
        self._phase_end = self._start + (
            rng.exponential(self.mean_on) if self._on else first_off
        )

    def _advance(self, now: float) -> None:
        if self._rng is None:
            raise RuntimeError("OnOffCBR used before bind()")
        while self._phase_end <= now:
            self._on = not self._on
            mean = self.mean_on if self._on else self.mean_off
            self._phase_end += self._rng.exponential(mean) if mean > 0 else 0.0
            if mean <= 0:  # degenerate zero-length phase: flip straight back
                self._phase_end += 1e-9

    def pacing_rate(self, now: float) -> float:
        self._advance(now)
        return self.rate if self._on else 0.0

    def wake_time(self, now: float) -> float:
        self._advance(now)
        return self._phase_end if not self._on else now
