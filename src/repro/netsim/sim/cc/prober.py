"""A BBR-like rate prober: burst above baseline, measure, adopt.

The state machine follows the net-rl ``ProbeController`` idiom: the
flow periodically enters a PROBE phase sending at ``probe_gain`` times
its baseline rate until it has sent at least ``min_probe_packets`` over
at least ``min_probe_duration``; the acks of that burst yield a
delivered-rate estimate

    est = min(send_rate, receive_rate)

(send rate from the first/last transmit stamps, receive rate from the
first/last ack stamps — the probed bottleneck rate), which becomes the
new baseline after a drain factor.  Between probes it cruises at the
baseline and reacts to losses with a gentle multiplicative backoff, so
on a shared FIFO it hunts the bandwidth the AIMD flows leave unused —
periodically shoving the queue towards overflow, which is exactly the
bursty cross-traffic pattern the congestion scenarios want.
"""

from __future__ import annotations

from repro.netsim.sim.cc.base import CongestionController
from repro.netsim.sim.packet import Packet

CRUISE = 0
PROBE = 1


class RateProber(CongestionController):
    """Periodic multiplicative rate probing with min(send, recv) estimation."""

    def __init__(
        self,
        initial_rate: float,
        probe_gain: float = 3.0,
        drain_factor: float = 0.9,
        probe_period: float = 40.0,
        min_probe_packets: int = 5,
        min_probe_duration: float = 1.5,
        min_rate: float = 0.1,
        max_rate: float = float("inf"),
        loss_beta: float = 0.9,
    ) -> None:
        if initial_rate <= 0 or min_rate <= 0:
            raise ValueError("rates must be positive")
        if probe_gain <= 1:
            raise ValueError(f"probe_gain must exceed 1, got {probe_gain}")
        super().__init__(initial_rate)
        self.probe_gain = float(probe_gain)
        self.drain_factor = float(drain_factor)
        self.probe_period = float(probe_period)
        self.min_probe_packets = int(min_probe_packets)
        self.min_probe_duration = float(min_probe_duration)
        self.min_rate = float(min_rate)
        self.max_rate = float(max_rate)
        self.loss_beta = float(loss_beta)

        self.state = PROBE  # start with an initial exponential probe
        self.probes_completed = 0
        self._probe_start = 0.0
        self._next_probe_at = 0.0
        self._sent_count = 0
        self._first_sent = self._last_sent = None
        self._first_ack = self._last_ack = None
        self._acked_size = 0.0
        self._sent_size = 0.0
        self._last_backoff = float("-inf")

    # -- rate ------------------------------------------------------------------

    def pacing_rate(self, now: float) -> float:
        if self.state == CRUISE and now >= self._next_probe_at:
            self._enter_probe(now)
        if self.state == PROBE:
            return min(self.max_rate, self.rate * self.probe_gain)
        return self.rate

    def _enter_probe(self, now: float) -> None:
        self.state = PROBE
        self._probe_start = now
        self._sent_count = 0
        self._first_sent = self._last_sent = None
        self._first_ack = self._last_ack = None
        self._acked_size = 0.0
        self._sent_size = 0.0

    # -- feedback --------------------------------------------------------------

    def on_sent(self, now: float, packet: Packet) -> None:
        if self.state != PROBE:
            return
        if self._first_sent is None:
            self._first_sent = now
        self._last_sent = now
        self._sent_size += packet.size
        self._sent_count += 1

    def on_ack(self, now: float, packet: Packet, rtt: float) -> None:
        if self.state != PROBE:
            return
        # Only acks of packets sent inside this probe window count.
        if self._first_sent is None or packet.sent_at < self._probe_start:
            return
        if self._first_ack is None:
            self._first_ack = now
        self._last_ack = now
        self._acked_size += packet.size
        if (
            self._sent_count >= self.min_probe_packets
            and now - self._probe_start >= self.min_probe_duration
        ):
            self._finish_probe(now)

    def _finish_probe(self, now: float) -> None:
        send_span = (self._last_sent or 0.0) - (self._first_sent or 0.0)
        ack_span = (self._last_ack or 0.0) - (self._first_ack or 0.0)
        if send_span > 0 and ack_span > 0:
            send_rate = self._sent_size / send_span
            recv_rate = self._acked_size / ack_span
            estimate = min(send_rate, recv_rate)
            self.rate = min(
                self.max_rate,
                max(self.min_rate, self.drain_factor * estimate),
            )
        self.state = CRUISE
        self.probes_completed += 1
        self._next_probe_at = now + self.probe_period

    def on_loss(self, now: float, packet: Packet) -> None:
        if now - self._last_backoff < 1.0:
            return
        self._last_backoff = now
        self.rate = max(self.min_rate, self.rate * self.loss_beta)
