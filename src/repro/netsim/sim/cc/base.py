"""The congestion-controller seam between hosts and traffic models.

A controller owns exactly one number — the pacing rate its host feeds
into the token-bucket :class:`~repro.netsim.sim.pacer.Pacer` — and
updates it from the feedback the network gives a real sender: acks
(packet delivered, with an RTT sample) and losses (packet dropped at a
full queue).  Hosts call the hooks; controllers never touch the
scheduler directly, which keeps them trivially composable and testable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netsim.sim.packet import Packet


class CongestionController:
    """Base class: a fixed-rate controller ignoring all feedback."""

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        self.rate = float(rate)

    def bind(self, rng: Optional[np.random.Generator]) -> None:
        """Attach the flow's private RNG stream (once, before traffic)."""

    def pacing_rate(self, now: float) -> float:
        """Service-units per slot the host should currently send at."""
        return self.rate

    def wake_time(self, now: float) -> float:
        """When a silenced (rate 0) source should re-check its rate.

        Only consulted while :meth:`pacing_rate` returns 0; the default
        of ``inf`` means "never" — a plain zero-rate controller is mute
        forever.  On/off controllers return the end of the off phase.
        """
        return float("inf")

    # -- feedback hooks --------------------------------------------------------

    def on_sent(self, now: float, packet: Packet) -> None:
        """The host emitted *packet* at *now*."""

    def on_ack(self, now: float, packet: Packet, rtt: float) -> None:
        """*packet* was delivered; the ack reached the sender at *now*."""

    def on_loss(self, now: float, packet: Packet) -> None:
        """*packet* was dropped at a full queue; sender learns at *now*."""
