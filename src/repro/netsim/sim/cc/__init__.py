"""Background cross-traffic congestion controllers.

Three traffic personalities share the simulator's link queues with probe
traffic:

* :class:`ConstantBitRate` / :class:`OnOffCBR` — open-loop load, the
  latter calibrated to overflow a queue a target fraction of the time;
* :class:`AIMDController` — Reno-style additive-increase /
  multiplicative-decrease, the queue-sawtooth workhorse;
* :class:`RateProber` — a BBR-like periodic rate prober (burst, measure
  ``min(send, recv)`` rate, adopt).
"""

from repro.netsim.sim.cc.aimd import AIMDController
from repro.netsim.sim.cc.base import CongestionController
from repro.netsim.sim.cc.cbr import ConstantBitRate, OnOffCBR
from repro.netsim.sim.cc.prober import RateProber

__all__ = [
    "AIMDController",
    "CongestionController",
    "ConstantBitRate",
    "OnOffCBR",
    "RateProber",
]
