"""Rate-based AIMD (Reno-style) background flows.

The classic TCP dynamic re-phrased for a paced rate instead of a window:
every ack nudges the rate up so it gains ``increase_per_rtt`` service
units per smoothed RTT; every loss (outside a one-RTT refractory window,
mirroring Reno's once-per-window halving) multiplies it by ``beta``.
Sharing a FIFO with these flows gives the queue the sawtooth occupancy
pattern — and the loss bursts at the sawtooth peaks — that congestion
measurements actually see.
"""

from __future__ import annotations

from repro.netsim.sim.cc.base import CongestionController
from repro.netsim.sim.packet import Packet


class AIMDController(CongestionController):
    """Additive-increase / multiplicative-decrease pacing."""

    def __init__(
        self,
        initial_rate: float,
        min_rate: float = 0.1,
        max_rate: float = float("inf"),
        increase_per_rtt: float = 1.0,
        beta: float = 0.5,
        rtt_guess: float = 1.0,
    ) -> None:
        if initial_rate <= 0 or min_rate <= 0:
            raise ValueError("rates must be positive")
        if not 0 < beta < 1:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        super().__init__(initial_rate)
        self.min_rate = float(min_rate)
        self.max_rate = float(max_rate)
        self.increase_per_rtt = float(increase_per_rtt)
        self.beta = float(beta)
        self.srtt = float(rtt_guess)
        self._last_backoff = float("-inf")
        self.acks = 0
        self.losses = 0
        self.backoffs = 0

    def on_ack(self, now: float, packet: Packet, rtt: float) -> None:
        self.acks += 1
        self.srtt += 0.125 * (rtt - self.srtt)  # Jacobson's EWMA
        # Acks arrive at ~rate per slot, so adding
        # increase_per_rtt / (rate * srtt) per ack integrates to
        # +increase_per_rtt units of rate per smoothed RTT.
        gain = self.increase_per_rtt * packet.size / (self.rate * self.srtt)
        self.rate = min(self.max_rate, self.rate + gain)

    def on_loss(self, now: float, packet: Packet) -> None:
        self.losses += 1
        if now - self._last_backoff < self.srtt:
            return  # one halving per RTT window, like Reno
        self._last_backoff = now
        self.backoffs += 1
        self.rate = max(self.min_rate, self.rate * self.beta)
