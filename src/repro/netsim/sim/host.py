"""Traffic sources: paced hosts and the per-link probe tap.

A :class:`Host` drives one flow along a fixed route of
:class:`~repro.netsim.sim.link.SimLink`\\ s: it asks its congestion
controller for the current pacing rate, feeds that into a token-bucket
:class:`~repro.netsim.sim.pacer.Pacer`, and emits packets whenever a
token is available, rescheduling itself for the bucket's next ready
time.  Terminal packet outcomes come back through
:meth:`Host.handle_delivery` / :meth:`Host.handle_drop` (invoked by the
simulator's link callbacks) and are relayed to the controller after a
reverse-path delay, closing the control loop.

A :class:`ProbeTap` is the measurement-plane source: one tiny probe per
slot through a single link, stamped with its slot index so the
simulator can record the link's drop/delay realisation — the row of the
``(num_links, num_probes)`` matrices the tomography pipeline consumes.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.netsim.sim.cc.base import CongestionController
from repro.netsim.sim.clock import EventScheduler
from repro.netsim.sim.link import SimLink
from repro.netsim.sim.pacer import Pacer
from repro.netsim.sim.packet import Packet


class Host:
    """One congestion-controlled flow: controller -> pacer -> first link."""

    __slots__ = (
        "flow_id",
        "route",
        "cc",
        "pacer",
        "scheduler",
        "packet_size",
        "start_time",
        "stop_time",
        "ack_delay",
        "packets_sent",
        "acks",
        "losses",
        "_sequence",
        "_running",
    )

    def __init__(
        self,
        flow_id: int,
        route: Sequence[SimLink],
        cc: CongestionController,
        scheduler: EventScheduler,
        packet_size: float = 1.0,
        bucket: float = 2.0,
        start_time: float = 0.0,
        stop_time: float = float("inf"),
        ack_delay: Optional[float] = None,
    ) -> None:
        if not route:
            raise ValueError("a host needs a route of at least one link")
        if packet_size <= 0:
            raise ValueError(f"packet size must be positive, got {packet_size}")
        self.flow_id = flow_id
        self.route = tuple(route)
        self.cc = cc
        self.scheduler = scheduler
        self.packet_size = float(packet_size)
        self.start_time = float(start_time)
        self.stop_time = float(stop_time)
        # Reverse-path latency for acks and loss notifications: the
        # forward propagation is simulated hop by hop, the return path is
        # modelled as one lump (no reverse queueing).
        if ack_delay is None:
            ack_delay = sum(link.delay for link in route) + 0.05
        self.ack_delay = float(ack_delay)
        self.pacer = Pacer(
            rate=max(cc.pacing_rate(start_time), 0.0),
            bucket=max(bucket, packet_size),
            start=start_time,
        )
        self.packets_sent = 0
        self.acks = 0
        self.losses = 0
        self._sequence = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            raise RuntimeError("host already started")
        self._running = True
        self.scheduler.schedule(self.start_time, self._emit)

    # -- emission loop ---------------------------------------------------------

    def _emit(self) -> None:
        now = self.scheduler.now
        if now >= self.stop_time:
            return
        rate = self.cc.pacing_rate(now)
        if rate <= 0.0:
            wake = self.cc.wake_time(now)
            if wake != float("inf"):
                self.scheduler.schedule(
                    min(max(wake, now), self.stop_time), self._emit
                )
            return
        self.pacer.set_rate(rate, now)
        if self.pacer.try_send(now, self.packet_size):
            packet = Packet(
                flow_id=self.flow_id,
                sequence=self._sequence,
                route=self.route,
                sent_at=now,
                size=self.packet_size,
            )
            self._sequence += 1
            self.packets_sent += 1
            self.cc.on_sent(now, packet)
            self.route[0].enqueue(packet)
        next_time = self.pacer.ready_time(now, self.packet_size)
        if next_time == float("inf"):
            next_time = now + self.packet_size  # rate hit 0 mid-refill; re-poll
        self.scheduler.schedule(min(next_time, self.stop_time), self._emit)

    # -- feedback (invoked by the simulator's link callbacks) ------------------

    def handle_delivery(self, packet: Packet, now: float) -> None:
        self.scheduler.schedule(now + self.ack_delay, self._ack, packet)

    def handle_drop(self, packet: Packet, link: SimLink, now: float) -> None:
        self.scheduler.schedule(now + self.ack_delay, self._loss, packet)

    def _ack(self, packet: Packet) -> None:
        now = self.scheduler.now
        self.acks += 1
        self.cc.on_ack(now, packet, now - packet.sent_at)

    def _loss(self, packet: Packet) -> None:
        self.losses += 1
        self.cc.on_loss(self.scheduler.now, packet)


class ProbeTap:
    """One probe per slot through one link, slot-stamped for recording.

    The tap realises Assumption S.1 *structurally*: every path crossing
    the link observes this single per-slot realisation, produced by the
    shared queue itself rather than by a sampled process.
    """

    __slots__ = (
        "flow_id",
        "link",
        "num_probes",
        "phase",
        "probe_size",
        "scheduler",
    )

    def __init__(
        self,
        flow_id: int,
        link: SimLink,
        num_probes: int,
        scheduler: EventScheduler,
        phase: float = 0.0,
        probe_size: float = 0.05,
    ) -> None:
        if num_probes <= 0:
            raise ValueError(f"num_probes must be positive, got {num_probes}")
        if not 0.0 <= phase < 1.0:
            raise ValueError(f"phase must lie in [0, 1), got {phase}")
        if probe_size <= 0:
            raise ValueError(f"probe size must be positive, got {probe_size}")
        self.flow_id = flow_id
        self.link = link
        self.num_probes = int(num_probes)
        self.phase = float(phase)
        self.probe_size = float(probe_size)
        self.scheduler = scheduler

    def start(self) -> None:
        self.scheduler.schedule(self.phase, self._emit, 0)

    def _emit(self, slot: int) -> None:
        packet = Packet(
            flow_id=self.flow_id,
            sequence=slot,
            route=(self.link,),
            sent_at=self.scheduler.now,
            size=self.probe_size,
            probe_slot=slot,
        )
        self.link.enqueue(packet)
        if slot + 1 < self.num_probes:
            self.scheduler.schedule(self.phase + slot + 1, self._emit, slot + 1)


DeliveryDispatcher = Callable[[Packet, float], None]
