"""Token-bucket pacing of packet emission.

Every :class:`~repro.netsim.sim.host.Host` sends through a
:class:`Pacer`: tokens accrue at the pacing rate (set by the host's
congestion controller) up to a bucket depth, and sending one packet
costs its size in tokens.  A depth of one packet gives smooth
inter-packet gaps of ``size / rate``; deeper buckets let a source burst
back-to-back after an idle period — the arrival pattern that actually
fills FIFO queues.
"""

from __future__ import annotations

import math


class Pacer:
    """A token bucket: ``rate`` tokens per slot, capped at ``bucket``."""

    __slots__ = ("rate", "bucket", "_tokens", "_updated")

    def __init__(self, rate: float, bucket: float = 1.0, start: float = 0.0):
        if rate < 0:
            raise ValueError(f"pacing rate must be non-negative, got {rate}")
        if bucket <= 0:
            raise ValueError(f"bucket depth must be positive, got {bucket}")
        self.rate = float(rate)
        self.bucket = float(bucket)
        self._tokens = float(bucket)  # start full: first packet goes now
        self._updated = float(start)

    def set_rate(self, rate: float, now: float) -> None:
        """Change the refill rate, crediting tokens accrued so far."""
        if rate < 0:
            raise ValueError(f"pacing rate must be non-negative, got {rate}")
        self._refill(now)
        self.rate = float(rate)

    def _refill(self, now: float) -> None:
        if now > self._updated:
            self._tokens = min(
                self.bucket, self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now

    def tokens(self, now: float) -> float:
        self._refill(now)
        return self._tokens

    def try_send(self, now: float, size: float = 1.0) -> bool:
        """Consume *size* tokens if available; ``False`` means wait."""
        self._refill(now)
        if self._tokens + 1e-12 < size:
            return False
        self._tokens -= size
        return True

    def ready_time(self, now: float, size: float = 1.0) -> float:
        """Earliest time *size* tokens will be available (``inf`` at rate 0)."""
        self._refill(now)
        deficit = size - self._tokens
        if deficit <= 1e-12:
            return now
        if self.rate <= 0.0:
            return float("inf")
        ready = now + deficit / self.rate
        if ready <= now:
            # The deficit is real (try_send would refuse) but the wait is
            # below float resolution at this timestamp; one representable
            # tick accrues more than the deficit, so step exactly there
            # instead of livelocking the caller at a frozen clock.
            ready = math.nextafter(now, math.inf)
        return ready
