"""A store-and-forward link with a finite FIFO and drop-on-overflow.

The congestion mechanism of the whole subsystem lives here: a
:class:`SimLink` services queued packets one at a time at ``rate``
service-units per slot, holds at most ``buffer`` packets (including the
one in service), and *drops any arrival that finds the buffer full*.
Nothing ever samples a loss probability — a packet is lost if and only
if the queue it needed was full, so losses are bursty, correlated
across the flows sharing the queue, and coupled across links by the
multi-hop flows traversing them (exactly the congestion regime the
analytic Gilbert/Bernoulli processes cannot produce).

After service a packet propagates for ``delay`` slots and then either
enters the next link on its route or is delivered to the simulator's
sink.  Both terminal outcomes are reported through callbacks so hosts
can run congestion control on them.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.netsim.sim.clock import EventScheduler
from repro.netsim.sim.packet import Packet

#: ``on_drop(packet, link, now)`` — arrival found the buffer full.
DropCallback = Callable[[Packet, "SimLink", float], None]
#: ``on_deliver(packet, now)`` — packet left its last hop.
DeliverCallback = Callable[[Packet, float], None]


class SimLink:
    """One directed link: rate, propagation delay, finite FIFO buffer."""

    __slots__ = (
        "index",
        "rate",
        "delay",
        "buffer",
        "scheduler",
        "on_drop",
        "on_deliver",
        "_queue",
        "_busy",
        "arrivals",
        "drops",
        "served",
        "busy_until",
    )

    def __init__(
        self,
        index: int,
        rate: float,
        delay: float,
        buffer: int,
        scheduler: EventScheduler,
        on_drop: Optional[DropCallback] = None,
        on_deliver: Optional[DeliverCallback] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"link rate must be positive, got {rate}")
        if delay < 0:
            raise ValueError(f"propagation delay must be >= 0, got {delay}")
        if buffer < 1:
            raise ValueError(f"buffer must hold at least one packet, got {buffer}")
        self.index = index
        self.rate = float(rate)
        self.delay = float(delay)
        self.buffer = int(buffer)
        self.scheduler = scheduler
        self.on_drop = on_drop
        self.on_deliver = on_deliver
        self._queue: Deque[Packet] = deque()
        self._busy = False
        self.arrivals = 0
        self.drops = 0
        self.served = 0
        self.busy_until = 0.0

    # -- queue state -----------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Packets currently held (waiting plus in service)."""
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.buffer

    def service_time(self, packet: Packet) -> float:
        return packet.size / self.rate

    # -- the FIFO --------------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Accept *packet* (``True``) or drop it on overflow (``False``)."""
        now = self.scheduler.now
        self.arrivals += 1
        if len(self._queue) >= self.buffer:
            self.drops += 1
            if self.on_drop is not None:
                self.on_drop(packet, self, now)
            return False
        self._queue.append(packet)
        if not self._busy:
            self._busy = True
            self._schedule_departure(now)
        return True

    def _schedule_departure(self, now: float) -> None:
        head = self._queue[0]
        self.busy_until = now + self.service_time(head)
        self.scheduler.schedule(self.busy_until, self._depart)

    def _depart(self) -> None:
        now = self.scheduler.now
        packet = self._queue.popleft()
        self.served += 1
        self.scheduler.schedule(now + self.delay, self._arrive_downstream, packet)
        if self._queue:
            self._schedule_departure(now)
        else:
            self._busy = False

    def _arrive_downstream(self, packet: Packet) -> None:
        if packet.at_last_hop():
            packet.delivered_at = self.scheduler.now
            if self.on_deliver is not None:
                self.on_deliver(packet, self.scheduler.now)
            return
        packet.hop += 1
        packet.current_link().enqueue(packet)
