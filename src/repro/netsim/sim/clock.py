"""The simulator's clock and heap-based event scheduler.

Discrete-event core of :mod:`repro.netsim.sim`: a monotonic
:class:`Clock` advanced only by the :class:`EventScheduler`, which pops
``(time, sequence, callback)`` entries off a binary heap.  Two design
rules make whole simulations bit-reproducible:

* **Tie-breaking is total.**  Events scheduled for the same instant fire
  in *scheduling* order — the heap key is ``(time, sequence)`` where
  ``sequence`` is a monotonically increasing counter assigned when the
  event is pushed, never the (non-deterministic) identity of the
  callback.
* **Time never runs backwards.**  Scheduling an event before the
  current clock reading raises instead of silently reordering history.

Time is unit-agnostic; :mod:`repro.netsim.sim` measures it in *probe
slots* (one slot = one probe inter-departure interval).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class Clock:
    """Monotonic simulation time, advanced by the scheduler only."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, time: float) -> None:
        if time < self._now:
            raise ValueError(
                f"clock cannot run backwards: at {self._now}, asked for {time}"
            )
        self._now = time


class EventScheduler:
    """A heap of timestamped callbacks with deterministic tie-breaking."""

    __slots__ = ("clock", "_heap", "_sequence", "events_dispatched")

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._heap: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._sequence = 0
        self.events_dispatched = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` at absolute *time*.

        The callback receives no clock argument; read ``scheduler.now``
        inside it (the clock has been advanced by dispatch time).
        """
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule at {time}: clock already at {self.clock.now}"
            )
        heapq.heappush(self._heap, (float(time), self._sequence, callback, args))
        self._sequence += 1

    def run_until(self, horizon: float) -> None:
        """Dispatch events in ``(time, sequence)`` order up to *horizon*.

        Events stamped exactly at the horizon still fire; anything later
        stays queued (the heap is reusable, though :mod:`repro.netsim.sim`
        builds a fresh scheduler per snapshot).
        """
        heap = self._heap
        clock = self.clock
        while heap and heap[0][0] <= horizon:
            time, _, callback, args = heapq.heappop(heap)
            clock.advance_to(time)
            self.events_dispatched += 1
            callback(*args)

    def run_until_idle(self) -> None:
        """Dispatch until no events remain."""
        self.run_until(float("inf"))
