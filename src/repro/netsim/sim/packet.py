"""The unit of work flowing through the simulator.

A :class:`Packet` is deliberately tiny — a ``__slots__`` record, not a
dataclass — because the event loop creates one per transmission and the
benchmarks count packets per second.  Sizes are measured in *service
units*: a link with ``rate`` services one unit in ``1 / rate`` slots, so
a default-size packet occupies the transmitter for ``1 / rate``.
"""

from __future__ import annotations

from typing import Optional, Sequence


class Packet:
    """One packet in flight: identity, route position, and timestamps."""

    __slots__ = (
        "flow_id",
        "sequence",
        "size",
        "sent_at",
        "delivered_at",
        "probe_slot",
        "route",
        "hop",
    )

    def __init__(
        self,
        flow_id: int,
        sequence: int,
        route: Sequence["object"],
        sent_at: float,
        size: float = 1.0,
        probe_slot: Optional[int] = None,
    ) -> None:
        self.flow_id = flow_id
        self.sequence = sequence
        self.size = size
        self.sent_at = sent_at
        self.delivered_at: Optional[float] = None
        #: Probe packets carry the slot index their drop/delay is
        #: recorded under; background packets leave it ``None``.
        self.probe_slot = probe_slot
        self.route = tuple(route)
        self.hop = 0

    @property
    def is_probe(self) -> bool:
        return self.probe_slot is not None

    def current_link(self):
        return self.route[self.hop]

    def at_last_hop(self) -> bool:
        return self.hop == len(self.route) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = f"probe[{self.probe_slot}]" if self.is_probe else "data"
        return (
            f"Packet({kind} flow={self.flow_id} seq={self.sequence} "
            f"hop={self.hop}/{len(self.route)})"
        )
