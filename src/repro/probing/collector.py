"""The central measurement collector (Sections 3 and 7).

Beacons periodically upload their measurements; the collector aggregates
them per snapshot and supports the paper's indirect validation protocol
(Section 7.2): randomly split the measured paths into an *inference set*
and a *validation set* of equal size, run LIA on the inference half, and
check the inferred link rates against the withheld half.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.probing.snapshot import MeasurementCampaign, Snapshot
from repro.topology.graph import Path
from repro.topology.routing import RoutingMatrix
from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class PathSplit:
    """A random half/half partition of path rows."""

    inference_rows: Tuple[int, ...]
    validation_rows: Tuple[int, ...]

    def __post_init__(self) -> None:
        overlap = set(self.inference_rows) & set(self.validation_rows)
        if overlap:
            raise ValueError(f"rows appear in both halves: {sorted(overlap)[:5]}")


def split_paths(
    num_paths: int, seed: SeedLike = None, validation_fraction: float = 0.5
) -> PathSplit:
    """Randomly partition path rows into inference and validation sets."""
    if num_paths < 2:
        raise ValueError("need at least two paths to split")
    if not 0 < validation_fraction < 1:
        raise ValueError("validation_fraction must be in (0, 1)")
    rng = as_rng(seed)
    order = rng.permutation(num_paths)
    cut = int(round(num_paths * validation_fraction))
    cut = min(max(cut, 1), num_paths - 1)
    validation = tuple(sorted(int(i) for i in order[:cut]))
    inference = tuple(sorted(int(i) for i in order[cut:]))
    return PathSplit(inference_rows=inference, validation_rows=validation)


def restrict_campaign(
    campaign: MeasurementCampaign,
    paths: Sequence[Path],
    rows: Sequence[int],
) -> Tuple[MeasurementCampaign, List[Path], RoutingMatrix]:
    """Project a campaign onto a subset of its path rows.

    Re-indexes the selected paths, rebuilds the (re-reduced) routing
    matrix over them — the inference topology covers fewer links, exactly
    as in the paper's protocol — and slices every snapshot's measurements.
    """
    rows = list(rows)
    if not rows:
        raise ValueError("row subset must be non-empty")
    sub_paths: List[Path] = []
    for new_index, row in enumerate(rows):
        old = paths[row]
        sub_paths.append(
            Path(index=new_index, source=old.source, dest=old.dest, links=old.links)
        )
    sub_routing = RoutingMatrix.from_paths(sub_paths)
    selector = np.asarray(rows, dtype=np.int64)
    sub_campaign = MeasurementCampaign(
        routing=sub_routing,
        snapshots=[
            Snapshot(
                path_transmission=snap.path_transmission[selector],
                num_probes=snap.num_probes,
                truth=snap.truth,
                realized_loss_fractions=snap.realized_loss_fractions,
            )
            for snap in campaign.snapshots
        ],
    )
    return sub_campaign, sub_paths, sub_routing
