"""Probe scheduling with per-beacon rate limits (Section 7.1).

The PlanetLab deployment probed with 40-byte UDP packets at 10 ms spacing
(1000 probes in 10 s per path), capped each beacon at 100 KB/s — i.e.
~150 paths per minute per beacon — and randomised the order in which each
host probed the others.  This module reproduces that schedule so the
campaign example can report realistic round durations and so tests can
assert the rate cap is honoured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.topology.graph import Path
from repro.utils.rng import SeedLike, as_rng

PROBE_SIZE_BYTES = 40  # 20 IP + 8 UDP + 12 payload
DEFAULT_INTERARRIVAL_S = 0.010
DEFAULT_RATE_CAP_BYTES_PER_S = 100_000


@dataclass(frozen=True)
class ScheduledMeasurement:
    """One path measurement placed on a beacon's timeline."""

    path_index: int
    beacon: int
    start_time_s: float
    duration_s: float

    @property
    def end_time_s(self) -> float:
        return self.start_time_s + self.duration_s


@dataclass
class ProbeSchedule:
    """A full measurement round: per-beacon timelines of measurements."""

    measurements: List[ScheduledMeasurement]
    probes_per_path: int

    @property
    def round_duration_s(self) -> float:
        return max((m.end_time_s for m in self.measurements), default=0.0)

    def per_beacon(self) -> Dict[int, List[ScheduledMeasurement]]:
        grouped: Dict[int, List[ScheduledMeasurement]] = {}
        for m in self.measurements:
            grouped.setdefault(m.beacon, []).append(m)
        for timeline in grouped.values():
            timeline.sort(key=lambda m: m.start_time_s)
        return grouped

    def beacon_send_rate_bytes_per_s(self, beacon: int) -> float:
        """Average bytes/s the beacon emits over its active window."""
        timeline = self.per_beacon().get(beacon, [])
        if not timeline:
            return 0.0
        span = max(m.end_time_s for m in timeline)
        total_bytes = len(timeline) * self.probes_per_path * PROBE_SIZE_BYTES
        return total_bytes / span if span > 0 else math.inf


class ProbeScheduler:
    """Serialise each beacon's measurements under its byte-rate cap.

    Probing one path takes ``probes_per_path * interarrival`` seconds and
    emits at ``PROBE_SIZE / interarrival`` bytes/s.  The cap limits how
    many paths a beacon may probe *concurrently*; like the paper we keep
    it simple and allow ``floor(cap / per_path_rate)`` parallel streams,
    batching the (randomised) path list accordingly.
    """

    def __init__(
        self,
        probes_per_path: int = 1000,
        interarrival_s: float = DEFAULT_INTERARRIVAL_S,
        rate_cap_bytes_per_s: float = DEFAULT_RATE_CAP_BYTES_PER_S,
    ) -> None:
        if probes_per_path <= 0:
            raise ValueError("probes_per_path must be positive")
        if interarrival_s <= 0:
            raise ValueError("interarrival_s must be positive")
        if rate_cap_bytes_per_s <= 0:
            raise ValueError("rate_cap_bytes_per_s must be positive")
        self.probes_per_path = probes_per_path
        self.interarrival_s = interarrival_s
        self.rate_cap_bytes_per_s = rate_cap_bytes_per_s

    @property
    def per_path_rate_bytes_per_s(self) -> float:
        return PROBE_SIZE_BYTES / self.interarrival_s

    @property
    def max_parallel_paths(self) -> int:
        return max(1, int(self.rate_cap_bytes_per_s // self.per_path_rate_bytes_per_s))

    @property
    def path_duration_s(self) -> float:
        return self.probes_per_path * self.interarrival_s

    def schedule_round(
        self, paths: Sequence[Path], seed: SeedLike = None
    ) -> ProbeSchedule:
        """Assign a start time to every path measurement of one round."""
        rng = as_rng(seed)
        by_beacon: Dict[int, List[int]] = {}
        for i, path in enumerate(paths):
            by_beacon.setdefault(path.source, []).append(i)

        measurements: List[ScheduledMeasurement] = []
        parallel = self.max_parallel_paths
        for beacon in sorted(by_beacon):
            order = list(by_beacon[beacon])
            rng.shuffle(order)
            for slot, path_index in enumerate(order):
                batch = slot // parallel
                measurements.append(
                    ScheduledMeasurement(
                        path_index=path_index,
                        beacon=beacon,
                        start_time_s=batch * self.path_duration_s,
                        duration_s=self.path_duration_s,
                    )
                )
        return ProbeSchedule(
            measurements=measurements, probes_per_path=self.probes_per_path
        )
