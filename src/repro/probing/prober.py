"""The probing simulator: periodic unicast probes over a lossy network.

Replaces the paper's PlanetLab probing infrastructure (Section 7.1: 40-byte
UDP probes, 10 ms inter-arrival, 1000 probes per 10 s slot).  Two fidelity
modes exercise the same downstream estimator code:

* ``"packet"`` — every link runs one loss-process realisation per snapshot
  (a boolean drop sequence indexed by probe slot); a path's probe survives
  when *no* traversed link drops that slot.  All paths crossing a link see
  the same realisation, which makes Assumption S.1 hold exactly and
  induces the cross-path covariance LIA feeds on.
* ``"flow"`` — each link contributes its snapshot loss *fraction*; a
  path's transmission rate is the product of per-link survival fractions,
  optionally re-sampled through a binomial to model path-level sampling
  noise.  ~10x faster, used for large sweeps.

Ground truth (congestion marks + average rates) evolves across snapshots
according to :class:`ProberConfig.truth_mode`: held fixed (default, the
regime of the Section 6 results), redrawn i.i.d., Markov-persistent, or
driven by per-link congestion propensities (the Section 7 churn regime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import sparse

from repro.lossmodel.assignment import (
    SnapshotGroundTruth,
    draw_link_propensities,
    draw_snapshot_truth,
    persistent_congestion_truth,
    truth_from_propensities,
)
from repro.lossmodel.gilbert import GilbertProcess
from repro.lossmodel.models import LLRD1, LossRateModel
from repro.lossmodel.processes import LossProcess
from repro.topology.graph import Path
from repro.topology.routing import RoutingMatrix
from repro.probing.snapshot import MeasurementCampaign, Snapshot
from repro.utils.rng import SeedLike, as_rng

FIDELITY_MODES = ("packet", "flow")
TRUTH_MODES = ("fixed", "redraw", "persistent", "propensity")


@dataclass
class ProberConfig:
    """Knobs of one probing campaign (paper defaults).

    ``truth_mode`` controls how ground truth evolves across snapshots:

    * ``"fixed"`` (default) — the congested set and average rates are
      drawn once and held for the whole campaign; snapshots differ only
      through the bursty packet process.  This is the regime in which the
      variance ordering of Section 5.2 is informative (a congested link
      "will experience different congestion levels at different times",
      Assumption S.1's discussion) and is how the paper's Figure 5/6
      accuracy is achievable.
    * ``"redraw"`` — independent truth per snapshot (the literal sentence
      of Section 6).  Every link then shares the same marginal process,
      so across-snapshot variances no longer separate the classes; kept
      as an ablation.
    * ``"persistent"`` — Markov evolution: each link keeps its congestion
      mark with probability ``persistence`` per snapshot (duration study).
    * ``"propensity"`` — per-link congestion probabilities are drawn once
      (a ``congestion_probability`` fraction of links become trouble-prone
      with per-snapshot congestion probability in ``propensity_range``);
      each snapshot redraws states from those probabilities.  This is the
      Internet-experiment regime of Section 7: congestion churns per
      snapshot, but propensity is a stable per-link property that the
      variance learning phase can rank.
    """

    probes_per_snapshot: int = 1000
    congestion_probability: float = 0.10
    fidelity: str = "packet"
    truth_mode: str = "fixed"
    persistence: float = 0.9
    propensity_range: "tuple[float, float]" = (0.3, 0.9)
    #: In flow mode, re-sample each path's rate through Binomial(S, rate).
    path_sampling_noise: bool = True

    def __post_init__(self) -> None:
        if self.probes_per_snapshot <= 0:
            raise ValueError("probes_per_snapshot must be positive")
        if not 0 <= self.congestion_probability <= 1:
            raise ValueError("congestion_probability must be in [0, 1]")
        if self.fidelity not in FIDELITY_MODES:
            raise ValueError(
                f"fidelity must be one of {FIDELITY_MODES}, got {self.fidelity!r}"
            )
        if self.truth_mode not in TRUTH_MODES:
            raise ValueError(
                f"truth_mode must be one of {TRUTH_MODES}, got {self.truth_mode!r}"
            )
        if not 0 <= self.persistence <= 1:
            raise ValueError("persistence must be in [0, 1]")
        lo, hi = self.propensity_range
        if not 0 <= lo <= hi <= 1:
            raise ValueError(f"bad propensity_range {self.propensity_range}")


class ProbingSimulator:
    """Simulate snapshots of end-to-end measurements over known paths.

    Parameters
    ----------
    paths:
        The probing paths (physical link sequences).
    num_physical_links:
        Total number of physical links in the network (sizes the per-link
        ground-truth vectors).
    model, process, config:
        Loss-rate model (LLRD1/LLRD2), packet process (Gilbert/Bernoulli)
        and campaign configuration.
    """

    def __init__(
        self,
        paths: Sequence[Path],
        num_physical_links: int,
        model: LossRateModel = LLRD1,
        process: Optional[LossProcess] = None,
        config: Optional[ProberConfig] = None,
    ) -> None:
        if not paths:
            raise ValueError("need at least one probing path")
        if num_physical_links <= 0:
            raise ValueError("num_physical_links must be positive")
        max_index = max(link.index for p in paths for link in p.links)
        if max_index >= num_physical_links:
            raise ValueError(
                f"path references link {max_index} but only "
                f"{num_physical_links} links declared"
            )
        self.paths = list(paths)
        self.num_physical_links = num_physical_links
        self.model = model
        self.process = process if process is not None else GilbertProcess()
        self.config = config if config is not None else ProberConfig()
        self._path_links: List[np.ndarray] = [
            np.fromiter((link.index for link in p.links), dtype=np.int64)
            for p in self.paths
        ]
        # Sparse (paths x physical links) membership matrix: one batched
        # matmul replaces the per-path gather loops in both fidelity modes.
        indptr = np.zeros(len(self.paths) + 1, dtype=np.int64)
        np.cumsum([links.size for links in self._path_links], out=indptr[1:])
        indices = (
            np.concatenate(self._path_links)
            if self.paths
            else np.empty(0, dtype=np.int64)
        )
        self._membership = sparse.csr_matrix(
            (
                np.ones(indices.size, dtype=np.float64),
                indices,
                indptr,
            ),
            shape=(len(self.paths), num_physical_links),
        )

    # -- single snapshot -----------------------------------------------------

    def run_snapshot(
        self,
        seed: SeedLike = None,
        truth: Optional[SnapshotGroundTruth] = None,
    ) -> Snapshot:
        """Simulate one snapshot; draw fresh ground truth unless given."""
        rng = as_rng(seed)
        if truth is None:
            truth = draw_snapshot_truth(
                self.num_physical_links,
                self.config.congestion_probability,
                self.model,
                seed=rng,
            )
        elif truth.num_links != self.num_physical_links:
            raise ValueError("ground truth does not match link count")

        if self.config.fidelity == "packet":
            rates, realized = self._measure_packet(truth, rng)
        else:
            rates, realized = self._measure_flow(truth, rng)
        return Snapshot(
            path_transmission=rates,
            num_probes=self.config.probes_per_snapshot,
            truth=truth,
            realized_loss_fractions=realized,
        )

    def _measure_packet(
        self, truth: SnapshotGroundTruth, rng: np.random.Generator
    ) -> "tuple[np.ndarray, np.ndarray]":
        num_probes = self.config.probes_per_snapshot
        drops = self.process.sample_states(truth.loss_rates, num_probes, seed=rng)
        # counts[i, t] = how many of path i's links dropped probe slot t;
        # a probe survives iff that count is zero.
        counts = self._membership @ drops.astype(np.float64)
        rates = 1.0 - (counts > 0).mean(axis=1)
        return rates, drops.mean(axis=1)

    def _measure_flow(
        self, truth: SnapshotGroundTruth, rng: np.random.Generator
    ) -> "tuple[np.ndarray, np.ndarray]":
        num_probes = self.config.probes_per_snapshot
        fractions = self.process.sample_loss_fractions(
            truth.loss_rates, num_probes, seed=rng
        )
        survival = 1.0 - fractions
        log_survival = np.log(np.maximum(survival, 1e-300))
        rates = np.exp(self._membership @ log_survival)
        if self.config.path_sampling_noise:
            rates = rng.binomial(num_probes, rates) / float(num_probes)
        return rates, fractions

    # -- campaigns -------------------------------------------------------------

    def run_campaign(
        self,
        num_snapshots: int,
        routing: RoutingMatrix,
        seed: SeedLike = None,
        truth_mode: Optional[str] = None,
        propensities: Optional[np.ndarray] = None,
    ) -> MeasurementCampaign:
        """Simulate *num_snapshots* snapshots over a fixed routing matrix.

        *truth_mode* overrides the config's ground-truth evolution mode
        (see :class:`ProberConfig`).  *propensities* supplies explicit
        per-physical-link congestion probabilities for ``"propensity"``
        mode (e.g. boosted on inter-AS links for the Table 3 study); when
        omitted they are drawn from the config.
        """
        if num_snapshots <= 0:
            raise ValueError("num_snapshots must be positive")
        mode = truth_mode if truth_mode is not None else self.config.truth_mode
        if mode not in TRUTH_MODES:
            raise ValueError(f"truth_mode must be one of {TRUTH_MODES}, got {mode!r}")
        rng = as_rng(seed)
        campaign = MeasurementCampaign(routing=routing)
        truth: Optional[SnapshotGroundTruth] = None
        if propensities is not None:
            propensities = np.asarray(propensities, dtype=np.float64)
            if propensities.shape != (self.num_physical_links,):
                raise ValueError("one propensity per physical link required")
            if mode != "propensity":
                raise ValueError(
                    "explicit propensities require truth_mode='propensity'"
                )
        elif mode == "propensity":
            propensities = draw_link_propensities(
                self.num_physical_links,
                self.config.congestion_probability,
                self.config.propensity_range,
                seed=rng,
            )
        for _ in range(num_snapshots):
            if mode == "propensity":
                truth = truth_from_propensities(propensities, self.model, seed=rng)
            elif truth is None or mode == "redraw":
                truth = draw_snapshot_truth(
                    self.num_physical_links,
                    self.config.congestion_probability,
                    self.model,
                    seed=rng,
                )
            elif mode == "persistent":
                truth = persistent_congestion_truth(
                    truth,
                    self.model,
                    redraw_fraction=1.0 - self.config.persistence,
                    seed=rng,
                )
            # mode == "fixed": keep the first draw for the whole campaign.
            campaign.append(self.run_snapshot(seed=rng, truth=truth))
        return campaign
