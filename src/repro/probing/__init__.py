"""Probing simulator: snapshots, campaigns, scheduling, collection."""

from repro.probing.collector import PathSplit, restrict_campaign, split_paths
from repro.probing.prober import ProberConfig, ProbingSimulator
from repro.probing.scheduler import (
    ProbeSchedule,
    ProbeScheduler,
    ScheduledMeasurement,
)
from repro.probing.snapshot import MeasurementCampaign, Snapshot, log_with_floor

__all__ = [
    "MeasurementCampaign",
    "PathSplit",
    "ProbeSchedule",
    "ProbeScheduler",
    "ProberConfig",
    "ProbingSimulator",
    "ScheduledMeasurement",
    "Snapshot",
    "log_with_floor",
    "restrict_campaign",
    "split_paths",
]
