"""Snapshots and measurement campaigns (Section 3.3).

A *snapshot* is the collection of all end-to-end measurements taken by
sending ``S`` probes from each beacon to each destination in one time
slot.  A *campaign* is the sequence of ``m (+1)`` snapshots LIA consumes:
the first ``m`` train the link variances, the last one is the inference
target.

The paper works with log transmission rates ``Y_i = log(phi_i)``.  An
entirely lost path would give ``log 0``; we apply the standard continuity
correction, flooring the measured transmission rate at ``0.5 / S`` (half
a probe) before taking logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.lossmodel.assignment import SnapshotGroundTruth
from repro.topology.routing import RoutingMatrix


def log_with_floor(
    transmission_rates: np.ndarray, num_probes: int, floor: Optional[float] = None
) -> np.ndarray:
    """``log`` of measured transmission rates with a continuity floor.

    *floor* defaults to ``0.5 / num_probes``; rates are clipped to
    ``[floor, 1]`` so the log is finite and non-positive.
    """
    if floor is None:
        floor = 0.5 / float(num_probes)
    if not 0 < floor <= 1:
        raise ValueError(f"floor must be in (0, 1], got {floor}")
    rates = np.asarray(transmission_rates, dtype=np.float64)
    return np.log(np.clip(rates, floor, 1.0))


@dataclass(frozen=True)
class Snapshot:
    """One measurement slot: measured path rates plus simulator ground truth.

    Two notions of per-link truth coexist:

    * ``truth`` — the *assigned* averages (congestion marks and mean loss
      rates) the loss process was parameterised with;
    * ``realized_loss_fractions`` — the fraction of this snapshot's probe
      slots each physical link actually dropped.  This is the quantity
      ``X_k = log(phi_hat_ek)`` of the paper, the thing LIA estimates for
      *this* snapshot; accuracy metrics compare against it.

    Both cover *physical* links; project onto routing-matrix columns with
    the ``virtual_*`` methods.  Fields are ``None`` for snapshots built
    from external traces.
    """

    path_transmission: np.ndarray
    num_probes: int
    truth: Optional[SnapshotGroundTruth] = None
    realized_loss_fractions: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        rates = np.asarray(self.path_transmission, dtype=np.float64)
        if rates.ndim != 1:
            raise ValueError("path_transmission must be one-dimensional")
        if np.any((rates < 0) | (rates > 1)):
            raise ValueError("transmission rates must lie in [0, 1]")
        if self.num_probes <= 0:
            raise ValueError("num_probes must be positive")
        object.__setattr__(self, "path_transmission", rates)
        if self.realized_loss_fractions is not None:
            realized = np.asarray(self.realized_loss_fractions, dtype=np.float64)
            if np.any((realized < 0) | (realized > 1)):
                raise ValueError("realized loss fractions must lie in [0, 1]")
            object.__setattr__(self, "realized_loss_fractions", realized)

    @property
    def num_paths(self) -> int:
        return int(self.path_transmission.shape[0])

    def path_loss_rates(self) -> np.ndarray:
        return 1.0 - self.path_transmission

    def path_log_rates(self, floor: Optional[float] = None) -> np.ndarray:
        return log_with_floor(self.path_transmission, self.num_probes, floor)

    def virtual_loss_rates(self, routing: RoutingMatrix) -> np.ndarray:
        """Ground-truth loss rate of each routing-matrix column."""
        if self.truth is None:
            raise ValueError("snapshot carries no ground truth")
        return 1.0 - routing.aggregate_rates(self.truth.transmission_rates())

    def virtual_congested(self, routing: RoutingMatrix) -> np.ndarray:
        """Ground-truth congestion mark of each routing-matrix column."""
        if self.truth is None:
            raise ValueError("snapshot carries no ground truth")
        return routing.aggregate_any(self.truth.congested)

    def realized_virtual_loss_rates(self, routing: RoutingMatrix) -> np.ndarray:
        """Realized (this-snapshot) loss rate of each routing-matrix column.

        The per-column complement of the product of member survival
        fractions — what phase 2's ``X*`` estimates.
        """
        if self.realized_loss_fractions is None:
            raise ValueError("snapshot carries no realized link fractions")
        survival = 1.0 - self.realized_loss_fractions
        return 1.0 - routing.aggregate_rates(survival)


@dataclass
class MeasurementCampaign:
    """An ordered collection of snapshots over one fixed routing matrix."""

    routing: RoutingMatrix
    snapshots: List[Snapshot] = field(default_factory=list)

    def __post_init__(self) -> None:
        for snap in self.snapshots:
            self._check(snap)

    def _check(self, snapshot: Snapshot) -> None:
        if snapshot.num_paths != self.routing.num_paths:
            raise ValueError(
                f"snapshot has {snapshot.num_paths} paths, routing matrix "
                f"has {self.routing.num_paths}"
            )

    def append(self, snapshot: Snapshot) -> None:
        self._check(snapshot)
        self.snapshots.append(snapshot)

    def __len__(self) -> int:
        return len(self.snapshots)

    def __getitem__(self, index: int) -> Snapshot:
        return self.snapshots[index]

    def log_matrix(self, floor: Optional[float] = None) -> np.ndarray:
        """``(m, num_paths)`` matrix of log path transmission rates."""
        if not self.snapshots:
            raise ValueError("campaign is empty")
        return np.vstack([s.path_log_rates(floor) for s in self.snapshots])

    def split_training_target(
        self, num_training: Optional[int] = None
    ) -> "tuple[MeasurementCampaign, Snapshot]":
        """First ``m`` snapshots for variance learning, last one to infer."""
        if len(self.snapshots) < 2:
            raise ValueError("need at least two snapshots to split")
        if num_training is None:
            num_training = len(self.snapshots) - 1
        if not 1 <= num_training < len(self.snapshots):
            raise ValueError(
                f"num_training must be in [1, {len(self.snapshots) - 1}]"
            )
        training = MeasurementCampaign(
            routing=self.routing, snapshots=self.snapshots[:num_training]
        )
        return training, self.snapshots[num_training]
