"""Minimal fixed-width text tables for experiment reports.

The experiment harness prints the same rows the paper's tables and figure
series report.  We keep rendering dependency-free and deterministic so the
output can be diffed between runs and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell, float_fmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


class TextTable:
    """Accumulate rows and render an aligned, pipe-separated table.

    Example
    -------
    >>> t = TextTable(["topology", "DR", "FPR"])
    >>> t.add_row(["tree", 0.95, 0.02])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    topology | DR     | FPR
    ---------+--------+-------
    tree     | 0.9500 | 0.0200
    """

    def __init__(self, headers: Sequence[str], float_fmt: str = "{:.4f}"):
        if not headers:
            raise ValueError("a table needs at least one column")
        self.headers = [str(h) for h in headers]
        self.float_fmt = float_fmt
        self._rows: List[List[str]] = []

    def add_row(self, row: Iterable[Cell]) -> None:
        cells = [_format_cell(c, self.float_fmt) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self._rows.append(cells)

    def __len__(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines = [header.rstrip(), rule]
        for row in self._rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        header = "| " + " | ".join(self.headers) + " |"
        rule = "|" + "|".join(" --- " for _ in self.headers) + "|"
        lines = [header, rule]
        for row in self._rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)
