"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that
may be ``None`` (non-deterministic), an integer, or an already-constructed
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
rest of the code base free of ``isinstance`` checks and guarantees that
experiments are reproducible end to end when a seed is supplied.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Passing a ``Generator`` returns it unchanged so that callers can thread
    a single stream through a pipeline without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive *count* statistically independent generators from *seed*.

    Used by experiment runners that repeat a configuration several times:
    each repetition gets its own child stream so repetitions are independent
    yet the whole sweep is reproducible from one seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(seed: SeedLike, index: int) -> Optional[int]:
    """Return a stable derived integer seed for repetition *index*.

    ``None`` stays ``None`` (fully random).  Integers are mixed with the
    index through a SeedSequence so that (seed, 0), (seed, 1), ... give
    independent streams.
    """
    if seed is None:
        return None
    if isinstance(seed, (np.random.Generator, np.random.SeedSequence)):
        raise TypeError("derive_seed expects an int or None")
    return int(np.random.SeedSequence([int(seed), int(index)]).generate_state(1)[0])
