"""Shared utilities: seeded RNG plumbing, text tables, and logging."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.tables import TextTable

__all__ = ["as_rng", "spawn_rngs", "TextTable"]
