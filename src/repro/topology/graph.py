"""Directed network graph model.

The paper models the network as a directed graph ``G(V, E)`` whose nodes are
routers/hosts and whose edges are unidirectional communication links
(Section 3.1).  This module provides that model plus deterministic
shortest-path routing.  Routing is *destination-consistent*: ties are broken
by a canonical ordering so that repeated computations give identical paths
(Assumption T.1, time-invariant routing) and paths from one source form a
tree (a prerequisite of Assumption T.2, no route fluttering).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

NodeId = int


@dataclass(frozen=True)
class Link:
    """A directed physical link ``tail -> head``.

    ``index`` is the position of the link in :attr:`Network.links`; it is
    assigned by the :class:`Network` and used everywhere else in the library
    as the canonical link identifier.
    """

    index: int
    tail: NodeId
    head: NodeId

    def endpoints(self) -> Tuple[NodeId, NodeId]:
        return (self.tail, self.head)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"e{self.index}({self.tail}->{self.head})"


class Network:
    """A directed graph with O(1) link lookup by endpoints.

    Nodes are dense integers ``0..n-1``; this keeps routing-matrix
    construction and the simulators allocation-friendly.  Links are added
    one direction at a time; use :meth:`add_duplex` for a bidirectional pair
    (the common case for Internet topologies, where each direction is an
    independent tomography unknown).
    """

    def __init__(self) -> None:
        self._links: List[Link] = []
        self._out: Dict[NodeId, List[Link]] = {}
        self._in: Dict[NodeId, List[Link]] = {}
        self._by_endpoints: Dict[Tuple[NodeId, NodeId], Link] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, node: NodeId) -> NodeId:
        """Register *node* (idempotent) and return it."""
        if node < 0:
            raise ValueError(f"node ids must be non-negative, got {node}")
        if node not in self._out:
            self._out[node] = []
            self._in[node] = []
        return node

    def add_link(self, tail: NodeId, head: NodeId) -> Link:
        """Add the directed link ``tail -> head`` and return it.

        Parallel links between the same pair are rejected: they would be
        indistinguishable from end to end and are never needed by the
        generators (alias reduction would merge them anyway).
        """
        if tail == head:
            raise ValueError(f"self-loop at node {tail} is not a valid link")
        if (tail, head) in self._by_endpoints:
            raise ValueError(f"duplicate link {tail}->{head}")
        self.add_node(tail)
        self.add_node(head)
        link = Link(index=len(self._links), tail=tail, head=head)
        self._links.append(link)
        self._out[tail].append(link)
        self._in[head].append(link)
        self._by_endpoints[(tail, head)] = link
        return link

    def add_duplex(self, a: NodeId, b: NodeId) -> Tuple[Link, Link]:
        """Add both directions between *a* and *b*."""
        return self.add_link(a, b), self.add_link(b, a)

    # -- queries -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._out)

    @property
    def num_links(self) -> int:
        return len(self._links)

    @property
    def links(self) -> Sequence[Link]:
        return tuple(self._links)

    def nodes(self) -> Iterator[NodeId]:
        return iter(sorted(self._out))

    def link(self, index: int) -> Link:
        return self._links[index]

    def find_link(self, tail: NodeId, head: NodeId) -> Optional[Link]:
        return self._by_endpoints.get((tail, head))

    def has_node(self, node: NodeId) -> bool:
        return node in self._out

    def out_links(self, node: NodeId) -> Sequence[Link]:
        return tuple(self._out.get(node, ()))

    def in_links(self, node: NodeId) -> Sequence[Link]:
        return tuple(self._in.get(node, ()))

    def out_degree(self, node: NodeId) -> int:
        return len(self._out.get(node, ()))

    def in_degree(self, node: NodeId) -> int:
        return len(self._in.get(node, ()))

    def degree(self, node: NodeId) -> int:
        return self.out_degree(node) + self.in_degree(node)

    # -- routing -----------------------------------------------------------

    def shortest_path_tree(self, source: NodeId) -> Dict[NodeId, Link]:
        """Deterministic Dijkstra (unit weights) from *source*.

        Returns a parent map ``node -> incoming Link`` on the shortest-path
        tree.  Ties are broken by preferring the smallest predecessor node
        id, then the smallest link index; the tree is therefore a pure
        function of the graph, which realises Assumption T.1.
        """
        if not self.has_node(source):
            raise KeyError(f"unknown source node {source}")
        dist: Dict[NodeId, int] = {source: 0}
        parent: Dict[NodeId, Link] = {}
        # Heap entries carry the tie-break key so that the first settled
        # label for a node is the canonical one.
        heap: List[Tuple[int, NodeId, int, NodeId]] = [(0, -1, -1, source)]
        settled = set()
        while heap:
            d, _, _, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            for link in self._out[node]:
                nd = d + 1
                known = dist.get(link.head)
                if known is None or nd < known or (
                    nd == known
                    and link.head not in settled
                    and (node, link.index)
                    < (parent[link.head].tail, parent[link.head].index)
                ):
                    dist[link.head] = nd
                    parent[link.head] = link
                    heapq.heappush(heap, (nd, node, link.index, link.head))
        return parent

    def route(self, source: NodeId, dest: NodeId) -> Optional[List[Link]]:
        """Canonical shortest path ``source -> dest`` as a list of links.

        Returns ``None`` when *dest* is unreachable.  For batch routing use
        :meth:`routes_from`, which amortises the Dijkstra run.
        """
        routes = self.routes_from(source, [dest])
        return routes.get(dest)

    def routes_from(
        self, source: NodeId, dests: Iterable[NodeId]
    ) -> Dict[NodeId, List[Link]]:
        """Canonical shortest paths from *source* to every node in *dests*."""
        parent = self.shortest_path_tree(source)
        out: Dict[NodeId, List[Link]] = {}
        for dest in dests:
            if dest == source:
                out[dest] = []
                continue
            if dest not in parent:
                continue  # unreachable; caller decides how to handle
            hops: List[Link] = []
            node = dest
            while node != source:
                link = parent[node]
                hops.append(link)
                node = link.tail
            hops.reverse()
            out[dest] = hops
        return out

    def is_connected_from(self, source: NodeId) -> bool:
        """True when every node is reachable from *source*."""
        return len(self.shortest_path_tree(source)) + 1 >= self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Network(nodes={self.num_nodes}, links={self.num_links})"


@dataclass(frozen=True)
class Path:
    """An end-to-end path: an ordered sequence of physical links.

    ``index`` is the row of the path in the routing matrix.  Paths are
    immutable; the link tuple is the ground truth the probing simulator
    walks, before any alias reduction.
    """

    index: int
    source: NodeId
    dest: NodeId
    links: Tuple[Link, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError("a path must contain at least one link")
        if self.links[0].tail != self.source:
            raise ValueError("path does not start at its source")
        if self.links[-1].head != self.dest:
            raise ValueError("path does not end at its destination")
        for a, b in zip(self.links, self.links[1:]):
            if a.head != b.tail:
                raise ValueError(f"discontinuous path at {a} -> {b}")

    @property
    def length(self) -> int:
        return len(self.links)

    def link_indices(self) -> Tuple[int, ...]:
        return tuple(link.index for link in self.links)

    def node_sequence(self) -> Tuple[NodeId, ...]:
        return (self.source,) + tuple(link.head for link in self.links)

    def traverses(self, link_index: int) -> bool:
        return any(link.index == link_index for link in self.links)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"P{self.index}({self.source}->{self.dest}, {self.length} hops)"


def build_paths(
    network: Network,
    beacons: Sequence[NodeId],
    destinations: Sequence[NodeId],
    skip_unreachable: bool = False,
) -> List[Path]:
    """Compute the canonical probing paths beacon -> destination.

    One path per (beacon, destination) pair with ``beacon != destination``,
    mirroring Section 3: every beacon probes every destination.  Raises if a
    destination is unreachable unless *skip_unreachable* is set.
    """
    paths: List[Path] = []
    for beacon in beacons:
        routes = network.routes_from(beacon, destinations)
        for dest in destinations:
            if dest == beacon:
                continue
            hops = routes.get(dest)
            if hops is None:
                if skip_unreachable:
                    continue
                raise ValueError(f"destination {dest} unreachable from {beacon}")
            paths.append(
                Path(index=len(paths), source=beacon, dest=dest, links=tuple(hops))
            )
    return paths
