"""Network topology substrate: graphs, routing matrices, generators.

Public surface:

* :class:`~repro.topology.graph.Network`, :class:`~repro.topology.graph.Path`
  and :func:`~repro.topology.graph.build_paths` — the directed graph model
  and canonical shortest-path probing routes;
* :class:`~repro.topology.routing.RoutingMatrix` — the reduced routing
  matrix ``R`` with alias and coverage reduction (Section 3.1);
* route-fluttering checks for Assumption T.2;
* the generators subpackage for the paper's evaluation topologies.
"""

from repro.topology.fluttering import (
    assert_no_fluttering,
    find_fluttering_pairs,
    paths_flutter,
    remove_fluttering_paths,
)
from repro.topology.graph import Link, Network, Path, build_paths
from repro.topology.prepare import (
    MESH_TOPOLOGY_KINDS,
    PreparedTopology,
    make_topology,
    prepare_topology,
)
from repro.topology.routing import RoutingMatrix, VirtualLink

__all__ = [
    "Link",
    "MESH_TOPOLOGY_KINDS",
    "Network",
    "Path",
    "PreparedTopology",
    "RoutingMatrix",
    "VirtualLink",
    "assert_no_fluttering",
    "build_paths",
    "find_fluttering_pairs",
    "make_topology",
    "paths_flutter",
    "prepare_topology",
    "remove_fluttering_paths",
]
