"""The Section 3 front end: generate, route, enforce T.2, reduce.

One call takes a topology *kind* plus sizing parameters to a
:class:`PreparedTopology` — fluttering-free paths and the reduced
routing matrix — the common entry stage of every experiment and of the
declarative :class:`repro.api.Scenario` pipeline.

Sizing is duck-typed: any object with ``tree_nodes``, ``mesh_nodes``
and ``num_end_hosts`` attributes works (the experiment harness passes
its :class:`~repro.experiments.base.ScaleParams` presets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.topology.fluttering import find_fluttering_pairs, remove_fluttering_paths
from repro.topology.generators import (
    GeneratedTopology,
    barabasi_albert,
    dimes_like,
    hierarchical_bottom_up,
    hierarchical_top_down,
    planetlab_like,
    random_tree,
    waxman,
)
from repro.topology.graph import Path, build_paths
from repro.topology.routing import RoutingMatrix

MESH_TOPOLOGY_KINDS = (
    "barabasi-albert",
    "waxman",
    "hierarchical-td",
    "hierarchical-bu",
    "planetlab",
    "dimes",
)


def make_topology(kind: str, params, seed: Optional[int]) -> GeneratedTopology:
    """Build one of the paper's evaluation topologies at the given sizing."""
    if kind == "tree":
        return random_tree(num_nodes=params.tree_nodes, seed=seed)
    if kind == "waxman":
        return waxman(
            num_nodes=params.mesh_nodes,
            num_end_hosts=params.num_end_hosts,
            seed=seed,
        )
    if kind == "barabasi-albert":
        return barabasi_albert(
            num_nodes=params.mesh_nodes,
            num_end_hosts=params.num_end_hosts,
            seed=seed,
        )
    if kind == "hierarchical-td":
        routers = max(2, params.mesh_nodes // 20)
        return hierarchical_top_down(
            num_ases=20,
            routers_per_as=routers,
            num_end_hosts=params.num_end_hosts,
            seed=seed,
        )
    if kind == "hierarchical-bu":
        return hierarchical_bottom_up(
            num_nodes=params.mesh_nodes,
            num_end_hosts=params.num_end_hosts,
            seed=seed,
        )
    if kind == "planetlab":
        return planetlab_like(
            num_sites=max(4, params.num_end_hosts // 2),
            hosts_per_site=2,
            seed=seed,
        )
    if kind == "dimes":
        return dimes_like(
            num_ases=max(10, params.mesh_nodes // 12),
            num_hosts=params.num_end_hosts,
            seed=seed,
        )
    raise ValueError(f"unknown topology kind {kind!r}")


@dataclass
class PreparedTopology:
    """A topology with fluttering-free paths and its routing matrix."""

    topology: GeneratedTopology
    paths: List[Path]
    routing: RoutingMatrix
    num_removed_fluttering: int


def prepare_topology(kind: str, params, seed: Optional[int]) -> PreparedTopology:
    """Generate, route, enforce T.2 and reduce — the full Section 3 front end."""
    topology = make_topology(kind, params, seed)
    paths = build_paths(
        topology.network, topology.beacons, topology.destinations
    )
    removed = 0
    if find_fluttering_pairs(paths):
        paths, dropped = remove_fluttering_paths(paths)
        removed = len(dropped)
    routing = RoutingMatrix.from_paths(paths)
    return PreparedTopology(
        topology=topology,
        paths=paths,
        routing=routing,
        num_removed_fluttering=removed,
    )
