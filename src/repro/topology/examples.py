"""The worked examples of Figures 1 and 2 of the paper.

Figure 1 is a single-beacon tree whose reduced routing matrix the paper
prints explicitly:

    R = [[1 1 0 0 0]
         [1 0 1 1 0]
         [1 0 1 0 1]]

(three paths from beacon B1 to D1, D2, D3 over five links); first-order
moments cannot identify the five link rates from the three path rates.

Figure 2 adds a second beacon: the aggregated routing topology has 6
end-to-end paths over 8 directed links with ``rank(R) = 5``.  Our
reconstruction reproduces those exact counts.

Node numbering: 0=B1, 1=B2, 2..4 internal, 5=D1, 6=D2, 7=D3.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.topology.graph import Network, Path, build_paths

B1 = 0
B2 = 1
N1 = 2
N2 = 3
N3 = 4
D1 = 5
D2 = 6
D3 = 7


def figure1_network() -> Network:
    """The five-link tree of Figure 1: B1 -> n1 -> {D1, n2 -> {D2, D3}}."""
    net = Network()
    net.add_link(B1, N1)  # e1
    net.add_link(N1, D1)  # e2
    net.add_link(N1, N2)  # e3
    net.add_link(N2, D2)  # e4
    net.add_link(N2, D3)  # e5
    return net


def figure1_paths() -> Tuple[Network, List[Path]]:
    """The three probing paths of Figure 1 (rows of the printed R)."""
    net = figure1_network()
    paths = build_paths(net, beacons=[B1], destinations=[D1, D2, D3])
    return net, paths


def figure1_rate_ambiguity() -> Tuple[List[float], List[float]]:
    """Two link transmission-rate assignments indistinguishable from paths.

    Indexed by link (e1..e5).  Assignment A puts all loss on the root link;
    assignment B pushes it one hop downstream.  Both give every end-to-end
    path a transmission rate of 0.9, demonstrating Figure 1's point.
    """
    assignment_a = [0.9, 1.0, 1.0, 1.0, 1.0]
    assignment_b = [1.0, 0.9, 0.9, 1.0, 1.0]
    return assignment_a, assignment_b


def figure2_network() -> Network:
    """A two-beacon topology with 8 covered links, 6 paths and rank(R)=5.

    Layout::

        B1 --a--> n1 --c--> n2 --d--> D1
                             \\--e--> n3 --f--> D2
                                        \\--g--> D3
        B2 --b--> n1                 (reaches D1 through c, d)
        B2 --h--> n3                 (reaches D2/D3 directly)

    Every link is traversed by a distinct set of paths (no aliases), all 8
    links are covered, and ``rank(R) = 5 < min(6, 8)`` — the same counts
    the paper reports for its Figure 2.
    """
    net = Network()
    net.add_link(B1, N1)  # a
    net.add_link(B2, N1)  # b
    net.add_link(N1, N2)  # c
    net.add_link(N2, D1)  # d
    net.add_link(N2, N3)  # e
    net.add_link(N3, D2)  # f
    net.add_link(N3, D3)  # g
    net.add_link(B2, N3)  # h
    return net


def figure2_paths() -> Tuple[Network, List[Path]]:
    """Canonical probing paths of the Figure 2 system (6 paths)."""
    net = figure2_network()
    paths = build_paths(net, beacons=[B1, B2], destinations=[D1, D2, D3])
    return net, paths
