"""Reduced routing matrices (Section 3.1 of the paper).

From a set of probing paths we build the binary routing matrix ``R`` whose
entry ``R[i, j]`` is 1 when path ``P_i`` traverses link ``e_j``.  Two
reductions are applied, exactly as in the paper:

* **alias reduction** — any group of links traversed by exactly the same set
  of paths is indistinguishable from end-to-end measurements (this includes
  every chain of consecutive links without a branching point) and is merged
  into a single *virtual link*;
* **coverage reduction** — links traversed by no path contribute an all-zero
  column and are dropped.

After both steps, the columns of ``R`` are distinct and non-zero, which is
the precondition of the identifiability results in Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.topology.graph import Link, Path


@dataclass(frozen=True)
class VirtualLink:
    """A routing-matrix column: one or more alias physical links.

    The log transmission rate of a virtual link is the *sum* of the log
    transmission rates of its members, because every traversing packet
    crosses all of them.
    """

    column: int
    members: Tuple[Link, ...]

    @property
    def size(self) -> int:
        return len(self.members)

    def member_indices(self) -> Tuple[int, ...]:
        return tuple(link.index for link in self.members)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ",".join(str(link.index) for link in self.members)
        return f"v{self.column}[{inner}]"


class RoutingMatrix:
    """The reduced routing matrix ``R`` plus its bookkeeping.

    Attributes
    ----------
    matrix:
        ``(num_paths, num_columns)`` dense uint8 array.  Tomography-scale
        matrices (thousands of paths) fit comfortably; a sparse view is
        available through :meth:`to_sparse`.
    paths:
        The probing paths, row ``i`` of :attr:`matrix` describing
        ``paths[i]``.
    virtual_links:
        One :class:`VirtualLink` per column, in column order.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        paths: Sequence[Path],
        virtual_links: Sequence[VirtualLink],
    ) -> None:
        matrix = np.asarray(matrix, dtype=np.uint8)
        if matrix.ndim != 2:
            raise ValueError("routing matrix must be two-dimensional")
        if matrix.shape[0] != len(paths):
            raise ValueError("one row per path required")
        if matrix.shape[1] != len(virtual_links):
            raise ValueError("one column per virtual link required")
        self.matrix = matrix
        self.paths = list(paths)
        self.virtual_links = list(virtual_links)
        self._phys_to_col: Dict[int, int] = {}
        for vlink in self.virtual_links:
            for member in vlink.members:
                self._phys_to_col[member.index] = vlink.column

    # -- construction -------------------------------------------------------

    @classmethod
    def from_paths(
        cls, paths: Sequence[Path], reduce_aliases: bool = True
    ) -> "RoutingMatrix":
        """Build the reduced routing matrix from probing paths.

        With ``reduce_aliases=False`` only the coverage reduction is applied
        (useful for tests and for exhibiting the rank deficiency the paper
        starts from); columns may then be duplicated.
        """
        if not paths:
            raise ValueError("cannot build a routing matrix from zero paths")
        membership: Dict[int, List[int]] = {}
        link_objects: Dict[int, Link] = {}
        for path in paths:
            for link in path.links:
                membership.setdefault(link.index, []).append(path.index)
                link_objects[link.index] = link

        groups: Dict[Tuple[FrozenSet[int], int], List[int]] = {}
        if reduce_aliases:
            by_signature: Dict[FrozenSet[int], List[int]] = {}
            for link_index, rows in membership.items():
                by_signature.setdefault(frozenset(rows), []).append(link_index)
            for signature, link_indices in by_signature.items():
                groups[(signature, min(link_indices))] = sorted(link_indices)
        else:
            for link_index, rows in membership.items():
                groups[(frozenset(rows), link_index)] = [link_index]

        # Deterministic column order: by smallest member physical index.
        ordered = sorted(groups.items(), key=lambda item: item[0][1])
        virtual_links: List[VirtualLink] = []
        matrix = np.zeros((len(paths), len(ordered)), dtype=np.uint8)
        for column, ((signature, _), link_indices) in enumerate(ordered):
            members = tuple(link_objects[i] for i in link_indices)
            virtual_links.append(VirtualLink(column=column, members=members))
            for row in signature:
                matrix[row, column] = 1
        return cls(matrix=matrix, paths=paths, virtual_links=virtual_links)

    # -- shape and lookup ----------------------------------------------------

    @property
    def num_paths(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_links(self) -> int:
        """Number of covered (virtual) links, ``n_c`` in the paper."""
        return self.matrix.shape[1]

    def column_of_physical(self, link_index: int) -> Optional[int]:
        """Column carrying physical link *link_index*, or None if uncovered."""
        return self._phys_to_col.get(link_index)

    def covered_physical_indices(self) -> Tuple[int, ...]:
        return tuple(sorted(self._phys_to_col))

    def row(self, path_index: int) -> np.ndarray:
        return self.matrix[path_index]

    def columns_of_path(self, path_index: int) -> np.ndarray:
        """Indices of the virtual links traversed by one path."""
        return np.flatnonzero(self.matrix[path_index])

    def rows_by_beacon(self) -> Dict[int, List[int]]:
        """Group row indices by the beacon (path source) that produced them."""
        grouped: Dict[int, List[int]] = {}
        for i, path in enumerate(self.paths):
            grouped.setdefault(path.source, []).append(i)
        return grouped

    # -- linear algebra views -------------------------------------------------

    def to_dense(self, dtype=np.float64) -> np.ndarray:
        return self.matrix.astype(dtype)

    def to_sparse(self, dtype=np.float64) -> sparse.csr_matrix:
        return sparse.csr_matrix(self.matrix.astype(dtype))

    def rank(self) -> int:
        """Numerical column rank via the incremental-basis primitive.

        Avoids the dense SVD of ``matrix_rank``: the basis sweep works
        column by column on the sparse view, the same kernel the phase-2
        reduction uses.
        """
        from repro.core.linalg import qr_column_rank

        return qr_column_rank(self.to_sparse())

    def is_full_column_rank(self) -> bool:
        return self.rank() == self.num_links

    # -- ground-truth aggregation ----------------------------------------------

    def aggregate_log_rates(self, physical_log_rates: np.ndarray) -> np.ndarray:
        """Map per-physical-link log rates to per-column (virtual) log rates.

        The virtual link's log transmission rate is the sum over members.
        *physical_log_rates* is indexed by physical :attr:`Link.index`.
        """
        physical_log_rates = np.asarray(physical_log_rates, dtype=np.float64)
        out = np.zeros(self.num_links, dtype=np.float64)
        for vlink in self.virtual_links:
            out[vlink.column] = physical_log_rates[list(vlink.member_indices())].sum()
        return out

    def aggregate_rates(self, physical_rates: np.ndarray) -> np.ndarray:
        """Map per-physical-link transmission rates to per-column products."""
        physical_rates = np.asarray(physical_rates, dtype=np.float64)
        out = np.ones(self.num_links, dtype=np.float64)
        for vlink in self.virtual_links:
            out[vlink.column] = physical_rates[list(vlink.member_indices())].prod()
        return out

    def aggregate_any(self, physical_flags: np.ndarray) -> np.ndarray:
        """Map a per-physical-link boolean to per-column logical OR.

        Used to carry ground-truth congestion marks through alias reduction:
        a virtual link is congested when any member is.
        """
        physical_flags = np.asarray(physical_flags, dtype=bool)
        out = np.zeros(self.num_links, dtype=bool)
        for vlink in self.virtual_links:
            out[vlink.column] = bool(
                physical_flags[list(vlink.member_indices())].any()
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RoutingMatrix(paths={self.num_paths}, links={self.num_links})"
