"""Route-fluttering detection (Assumption T.2 of the paper).

Two paths *flutter* when they share two links without sharing all the links
in between: they meet, diverge, and meet again.  Theorem 1 requires that no
pair of probing paths flutters.  The paper removes fluttering paths from the
routing matrix before inference (Section 7.1 removed 52 of 48 151 paths); we
provide the same filter.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.topology.graph import Path


def shared_segments(path_a: Path, path_b: Path) -> List[List[int]]:
    """Contiguous runs (in *path_a* order) of links shared with *path_b*.

    Each run is returned as a list of physical link indices.  A single run
    means the two paths meet once; two or more runs mean they flutter.
    """
    links_b: Set[int] = set(path_b.link_indices())
    runs: List[List[int]] = []
    current: List[int] = []
    for link in path_a.links:
        if link.index in links_b:
            current.append(link.index)
        elif current:
            runs.append(current)
            current = []
    if current:
        runs.append(current)
    return runs


def paths_flutter(path_a: Path, path_b: Path) -> bool:
    """True when the pair violates Assumption T.2.

    The shared links must be contiguous along *both* paths (a shared
    contiguous segment of one path could be visited in scattered order by
    the other in a pathological routing).
    """
    if len(shared_segments(path_a, path_b)) > 1:
        return True
    return len(shared_segments(path_b, path_a)) > 1


def find_fluttering_pairs(paths: Sequence[Path]) -> List[Tuple[int, int]]:
    """All fluttering pairs, as (row, row) index tuples with row_a < row_b.

    Pairs that share at most one link can never flutter, so we first bucket
    paths by link to avoid the quadratic scan over unrelated pairs.
    """
    by_link: Dict[int, List[int]] = {}
    for i, path in enumerate(paths):
        for link_index in path.link_indices():
            by_link.setdefault(link_index, []).append(i)

    candidate_pairs: Set[Tuple[int, int]] = set()
    seen_once: Set[Tuple[int, int]] = set()
    for rows in by_link.values():
        for a_pos, a in enumerate(rows):
            for b in rows[a_pos + 1 :]:
                pair = (a, b)
                if pair in seen_once:
                    candidate_pairs.add(pair)  # shares >= 2 links
                else:
                    seen_once.add(pair)

    flutters = [
        pair
        for pair in sorted(candidate_pairs)
        if paths_flutter(paths[pair[0]], paths[pair[1]])
    ]
    return flutters


def remove_fluttering_paths(paths: Sequence[Path]) -> Tuple[List[Path], List[int]]:
    """Drop a minimal-ish set of paths so no fluttering pair remains.

    Greedy: repeatedly remove the path involved in the most fluttering
    pairs.  Mirrors the paper's pragmatic handling ("we keep only the
    measurements on one path and ignore the others").  Returns the kept
    paths (re-indexed 0..k-1) and the original indices of removed paths.
    """
    pairs = find_fluttering_pairs(paths)
    removed: Set[int] = set()
    while pairs:
        counts: Dict[int, int] = {}
        for a, b in pairs:
            counts[a] = counts.get(a, 0) + 1
            counts[b] = counts.get(b, 0) + 1
        victim = max(sorted(counts), key=lambda i: counts[i])
        removed.add(victim)
        pairs = [p for p in pairs if victim not in p]

    kept: List[Path] = []
    for i, path in enumerate(paths):
        if i in removed:
            continue
        kept.append(
            Path(
                index=len(kept),
                source=path.source,
                dest=path.dest,
                links=path.links,
            )
        )
    return kept, sorted(removed)


def assert_no_fluttering(paths: Sequence[Path]) -> None:
    """Raise ``ValueError`` when Assumption T.2 is violated."""
    pairs = find_fluttering_pairs(paths)
    if pairs:
        raise ValueError(
            f"routing violates Assumption T.2: {len(pairs)} fluttering "
            f"path pairs, first {pairs[0]}"
        )
