"""Waxman random graphs, BRITE-style (one of the models of Section 6.2).

BRITE grows Waxman topologies *incrementally*: nodes are placed uniformly
in the unit square and each new node connects to ``links_per_node``
distinct existing nodes, chosen with probability proportional to the
Waxman kernel ``alpha * exp(-d(u, v) / (beta * L))`` (``d`` Euclidean,
``L`` the maximum distance).  This yields router-like sparse graphs
(average degree ~ 2 * links_per_node) with distance-dependent locality,
unlike the classical flat Waxman whose edge count grows quadratically.

Every undirected edge becomes a duplex pair of directed links, since each
direction is an independent tomography unknown.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.topology.generators.common import (
    GeneratedTopology,
    select_end_hosts,
    undirected_edges_to_network,
)
from repro.utils.rng import SeedLike, as_rng


def waxman_growth_edges(
    rng: np.random.Generator,
    xy: np.ndarray,
    links_per_node: int = 2,
    alpha: float = 0.15,
    beta: float = 0.2,
) -> List[Tuple[int, int]]:
    """Undirected edge list of a BRITE-style incrementally grown Waxman.

    The first ``links_per_node + 1`` nodes form a clique seed; every later
    node attaches to ``links_per_node`` existing nodes drawn by the
    Waxman kernel (without replacement).  The graph is connected by
    construction.
    """
    num_nodes = len(xy)
    if links_per_node < 1:
        raise ValueError("links_per_node must be >= 1")
    if num_nodes < links_per_node + 2:
        raise ValueError("too few nodes for the requested degree")
    max_dist = math.sqrt(2.0)
    edges: List[Tuple[int, int]] = []
    seed_size = links_per_node + 1
    for a in range(seed_size):
        for b in range(a + 1, seed_size):
            edges.append((a, b))
    for node in range(seed_size, num_nodes):
        d = np.hypot(
            xy[:node, 0] - xy[node, 0], xy[:node, 1] - xy[node, 1]
        )
        kernel = alpha * np.exp(-d / (beta * max_dist))
        total = kernel.sum()
        if total <= 0:
            probabilities = np.full(node, 1.0 / node)
        else:
            probabilities = kernel / total
        targets = rng.choice(
            node, size=links_per_node, replace=False, p=probabilities
        )
        for target in sorted(int(t) for t in targets):
            edges.append((node, target))
    return edges


def waxman(
    num_nodes: int = 1000,
    links_per_node: int = 2,
    alpha: float = 0.15,
    beta: float = 0.2,
    num_end_hosts: int = 60,
    seed: SeedLike = None,
    name: str = "waxman",
) -> GeneratedTopology:
    """Generate a BRITE-style Waxman topology with end-host selection.

    End-hosts are the lowest-degree nodes (the paper's rule) and act as
    both beacons and probing destinations, as in Section 6.2.
    """
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    rng = as_rng(seed)
    xy = rng.random((num_nodes, 2))
    edges = waxman_growth_edges(rng, xy, links_per_node, alpha, beta)
    net = undirected_edges_to_network(num_nodes, edges)
    hosts = select_end_hosts(net, num_end_hosts)
    positions: Dict[int, Tuple[float, float]] = {
        i: (float(xy[i, 0]), float(xy[i, 1])) for i in range(num_nodes)
    }
    return GeneratedTopology(
        name=name,
        network=net,
        beacons=list(hosts),
        destinations=list(hosts),
        positions=positions,
    )
