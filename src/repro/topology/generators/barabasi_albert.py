"""Barabási–Albert preferential-attachment graphs (BRITE model).

Each new node attaches to ``m`` existing nodes with probability
proportional to their current degree, yielding the power-law degree
distributions observed in Internet AS graphs.  Edges become duplex
directed link pairs.
"""

from __future__ import annotations

from typing import List, Tuple


from repro.topology.generators.common import (
    GeneratedTopology,
    select_end_hosts,
    undirected_edges_to_network,
)
from repro.utils.rng import SeedLike, as_rng


def barabasi_albert(
    num_nodes: int = 1000,
    attachment: int = 2,
    num_end_hosts: int = 60,
    seed: SeedLike = None,
    name: str = "barabasi-albert",
) -> GeneratedTopology:
    """Generate a BA topology; low-degree nodes become the end-hosts.

    The repeated-nodes trick gives degree-proportional sampling in O(1)
    per draw: every edge endpoint is appended to ``targets_pool``, and a
    uniform draw from the pool is a preferential draw over nodes.
    """
    if attachment < 1:
        raise ValueError(f"attachment must be >= 1, got {attachment}")
    if num_nodes <= attachment + 1:
        raise ValueError("num_nodes must exceed attachment + 1")
    rng = as_rng(seed)

    edges: List[Tuple[int, int]] = []
    pool: List[int] = []
    # Seed clique over the first (attachment + 1) nodes keeps early draws
    # well defined and the graph connected from the start.
    seed_size = attachment + 1
    for a in range(seed_size):
        for b in range(a + 1, seed_size):
            edges.append((a, b))
            pool.extend((a, b))

    for node in range(seed_size, num_nodes):
        chosen: set = set()
        while len(chosen) < attachment:
            chosen.add(int(pool[int(rng.integers(len(pool)))]))
        for target in sorted(chosen):
            edges.append((node, target))
            pool.extend((node, target))

    net = undirected_edges_to_network(num_nodes, edges)
    hosts = select_end_hosts(net, num_end_hosts)
    return GeneratedTopology(
        name=name,
        network=net,
        beacons=list(hosts),
        destinations=list(hosts),
    )
