"""Topology generators used by the paper's evaluation (Section 6).

Each generator returns a :class:`~repro.topology.generators.common.GeneratedTopology`
bundling the directed network with beacons, destinations and annotations.
"""

from repro.topology.generators.barabasi_albert import barabasi_albert
from repro.topology.generators.common import GeneratedTopology, select_end_hosts
from repro.topology.generators.dimes import dimes_like
from repro.topology.generators.hierarchical import (
    hierarchical_bottom_up,
    hierarchical_top_down,
)
from repro.topology.generators.planetlab import planetlab_like
from repro.topology.generators.trees import random_tree
from repro.topology.generators.waxman import waxman

__all__ = [
    "GeneratedTopology",
    "barabasi_albert",
    "dimes_like",
    "hierarchical_bottom_up",
    "hierarchical_top_down",
    "planetlab_like",
    "random_tree",
    "select_end_hosts",
    "waxman",
]
