"""PlanetLab-like research-network topology.

The paper's mesh simulations and Internet experiments run over the real
PlanetLab topology (hosts in universities and research labs).  We cannot
ship that snapshot, so this generator reproduces its structural signature
at configurable scale:

* a small, densely meshed transit core (national research backbones such
  as Abilene/GEANT peers);
* regional aggregation routers hanging off the core;
* *sites* (campuses) attached to a region through a short access chain
  (site border router -> campus router), each hosting a handful of
  end-hosts that are simultaneously beacons and probing destinations.

What matters to LIA is the routing-matrix structure — long shared backbone
segments, heavy sharing below each site, moderate path diversity — and
this shape reproduces those statistics.  Every node carries an AS number
(one AS per backbone, one per site) so Table 3's inter/intra-AS analysis
runs unchanged.
"""

from __future__ import annotations

from typing import Dict, List


from repro.topology.generators.common import GeneratedTopology
from repro.topology.graph import Network
from repro.utils.rng import SeedLike, as_rng


def planetlab_like(
    num_sites: int = 40,
    hosts_per_site: int = 2,
    num_core: int = 12,
    num_regions: int = 8,
    core_extra_links: int = 8,
    seed: SeedLike = None,
    name: str = "planetlab",
) -> GeneratedTopology:
    """Generate a PlanetLab-like topology.

    Parameters mirror the structural knobs: ``num_core`` backbone routers
    (ring + random chords), ``num_regions`` aggregation routers each homed
    to two core routers (so inter-region paths have diversity), and
    ``num_sites`` campuses, each a 2-router access chain plus end-hosts.
    """
    if num_core < 3 or num_regions < 2 or num_sites < 2 or hosts_per_site < 1:
        raise ValueError("topology too small to be meaningful")
    rng = as_rng(seed)
    net = Network()
    as_of_node: Dict[int, int] = {}
    next_id = 0

    def new_node(asn: int) -> int:
        nonlocal next_id
        node = net.add_node(next_id)
        as_of_node[node] = asn
        next_id += 1
        return node

    backbone_as = 0
    core = [new_node(backbone_as) for _ in range(num_core)]
    for i in range(num_core):
        net.add_duplex(core[i], core[(i + 1) % num_core])
    chords = 0
    while chords < core_extra_links:
        a, b = rng.choice(num_core, size=2, replace=False)
        if net.find_link(core[a], core[b]) is None:
            net.add_duplex(core[int(a)], core[int(b)])
            chords += 1

    # Regional aggregation: each region dual-homed into the core.  Regions
    # live in the backbone AS (they are PoPs of the research backbone).
    regions: List[int] = []
    for _ in range(num_regions):
        region = new_node(backbone_as)
        a, b = rng.choice(num_core, size=2, replace=False)
        net.add_duplex(region, core[int(a)])
        net.add_duplex(region, core[int(b)])
        regions.append(region)

    beacons: List[int] = []
    for site_index in range(num_sites):
        site_as = 1 + site_index
        region = regions[int(rng.integers(num_regions))]
        border = new_node(site_as)
        campus = new_node(site_as)
        net.add_duplex(region, border)
        net.add_duplex(border, campus)
        for _ in range(hosts_per_site):
            host = new_node(site_as)
            net.add_duplex(campus, host)
            beacons.append(host)

    return GeneratedTopology(
        name=name,
        network=net,
        beacons=list(beacons),
        destinations=list(beacons),
        as_of_node=as_of_node,
    )
