"""Random tree topologies (Section 6.1 of the paper).

The paper's first simulation uses "tree topologies of 1000 unique nodes,
with the maximum branching ratio of 10.  The beacon is located at the root
and the probing destinations are the leaves."  Links point downstream
(root -> leaves) because probes flow that way; every internal node has at
least two children by construction, so the tree is already alias-free,
matching the reduced form assumed in Section 4.
"""

from __future__ import annotations

from typing import List

from repro.topology.generators.common import GeneratedTopology
from repro.topology.graph import Network
from repro.utils.rng import SeedLike, as_rng


def random_tree(
    num_nodes: int = 1000,
    max_branching: int = 10,
    min_branching: int = 2,
    seed: SeedLike = None,
    name: str = "tree",
) -> GeneratedTopology:
    """Grow a rooted tree by giving each expandable node 2..max children.

    Growth is breadth-first: we keep a frontier of leaves and repeatedly
    expand the oldest leaf with a uniformly drawn number of children
    (clipped so we land exactly on *num_nodes* total nodes).  Internal
    nodes therefore always have >= ``min_branching`` children, so no alias
    chains exist, and the maximum branching ratio is respected.
    """
    if num_nodes < 3:
        raise ValueError("a probing tree needs a root and at least two leaves")
    if not 2 <= min_branching <= max_branching:
        raise ValueError(
            f"need 2 <= min_branching <= max_branching, got "
            f"{min_branching}..{max_branching}"
        )
    rng = as_rng(seed)
    net = Network()
    root = net.add_node(0)
    next_id = 1
    frontier: List[int] = [root]
    cursor = 0
    while next_id < num_nodes:
        node = frontier[cursor]
        remaining = num_nodes - next_id
        fanout = int(rng.integers(min_branching, max_branching + 1))
        fanout = min(fanout, remaining)
        # Never leave exactly one node for later: a lone child would form
        # an alias chain.  Shrink the draw when possible, grow it otherwise
        # (growth can exceed max_branching by one only in tiny trees).
        if remaining - fanout == 1:
            if fanout > min_branching:
                fanout -= 1
            else:
                fanout += 1
        for _ in range(fanout):
            child = net.add_node(next_id)
            net.add_link(node, child)
            frontier.append(child)
            next_id += 1
        cursor += 1

    leaves = [n for n in net.nodes() if net.out_degree(n) == 0]
    return GeneratedTopology(
        name=name,
        network=net,
        beacons=[root],
        destinations=leaves,
    )
