"""DIMES-like commercial-Internet topology.

DIMES agents (the paper's second real topology) sit mostly in commercial
ISPs, unlike PlanetLab's academic hosts.  The structural signature differs
from PlanetLab's: a power-law AS-level graph (preferential attachment),
multi-router transit ASes, and measurement hosts scattered across *stub*
ASes behind single-homed or dual-homed access links.  This generator
reproduces that shape:

* AS-level Barabási–Albert graph; the highest-degree ASes become transit
  carriers with several routers each, the rest are stubs;
* every AS-level adjacency is realised as a router-to-router link;
* end-hosts attach to stub-AS routers through an access link.

The result has heavier-tailed degree distributions and longer, more
diverse paths than :mod:`repro.topology.generators.planetlab`, which is
exactly the contrast the paper draws between the two data sets.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple


from repro.topology.generators.common import GeneratedTopology
from repro.topology.graph import Network
from repro.utils.rng import SeedLike, as_rng


def dimes_like(
    num_ases: int = 80,
    attachment: int = 2,
    transit_fraction: float = 0.15,
    routers_per_transit: int = 3,
    num_hosts: int = 60,
    seed: SeedLike = None,
    name: str = "dimes",
) -> GeneratedTopology:
    """Generate a DIMES-like topology with *num_hosts* vantage points."""
    if num_ases < 5:
        raise ValueError("need at least 5 ASes")
    if not 0 < transit_fraction < 1:
        raise ValueError("transit_fraction must be in (0, 1)")
    rng = as_rng(seed)

    # AS-level preferential attachment via the repeated-endpoints pool.
    as_edges: List[Tuple[int, int]] = []
    pool: List[int] = []
    seed_size = attachment + 1
    for a in range(seed_size):
        for b in range(a + 1, seed_size):
            as_edges.append((a, b))
            pool.extend((a, b))
    for asn in range(seed_size, num_ases):
        chosen: Set[int] = set()
        while len(chosen) < attachment:
            chosen.add(int(pool[int(rng.integers(len(pool)))]))
        for target in sorted(chosen):
            as_edges.append((asn, target))
            pool.extend((asn, target))

    degree: Dict[int, int] = {asn: 0 for asn in range(num_ases)}
    for a, b in as_edges:
        degree[a] += 1
        degree[b] += 1
    num_transit = max(1, int(round(transit_fraction * num_ases)))
    transit = set(
        sorted(degree, key=lambda asn: (-degree[asn], asn))[:num_transit]
    )

    net = Network()
    as_of_node: Dict[int, int] = {}
    routers_of_as: Dict[int, List[int]] = {}
    next_id = 0

    def new_node(asn: int) -> int:
        nonlocal next_id
        node = net.add_node(next_id)
        as_of_node[node] = asn
        next_id += 1
        return node

    for asn in range(num_ases):
        count = routers_per_transit if asn in transit else 1
        routers = [new_node(asn) for _ in range(count)]
        # Full mesh inside multi-router transit ASes (their backbones are
        # dense relative to their size).
        for i in range(count):
            for j in range(i + 1, count):
                net.add_duplex(routers[i], routers[j])
        routers_of_as[asn] = routers

    for as_a, as_b in as_edges:
        ra = routers_of_as[as_a][int(rng.integers(len(routers_of_as[as_a])))]
        rb = routers_of_as[as_b][int(rng.integers(len(routers_of_as[as_b])))]
        if net.find_link(ra, rb) is None:
            net.add_duplex(ra, rb)

    stubs = sorted(set(range(num_ases)) - transit)
    hosts: List[int] = []
    for host_index in range(num_hosts):
        asn = stubs[host_index % len(stubs)]
        gateway = routers_of_as[asn][int(rng.integers(len(routers_of_as[asn])))]
        host = new_node(asn)
        net.add_duplex(gateway, host)
        hosts.append(host)

    return GeneratedTopology(
        name=name,
        network=net,
        beacons=list(hosts),
        destinations=list(hosts),
        as_of_node=as_of_node,
    )
