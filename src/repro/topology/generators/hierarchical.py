"""BRITE-style hierarchical topologies (top-down and bottom-up).

BRITE's hierarchical models compose an AS-level graph with router-level
graphs:

* **top-down** — generate the AS-level graph first (Waxman here), then a
  router-level graph inside each AS, then realise each AS-level edge as a
  router-to-router border link;
* **bottom-up** — generate one flat router-level graph first, then group
  routers into ASes by spatial proximity, so AS shapes emerge from the
  router mesh rather than being imposed.

Both return ``as_of_node`` so the AS-location analysis (Table 3) and the
addressing substrate can label links inter- vs intra-AS.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.topology.generators.common import (
    GeneratedTopology,
    connect_components,
    select_end_hosts,
    undirected_edges_to_network,
)
from repro.topology.generators.waxman import waxman_growth_edges
from repro.utils.rng import SeedLike, as_rng


def _waxman_edges(
    rng: np.random.Generator,
    xy: np.ndarray,
    alpha: float,
    beta: float,
    links_per_node: int = 2,
) -> List[Tuple[int, int]]:
    """BRITE-style grown Waxman edges; falls back to a path for tiny n."""
    n = len(xy)
    if n < 2:
        return []
    if n < links_per_node + 2:
        return [(i, i + 1) for i in range(n - 1)]
    return waxman_growth_edges(rng, xy, links_per_node, alpha, beta)


def hierarchical_top_down(
    num_ases: int = 20,
    routers_per_as: int = 50,
    num_end_hosts: int = 60,
    as_alpha: float = 0.4,
    as_beta: float = 0.3,
    router_alpha: float = 0.3,
    router_beta: float = 0.25,
    seed: SeedLike = None,
    name: str = "hierarchical-td",
) -> GeneratedTopology:
    """Top-down hierarchy: AS-level Waxman, per-AS router-level Waxman.

    Each AS-level edge becomes one router-to-router border link between
    uniformly chosen routers of the two ASes.
    """
    if num_ases < 2:
        raise ValueError("need at least two ASes")
    if routers_per_as < 2:
        raise ValueError("need at least two routers per AS")
    rng = as_rng(seed)

    as_xy = rng.random((num_ases, 2))
    as_edges = _waxman_edges(rng, as_xy, as_alpha, as_beta)

    edges: List[Tuple[int, int]] = []
    as_of_node: Dict[int, int] = {}
    base_of_as: List[int] = []
    next_node = 0
    for asn in range(num_ases):
        base_of_as.append(next_node)
        router_xy = rng.random((routers_per_as, 2))
        for a, b in _waxman_edges(rng, router_xy, router_alpha, router_beta):
            edges.append((next_node + a, next_node + b))
        for r in range(routers_per_as):
            as_of_node[next_node + r] = asn
        next_node += routers_per_as

    for as_a, as_b in as_edges:
        ra = base_of_as[as_a] + int(rng.integers(routers_per_as))
        rb = base_of_as[as_b] + int(rng.integers(routers_per_as))
        edges.append((ra, rb))

    num_nodes = num_ases * routers_per_as
    edges = connect_components(num_nodes, edges, rng)
    net = undirected_edges_to_network(num_nodes, edges)
    hosts = select_end_hosts(net, num_end_hosts)
    return GeneratedTopology(
        name=name,
        network=net,
        beacons=list(hosts),
        destinations=list(hosts),
        as_of_node=as_of_node,
    )


def hierarchical_bottom_up(
    num_nodes: int = 1000,
    num_ases: int = 20,
    num_end_hosts: int = 60,
    alpha: float = 0.15,
    beta: float = 0.2,
    seed: SeedLike = None,
    name: str = "hierarchical-bu",
) -> GeneratedTopology:
    """Bottom-up hierarchy: flat router Waxman, ASes by spatial clustering.

    Routers are assigned to the nearest of ``num_ases`` uniformly drawn AS
    centres, so contiguous spatial regions become ASes and the border/
    internal link mix emerges from the mesh.
    """
    if num_ases < 2:
        raise ValueError("need at least two ASes")
    if num_nodes < num_ases:
        raise ValueError("need at least one router per AS")
    rng = as_rng(seed)
    xy = rng.random((num_nodes, 2))
    edges = _waxman_edges(rng, xy, alpha, beta)
    net = undirected_edges_to_network(num_nodes, edges)

    centres = rng.random((num_ases, 2))
    dist = np.hypot(
        xy[:, None, 0] - centres[None, :, 0], xy[:, None, 1] - centres[None, :, 1]
    )
    assignment = np.argmin(dist, axis=1)
    as_of_node = {i: int(assignment[i]) for i in range(num_nodes)}

    hosts = select_end_hosts(net, num_end_hosts)
    positions = {i: (float(xy[i, 0]), float(xy[i, 1])) for i in range(num_nodes)}
    return GeneratedTopology(
        name=name,
        network=net,
        beacons=list(hosts),
        destinations=list(hosts),
        as_of_node=as_of_node,
        positions=positions,
    )
