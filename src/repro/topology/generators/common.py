"""Shared machinery for topology generators.

All generators return a :class:`GeneratedTopology`: the directed network,
the chosen beacons and probing destinations, and optional annotations
(node coordinates, node->AS mapping) used by downstream substrates such as
the AS-location analysis of Table 3.

The simulation section of the paper picks the end-hosts of synthetic
topologies as "nodes with the least out-degree"; :func:`select_end_hosts`
implements that rule deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.topology.graph import Network, NodeId


@dataclass
class GeneratedTopology:
    """A generated network plus its measurement endpoints and annotations."""

    name: str
    network: Network
    beacons: List[NodeId]
    destinations: List[NodeId]
    #: node -> autonomous-system number, when the generator models ASes.
    as_of_node: Dict[NodeId, int] = field(default_factory=dict)
    #: node -> (x, y) coordinates for geometric generators.
    positions: Dict[NodeId, Tuple[float, float]] = field(default_factory=dict)

    @property
    def end_hosts(self) -> List[NodeId]:
        """Beacons and destinations, deduplicated, in stable order."""
        seen: Set[NodeId] = set()
        hosts: List[NodeId] = []
        for node in list(self.beacons) + list(self.destinations):
            if node not in seen:
                seen.add(node)
                hosts.append(node)
        return hosts

    def summary(self) -> str:
        return (
            f"{self.name}: {self.network.num_nodes} nodes, "
            f"{self.network.num_links} directed links, "
            f"{len(self.beacons)} beacons, {len(self.destinations)} destinations"
        )


def select_end_hosts(network: Network, count: int) -> List[NodeId]:
    """The *count* nodes with the least total degree (ties by node id).

    Mirrors the paper's simulation setup where "end-hosts are nodes with
    the least out-degree".  Using total degree is equivalent for the duplex
    topologies our generators emit.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    nodes = sorted(network.nodes(), key=lambda n: (network.degree(n), n))
    if count > len(nodes):
        raise ValueError(
            f"requested {count} end hosts from a {len(nodes)}-node network"
        )
    return nodes[:count]


def undirected_edges_to_network(
    num_nodes: int, edges: Iterable[Tuple[int, int]]
) -> Network:
    """Materialise an undirected edge list as a duplex directed Network."""
    net = Network()
    for node in range(num_nodes):
        net.add_node(node)
    seen: Set[Tuple[int, int]] = set()
    for a, b in edges:
        key = (min(a, b), max(a, b))
        if key in seen or a == b:
            continue
        seen.add(key)
        net.add_duplex(a, b)
    return net


def connect_components(
    num_nodes: int,
    edges: List[Tuple[int, int]],
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """Add the fewest random edges needed to make the edge set connected.

    Random-graph generators (Waxman in particular) can leave isolated
    fragments; tomography needs every destination reachable, so we stitch
    components together with uniformly chosen representative pairs.
    """
    parent = list(range(num_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        parent[find(a)] = find(b)

    for a, b in edges:
        union(a, b)

    roots = sorted({find(n) for n in range(num_nodes)})
    if len(roots) <= 1:
        return edges

    components: Dict[int, List[int]] = {}
    for node in range(num_nodes):
        components.setdefault(find(node), []).append(node)
    ordered = [components[r] for r in roots]
    stitched = list(edges)
    anchor = ordered[0]
    for other in ordered[1:]:
        a = int(rng.choice(anchor))
        b = int(rng.choice(other))
        stitched.append((a, b))
        union(a, b)
        anchor.extend(other)
    return stitched


def validate_endpoint_split(
    beacons: Sequence[NodeId], destinations: Sequence[NodeId]
) -> None:
    if not beacons:
        raise ValueError("at least one beacon is required")
    if not destinations:
        raise ValueError("at least one destination is required")
    if len(set(destinations)) == 1 and set(destinations) == set(beacons):
        raise ValueError("a single host cannot probe itself")
