"""repro — network loss tomography from second-order flow statistics.

A full reproduction of Nguyen & Thiran, "Network Loss Inference with
Second Order Statistics of End-to-End Flows" (IMC 2007): the LIA
algorithm, its identifiability theory, the simulation substrates the
evaluation needs (topology generators, Gilbert/Bernoulli loss processes,
a probing simulator, a traceroute/AS substrate), baselines, metrics and
an experiment harness regenerating every table and figure.

Quickstart::

    from repro import (
        LossInferenceAlgorithm, ProbingSimulator, RoutingMatrix,
        build_paths, random_tree,
    )

    topo = random_tree(num_nodes=200, seed=7)
    paths = build_paths(topo.network, topo.beacons, topo.destinations)
    routing = RoutingMatrix.from_paths(paths)
    sim = ProbingSimulator(paths, topo.network.num_links)
    campaign = sim.run_campaign(51, routing, seed=7)
    result = LossInferenceAlgorithm(routing).run(campaign)
    print(result.loss_rates)

Every inference backend — LIA, delay tomography, and the SCFS/CLINK/
greedy-cover baselines — is also reachable through the unified
:mod:`repro.api` seam (``fit``/``predict`` estimators, a string-keyed
registry, and the declarative ``Scenario`` pipeline); see the README's
"Estimator / Scenario API" section.
"""

from repro.api import EstimatorSpec, InferenceResult, Scenario, ScenarioResult
from repro.core.lia import LIAResult, LossInferenceAlgorithm
from repro.core.identifiability import audit_identifiability
from repro.core.variance import VarianceEstimate, estimate_link_variances
from repro.lossmodel import (
    LLRD1,
    LLRD2,
    BernoulliProcess,
    GilbertProcess,
    LossRateModel,
)
from repro.probing import (
    MeasurementCampaign,
    ProberConfig,
    ProbingSimulator,
    Snapshot,
)
from repro.topology import Network, Path, RoutingMatrix, build_paths
from repro.topology.generators import (
    barabasi_albert,
    dimes_like,
    hierarchical_bottom_up,
    hierarchical_top_down,
    planetlab_like,
    random_tree,
    waxman,
)

__version__ = "1.0.0"

__all__ = [
    "LLRD1",
    "LLRD2",
    "BernoulliProcess",
    "EstimatorSpec",
    "GilbertProcess",
    "InferenceResult",
    "LIAResult",
    "LossInferenceAlgorithm",
    "LossRateModel",
    "MeasurementCampaign",
    "Network",
    "Path",
    "ProberConfig",
    "ProbingSimulator",
    "RoutingMatrix",
    "Scenario",
    "ScenarioResult",
    "Snapshot",
    "VarianceEstimate",
    "audit_identifiability",
    "barabasi_albert",
    "build_paths",
    "dimes_like",
    "estimate_link_variances",
    "hierarchical_bottom_up",
    "hierarchical_top_down",
    "planetlab_like",
    "random_tree",
    "waxman",
]
