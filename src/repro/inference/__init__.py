"""Baseline congestion-location algorithms LIA is compared against."""

from repro.inference.base import (
    LocalizationResult,
    classify_paths,
    path_badness_thresholds,
)
from repro.inference.clink import ClinkModel, clink_localize, learn_clink_priors
from repro.inference.scfs import scfs_localize
from repro.inference.tomo import greedy_cover_columns, tomo_localize

__all__ = [
    "ClinkModel",
    "LocalizationResult",
    "classify_paths",
    "clink_localize",
    "greedy_cover_columns",
    "learn_clink_priors",
    "path_badness_thresholds",
    "scfs_localize",
    "tomo_localize",
]
