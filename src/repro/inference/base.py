"""Shared machinery for the binary congestion-location baselines.

The baselines (SCFS, greedy set cover, CLINK) work on *binary* snapshot
data: each path is classified good or bad, and the algorithm returns the
set of links it believes congested.  This module holds the path
classification rule and the common result type.

A path is classified *bad* when its measured loss exceeds what a path of
all-good links could plausibly lose: ``1 - (1 - t_l) ** hop_count`` with
``hop_count`` counted in physical links.  A path through any congested
link (loss >= 0.05 under LLRD1) always exceeds this; an all-good path
only through sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.probing.snapshot import Snapshot
from repro.topology.graph import Path
from repro.topology.routing import RoutingMatrix


def path_badness_thresholds(
    paths: Sequence[Path], link_threshold: float
) -> np.ndarray:
    """Per-path loss threshold compounding the link threshold over hops."""
    if not 0 < link_threshold < 1:
        raise ValueError(f"link_threshold must be in (0, 1), got {link_threshold}")
    lengths = np.array([p.length for p in paths], dtype=np.float64)
    return 1.0 - (1.0 - link_threshold) ** lengths


def classify_paths(
    snapshot: Snapshot, paths: Sequence[Path], link_threshold: float
) -> np.ndarray:
    """Boolean bad-path mask for one snapshot."""
    if snapshot.num_paths != len(paths):
        raise ValueError("snapshot and path list must align")
    thresholds = path_badness_thresholds(paths, link_threshold)
    return snapshot.path_loss_rates() > thresholds


@dataclass(frozen=True)
class LocalizationResult:
    """Binary output of a congestion-location baseline."""

    congested_columns: Tuple[int, ...]
    algorithm: str

    def as_mask(self, num_links: int) -> np.ndarray:
        mask = np.zeros(num_links, dtype=bool)
        mask[list(self.congested_columns)] = True
        return mask

    def loss_rate_proxy(
        self, routing: RoutingMatrix, congested_value: float = 1.0
    ) -> np.ndarray:
        """Degenerate loss-rate vector for metric plumbing that wants rates.

        Binary methods do not estimate rates (Table 1's point); identified
        links get *congested_value*, others 0.
        """
        rates = np.zeros(routing.num_links, dtype=np.float64)
        rates[list(self.congested_columns)] = congested_value
        return rates
