"""CLINK-style congestion location with learned link priors.

The paper's own earlier work (Nguyen & Thiran, INFOCOM 2007) replaces the
"all links equally likely congested" assumption with per-link congestion
probabilities learned from multiple snapshots, then finds the most likely
congested set explaining the current snapshot.  We implement that scheme
as the third baseline (Table 1's "Multiple Snapshots / First Order
Moments" column):

* **learning** — for each training snapshot, links on good paths are
  certainly good; a greedy cover attributes the bad paths.  The per-link
  congestion probability ``p_k`` is the fraction of snapshots in which
  link ``k`` was held responsible (Laplace-smoothed).
* **location** — maximum a-posteriori set cover: explaining a snapshot
  with links of prior ``p_k`` costs ``sum_k log((1 - p_k) / p_k)``; the
  weighted greedy cover of :mod:`repro.inference.tomo` approximates the
  minimiser with weights ``log((1 - p_k) / p_k)``.

Like SCFS this locates congested links only; it cannot produce loss
rates — the capability gap LIA closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.inference.base import LocalizationResult, classify_paths
from repro.inference.tomo import greedy_cover_columns
from repro.probing.snapshot import MeasurementCampaign, Snapshot
from repro.topology.graph import Path
from repro.topology.routing import RoutingMatrix


@dataclass
class ClinkModel:
    """Learned per-link congestion priors."""

    probabilities: np.ndarray  # (num_links,), in (0, 1)

    def __post_init__(self) -> None:
        p = np.asarray(self.probabilities, dtype=np.float64)
        if np.any((p <= 0) | (p >= 1)):
            raise ValueError("priors must lie strictly inside (0, 1)")
        self.probabilities = p

    def weights(self) -> np.ndarray:
        """Greedy-cover weights: log-odds against congestion."""
        p = self.probabilities
        return np.log((1.0 - p) / p)


def learn_clink_priors(
    campaign: MeasurementCampaign,
    paths: Sequence[Path],
    link_threshold: float,
    smoothing: float = 1.0,
) -> ClinkModel:
    """Estimate per-link congestion probabilities from training snapshots.

    Counts how often each link is blamed by an (unweighted) greedy cover,
    with add-``smoothing`` Laplace correction so probabilities stay in
    (0, 1) and unseen links keep a small prior.
    """
    if smoothing <= 0:
        raise ValueError("smoothing must be positive")
    routing = campaign.routing
    blamed = np.zeros(routing.num_links, dtype=np.float64)
    for snapshot in campaign.snapshots:
        bad = classify_paths(snapshot, paths, link_threshold)
        chosen, _ = greedy_cover_columns(routing, bad)
        blamed[chosen] += 1.0
    m = len(campaign)
    probabilities = (blamed + smoothing) / (m + 2.0 * smoothing)
    return ClinkModel(probabilities=probabilities)


def clink_localize(
    snapshot: Snapshot,
    paths: Sequence[Path],
    routing: RoutingMatrix,
    link_threshold: float,
    model: ClinkModel,
) -> LocalizationResult:
    """MAP-flavoured weighted cover on one snapshot using learned priors."""
    if model.probabilities.shape != (routing.num_links,):
        raise ValueError("model does not match routing matrix")
    bad = classify_paths(snapshot, paths, link_threshold)
    # Shift weights to be strictly positive (greedy requires > 0) while
    # preserving the ordering: links with p > 0.5 get near-zero cost.
    weights = model.weights()
    weights = weights - weights.min() + 1e-6
    chosen, _ = greedy_cover_columns(routing, bad, weights=weights)
    return LocalizationResult(congested_columns=tuple(chosen), algorithm="clink")
