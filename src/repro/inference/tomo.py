"""Greedy smallest-set congestion location for general meshes.

The mesh-flavoured sibling of SCFS (in the spirit of Padmanabhan et al.'s
server-based inference): find a small set of links whose congestion
explains all bad paths, assuming (i) links are equally likely to be
congested and (ii) few links are congested.

Procedure on one snapshot of binary path states:

1. every link carried by at least one *good* path is exonerated;
2. remaining candidate links must cover all bad paths; we take the
   classical greedy set-cover approximation, repeatedly picking the
   candidate covering the most still-unexplained bad paths
   (deterministic tie-break by column index).

Bad paths containing no candidate (possible under sampling noise) are
reported as unexplained rather than silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.inference.base import LocalizationResult, classify_paths
from repro.probing.snapshot import Snapshot
from repro.topology.graph import Path
from repro.topology.routing import RoutingMatrix


@dataclass(frozen=True)
class CoverDiagnostics:
    """What the greedy cover saw: candidates and unexplained paths."""

    num_candidates: int
    unexplained_paths: Tuple[int, ...]


def greedy_cover_columns(
    routing: RoutingMatrix,
    bad: np.ndarray,
    weights: np.ndarray = None,
) -> "tuple[List[int], CoverDiagnostics]":
    """Weighted greedy set cover over routing-matrix columns.

    *weights* (lower = more suspect) bias the pick; default is uniform,
    reproducing the unweighted smallest-set heuristic.  Returns selected
    columns and diagnostics.
    """
    bad = np.asarray(bad, dtype=bool)
    if bad.shape != (routing.num_paths,):
        raise ValueError("one badness flag per path required")
    R = routing.matrix
    good_rows = ~bad
    exonerated = (R[good_rows].sum(axis=0) > 0) if good_rows.any() else np.zeros(
        routing.num_links, dtype=bool
    )
    candidates = ~exonerated

    if weights is None:
        weights = np.ones(routing.num_links, dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (routing.num_links,):
            raise ValueError("one weight per link required")
        if np.any(weights <= 0):
            raise ValueError("weights must be positive")

    uncovered = set(int(i) for i in np.flatnonzero(bad))
    chosen: List[int] = []
    candidate_list = [int(c) for c in np.flatnonzero(candidates)]
    rows_of = {c: set(int(r) for r in np.flatnonzero(R[:, c])) for c in candidate_list}
    while uncovered:
        best = None
        best_score = 0.0
        for c in candidate_list:
            if c in chosen:
                continue
            gain = len(rows_of[c] & uncovered)
            if gain == 0:
                continue
            score = gain / weights[c]
            if score > best_score or (
                score == best_score and best is not None and c < best
            ):
                best, best_score = c, score
        if best is None:
            break  # some bad paths cannot be explained by any candidate
        chosen.append(best)
        uncovered -= rows_of[best]

    diagnostics = CoverDiagnostics(
        num_candidates=int(candidates.sum()),
        unexplained_paths=tuple(sorted(uncovered)),
    )
    return sorted(chosen), diagnostics


def tomo_localize(
    snapshot: Snapshot,
    paths: Sequence[Path],
    routing: RoutingMatrix,
    link_threshold: float,
) -> LocalizationResult:
    """Unweighted greedy smallest-set location on one snapshot."""
    bad = classify_paths(snapshot, paths, link_threshold)
    chosen, _ = greedy_cover_columns(routing, bad)
    return LocalizationResult(
        congested_columns=tuple(chosen), algorithm="tomo-greedy"
    )
