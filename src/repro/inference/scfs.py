"""SCFS — the Smallest Consistent Failure Set algorithm (Duffield 2006).

The baseline the paper compares against in Figure 5.  SCFS works on one
snapshot of binary path states over a *tree* rooted at a beacon:

* a link is a *candidate* when every path crossing it is bad (otherwise
  some good path proves it good);
* among candidates, the smallest set consistent with the observations
  takes the ones *closest to the root*: a candidate link explains all
  bad paths below it, so its candidate descendants are redundant.

Equivalently, link ``e = (u, v)`` is in the SCFS iff every path through
``e`` is bad and either ``u`` is the root or some path through ``u``'s
parent link is good.  SCFS uses a single snapshot and no rate
information — exactly why LIA's multi-snapshot second-order statistics
beat it in Figure 5.

For multi-beacon systems we run SCFS per beacon tree (Assumption T.2
makes each beacon's paths a tree) and take the union, the standard
generalisation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

from repro.inference.base import LocalizationResult, classify_paths
from repro.probing.snapshot import Snapshot
from repro.topology.graph import Path
from repro.topology.routing import RoutingMatrix


def _scfs_one_beacon(
    paths: Sequence[Path],
    rows: Sequence[int],
    bad: np.ndarray,
) -> Set[int]:
    """SCFS over one beacon's tree; returns physical link indices.

    *rows* are the path indices originating at this beacon; *bad* is the
    global bad-path mask.
    """
    # Paths crossing each link, and each link's parent on its tree.
    paths_through: Dict[int, List[int]] = {}
    parent_link: Dict[int, int] = {}
    for row in rows:
        previous = None
        for link in paths[row].links:
            paths_through.setdefault(link.index, []).append(row)
            if previous is not None and link.index not in parent_link:
                parent_link[link.index] = previous
            previous = link.index

    chosen: Set[int] = set()
    for link_index, through in paths_through.items():
        if not all(bad[r] for r in through):
            continue
        parent = parent_link.get(link_index)
        if parent is None:
            chosen.add(link_index)  # attached to the root: topmost by default
            continue
        parent_paths = paths_through[parent]
        if not all(bad[r] for r in parent_paths):
            chosen.add(link_index)  # parent is exonerated, we are topmost
    return chosen


def scfs_localize(
    snapshot: Snapshot,
    paths: Sequence[Path],
    routing: RoutingMatrix,
    link_threshold: float,
) -> LocalizationResult:
    """Run SCFS on one snapshot; returns congested routing-matrix columns.

    Physical SCFS picks are mapped to their covering columns (an alias
    group is congested when any member is picked).
    """
    bad = classify_paths(snapshot, paths, link_threshold)
    by_beacon: Dict[int, List[int]] = {}
    for i, path in enumerate(paths):
        by_beacon.setdefault(path.source, []).append(i)

    physical: Set[int] = set()
    for rows in by_beacon.values():
        physical |= _scfs_one_beacon(paths, rows, bad)

    columns: Set[int] = set()
    for link_index in physical:
        column = routing.column_of_physical(link_index)
        if column is not None:
            columns.add(column)
    return LocalizationResult(
        congested_columns=tuple(sorted(columns)), algorithm="scfs"
    )
