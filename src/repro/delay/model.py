"""Link delay model for the delay-tomography extension.

The paper's first proposed extension (Conclusion): "congested links
usually have high delay variations... take multiple snapshots to learn
the delay variances... remove links with small congestion delays and
then solve for the delays of the remaining congested links."

Model: every link has a fixed *base* (propagation + transmission) delay;
a congested link adds a per-snapshot queueing component drawn from a
Gamma distribution (bursty queues: mean ``queue_mean``, shape < 1 gives
the heavy tail measured on real congested links).  Within a snapshot the
per-probe jitter averages out over S probes, leaving a small residual
measurement noise on the snapshot mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class DelayModel:
    """Per-link delay distribution parameters (milliseconds)."""

    base_range: "tuple[float, float]" = (0.1, 10.0)
    queue_mean_range: "tuple[float, float]" = (5.0, 50.0)
    queue_shape: float = 0.8
    #: Std-dev of per-probe jitter; the snapshot mean sees it / sqrt(S).
    jitter_std: float = 1.0

    def __post_init__(self) -> None:
        lo, hi = self.base_range
        if not 0 <= lo <= hi:
            raise ValueError(f"bad base_range {self.base_range}")
        qlo, qhi = self.queue_mean_range
        if not 0 < qlo <= qhi:
            raise ValueError(f"bad queue_mean_range {self.queue_mean_range}")
        if self.queue_shape <= 0:
            raise ValueError("queue_shape must be positive")
        if self.jitter_std < 0:
            raise ValueError("jitter_std must be non-negative")

    def draw_base_delays(self, num_links: int, seed: SeedLike = None) -> np.ndarray:
        rng = as_rng(seed)
        return rng.uniform(self.base_range[0], self.base_range[1], num_links)

    def draw_queue_means(
        self, congested: np.ndarray, seed: SeedLike = None
    ) -> np.ndarray:
        """Mean queueing delay per link; zero on un-congested links."""
        rng = as_rng(seed)
        congested = np.asarray(congested, dtype=bool)
        means = np.zeros(congested.shape[0], dtype=np.float64)
        count = int(congested.sum())
        if count:
            means[congested] = rng.uniform(
                self.queue_mean_range[0], self.queue_mean_range[1], count
            )
        return means

    def sample_snapshot_delays(
        self,
        base_delays: np.ndarray,
        queue_means: np.ndarray,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """One snapshot's realized per-link mean delays.

        Congested links add ``Gamma(shape, mean/shape)`` queueing delay —
        redrawn each snapshot, producing exactly the across-snapshot
        variance the inference feeds on.
        """
        rng = as_rng(seed)
        base = np.asarray(base_delays, dtype=np.float64)
        queue = np.asarray(queue_means, dtype=np.float64)
        if base.shape != queue.shape:
            raise ValueError("base and queue arrays must align")
        delays = base.copy()
        active = queue > 0
        if active.any():
            scale = queue[active] / self.queue_shape
            delays[active] += rng.gamma(
                self.queue_shape, scale, size=int(active.sum())
            )
        return delays

    def theoretical_variance(self, queue_means: np.ndarray) -> np.ndarray:
        """Across-snapshot delay variance implied by the queue means.

        Var of Gamma(shape, mean/shape) = mean^2 / shape; the fixed base
        delay contributes nothing.
        """
        queue = np.asarray(queue_means, dtype=np.float64)
        return queue**2 / self.queue_shape


DEFAULT_DELAY_MODEL = DelayModel()
