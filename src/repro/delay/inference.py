"""Delay tomography: the LIA recipe applied to link delays.

Identical skeleton to the loss algorithm, with two simplifications the
additive delay system allows:

* no log transform — ``Y = R D`` holds in delay units directly;
* phase 2 works on *centered* measurements: only delay *deviations* from
  each path's training mean are attributed to links.  Means of link
  delays are not identifiable (same Figure 1 argument), but deviations
  of the high-variance (congested) links are — removed links deviate
  ~0 by construction, exactly the "loss rates of removed links ~ 0"
  approximation transplanted to delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.augmented import IntersectingPairs, intersecting_pairs
from repro.core.covariance import sample_covariance_pairs
from repro.core.engine import FactorizationCache, ReductionCache
from repro.delay.prober import DelayCampaign, DelaySnapshot
from repro.topology.routing import RoutingMatrix
from scipy import sparse


@dataclass(frozen=True)
class DelayVarianceEstimate:
    """Per-column delay variances learned from a training campaign."""

    variances: np.ndarray
    num_snapshots: int
    path_means: np.ndarray  # training-mean delay per path (for centering)

    @property
    def num_links(self) -> int:
        return int(self.variances.shape[0])


@dataclass(frozen=True)
class DelayInferenceResult:
    """Per-column delay deviations inferred for one snapshot."""

    delay_deviations: np.ndarray  # vs the training mean, ms
    variance_estimate: DelayVarianceEstimate
    kept_columns: np.ndarray

    def high_delay_links(self, threshold_ms: float) -> np.ndarray:
        """Columns whose inferred deviation exceeds *threshold_ms*."""
        return self.delay_deviations > threshold_ms


class DelayInferenceAlgorithm:
    """Two-phase delay tomography bound to one routing matrix.

    Parameters
    ----------
    routing:
        The reduced routing matrix.
    variance_cutoff_ms2:
        Phase-2 keep threshold on the learned delay variances (ms^2).
        Links below it are treated as queueing-free; the default of 1.0
        sits far above jitter-induced estimation noise for S >= 100 yet
        two orders below the mildest Gamma queue of the default model.
    """

    def __init__(
        self,
        routing: RoutingMatrix,
        variance_cutoff_ms2: float = 1.0,
    ) -> None:
        if variance_cutoff_ms2 <= 0:
            raise ValueError("variance_cutoff_ms2 must be positive")
        self.routing = routing
        self.variance_cutoff_ms2 = variance_cutoff_ms2
        self._pairs: Optional[IntersectingPairs] = None
        self._routing_sparse = routing.to_sparse()
        self._factorizations = FactorizationCache(self._routing_sparse)
        self._reductions = ReductionCache(self._routing_sparse)

    @property
    def pairs(self) -> IntersectingPairs:
        if self._pairs is None:
            self._pairs = intersecting_pairs(self.routing.matrix)
        return self._pairs

    # -- phase 1 -----------------------------------------------------------

    def learn_variances(self, training: DelayCampaign) -> DelayVarianceEstimate:
        """Weighted least squares on ``Sigma_hat* = A v`` for delay variances."""
        if len(training) < 2:
            raise ValueError("need at least two training snapshots")
        Y = training.delay_matrix()
        pairs = self.pairs
        sigma = sample_covariance_pairs(Y, pairs.pair_i, pairs.pair_j)
        path_var = Y.var(axis=0, ddof=1)
        eq_var = (
            path_var[pairs.pair_i] * path_var[pairs.pair_j] + sigma**2
        ) / max(Y.shape[0] - 1, 1)
        weights = 1.0 / np.sqrt(np.maximum(eq_var, max(eq_var.max(), 1e-12) * 1e-9))
        keep = sigma >= 0
        A = sparse.diags(weights[keep]) @ pairs.matrix[keep]
        b = weights[keep] * sigma[keep]
        AtA = (A.T @ A).toarray()
        ridge = 1e-10 * np.trace(AtA) / max(AtA.shape[0], 1)
        v = np.linalg.solve(AtA + ridge * np.eye(AtA.shape[0]), A.T @ b)
        return DelayVarianceEstimate(
            variances=v,
            num_snapshots=len(training),
            path_means=Y.mean(axis=0),
        )

    # -- phase 2 -----------------------------------------------------------

    def infer(
        self, snapshot: DelaySnapshot, estimate: DelayVarianceEstimate
    ) -> DelayInferenceResult:
        """Attribute this snapshot's path-delay deviations to links."""
        if estimate.num_links != self.routing.num_links:
            raise ValueError("estimate does not match routing matrix")
        kept = self._kept_columns(estimate)
        deviations = np.zeros(self.routing.num_links)
        if len(kept):
            centered = snapshot.path_delays - estimate.path_means
            factorization = self._factorizations.factorization(kept)
            deviations[kept] = factorization.solve(centered)
        return DelayInferenceResult(
            delay_deviations=deviations,
            variance_estimate=estimate,
            kept_columns=kept,
        )

    def _kept_columns(self, estimate: DelayVarianceEstimate) -> np.ndarray:
        """Memoized phase-2 column selection for one variance estimate.

        Delegates to the shared :class:`repro.core.engine.ReductionCache`
        (the ``"threshold"`` strategy with the delay cutoff), the same
        helper the loss engine memoizes through.  The kept set (and
        therefore the ``R*`` factorization the cache hands back) is fixed
        per estimate, so repeated inference against one training window —
        the monitoring pattern — reduces once and factorizes once.
        """
        return self._reductions.reduce(
            estimate.variances, "threshold", self.variance_cutoff_ms2
        ).kept_columns

    def run(self, campaign: DelayCampaign) -> DelayInferenceResult:
        """Learn on all but the last snapshot; infer on the last."""
        training, target = campaign.split_training_target()
        estimate = self.learn_variances(training)
        return self.infer(target, estimate)
