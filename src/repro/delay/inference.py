"""Delay tomography: the LIA recipe applied to link delays.

Identical skeleton to the loss algorithm, with two simplifications the
additive delay system allows:

* no log transform — ``Y = R D`` holds in delay units directly;
* phase 2 works on *centered* measurements: only delay *deviations* from
  each path's training mean are attributed to links.  Means of link
  delays are not identifiable (same Figure 1 argument), but deviations
  of the high-variance (congested) links are — removed links deviate
  ~0 by construction, exactly the "loss rates of removed links ~ 0"
  approximation transplanted to delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.augmented import IntersectingPairs, intersecting_pairs
from repro.core.covariance import sample_covariance_pairs
from repro.core.engine import FactorizationCache, ReductionCache
from repro.core.variance import (
    VARIANCE_METHODS,
    _equation_weights,
    solve_covariance_system,
)
from repro.delay.prober import DelayCampaign, DelaySnapshot
from repro.topology.routing import RoutingMatrix


@dataclass(frozen=True)
class DelayVarianceEstimate:
    """Per-column delay variances learned from a training campaign."""

    variances: np.ndarray
    num_snapshots: int
    path_means: np.ndarray  # training-mean delay per path (for centering)

    @property
    def num_links(self) -> int:
        return int(self.variances.shape[0])


@dataclass(frozen=True)
class DelayInferenceResult:
    """Per-column delay deviations inferred for one snapshot."""

    delay_deviations: np.ndarray  # vs the training mean, ms
    variance_estimate: DelayVarianceEstimate
    kept_columns: np.ndarray

    def high_delay_links(self, threshold_ms: float) -> np.ndarray:
        """Columns whose inferred deviation exceeds *threshold_ms*."""
        return self.delay_deviations > threshold_ms


class DelayInferenceAlgorithm:
    """Two-phase delay tomography bound to one routing matrix.

    Parameters
    ----------
    routing:
        The reduced routing matrix.
    variance_cutoff_ms2:
        Phase-2 keep threshold on the learned delay variances (ms^2).
        Links below it are treated as queueing-free; the default of 1.0
        sits far above jitter-induced estimation noise for S >= 100 yet
        two orders below the mildest Gamma queue of the default model.
    variance_method:
        Phase-1 solver, see :data:`repro.core.variance.VARIANCE_METHODS`
        — the delay layer solves the same ``Sigma_hat* = A v`` system
        through the same back end as the loss layer, so the sparse
        solvers (``"sparse"``, ``"cg"``) and the automatic dense→sparse
        crossover apply here too.
    """

    def __init__(
        self,
        routing: RoutingMatrix,
        variance_cutoff_ms2: float = 1.0,
        variance_method: str = "wls",
    ) -> None:
        if variance_cutoff_ms2 <= 0:
            raise ValueError("variance_cutoff_ms2 must be positive")
        if variance_method not in VARIANCE_METHODS:
            raise ValueError(
                f"unknown variance method {variance_method!r}, "
                f"want one of {VARIANCE_METHODS}"
            )
        self.routing = routing
        self.variance_cutoff_ms2 = variance_cutoff_ms2
        self.variance_method = variance_method
        self._pairs: Optional[IntersectingPairs] = None
        self._routing_sparse = routing.to_sparse()
        self._factorizations = FactorizationCache(self._routing_sparse)
        self._reductions = ReductionCache(self._routing_sparse)

    @property
    def pairs(self) -> IntersectingPairs:
        if self._pairs is None:
            self._pairs = intersecting_pairs(self.routing.matrix)
        return self._pairs

    # -- phase 1 -----------------------------------------------------------

    def learn_variances(self, training: DelayCampaign) -> DelayVarianceEstimate:
        """Solve ``Sigma_hat* = A v`` for delay variances (shared back end).

        Delegates to the loss layer's
        :func:`repro.core.variance.solve_covariance_system` — the same
        negative-equation filter, WLS weighting
        (:func:`~repro.core.variance._equation_weights`, which this
        module used to carry as a drifted copy), underdetermined-system
        guard and solver dispatch — with raw delays in place of log
        rates.  A campaign whose surviving equations cannot determine
        ``v`` (e.g. every cross-path covariance negative) raises the
        same clear ``ValueError`` the loss layer does instead of
        crashing inside a degenerate dense solve.
        """
        if len(training) < 2:
            raise ValueError("need at least two training snapshots")
        Y = training.delay_matrix()
        pairs = self.pairs
        sigma = sample_covariance_pairs(Y, pairs.pair_i, pairs.pair_j)
        weights = None
        if self.variance_method == "wls":
            weights = _equation_weights(Y, pairs, sigma)
        solution = solve_covariance_system(
            pairs.matrix, sigma, method=self.variance_method, weights=weights
        )
        return DelayVarianceEstimate(
            variances=solution.variances,
            num_snapshots=len(training),
            path_means=Y.mean(axis=0),
        )

    # -- phase 2 -----------------------------------------------------------

    def infer(
        self, snapshot: DelaySnapshot, estimate: DelayVarianceEstimate
    ) -> DelayInferenceResult:
        """Attribute this snapshot's path-delay deviations to links."""
        if estimate.num_links != self.routing.num_links:
            raise ValueError("estimate does not match routing matrix")
        kept = self._kept_columns(estimate)
        deviations = np.zeros(self.routing.num_links)
        if len(kept):
            centered = snapshot.path_delays - estimate.path_means
            factorization = self._factorizations.factorization(kept)
            deviations[kept] = factorization.solve(centered)
        return DelayInferenceResult(
            delay_deviations=deviations,
            variance_estimate=estimate,
            kept_columns=kept,
        )

    def _kept_columns(self, estimate: DelayVarianceEstimate) -> np.ndarray:
        """Memoized phase-2 column selection for one variance estimate.

        Delegates to the shared :class:`repro.core.engine.ReductionCache`
        (the ``"threshold"`` strategy with the delay cutoff), the same
        helper the loss engine memoizes through.  The kept set (and
        therefore the ``R*`` factorization the cache hands back) is fixed
        per estimate, so repeated inference against one training window —
        the monitoring pattern — reduces once and factorizes once.
        """
        return self._reductions.reduce(
            estimate.variances, "threshold", self.variance_cutoff_ms2
        ).kept_columns

    def run(self, campaign: DelayCampaign) -> DelayInferenceResult:
        """Learn on all but the last snapshot; infer on the last."""
        training, target = campaign.split_training_target()
        estimate = self.learn_variances(training)
        return self.infer(target, estimate)
