"""Delay tomography — the paper's first proposed extension (Conclusion).

Link delay *variances* are identifiable from end-to-end delay
covariances by the same Theorem-1 argument (delays are additive over a
path, so ``Y = R D`` is linear without any transform); sorting links by
delay variance and solving the reduced centered system recovers the
per-snapshot delay deviations of the congested links.
"""

from repro.delay.inference import (
    DelayInferenceAlgorithm,
    DelayInferenceResult,
    DelayVarianceEstimate,
)
from repro.delay.model import DEFAULT_DELAY_MODEL, DelayModel
from repro.delay.prober import DelayCampaign, DelayProbingSimulator, DelaySnapshot

__all__ = [
    "DEFAULT_DELAY_MODEL",
    "DelayCampaign",
    "DelayInferenceAlgorithm",
    "DelayInferenceResult",
    "DelayModel",
    "DelayProbingSimulator",
    "DelaySnapshot",
    "DelayVarianceEstimate",
]
