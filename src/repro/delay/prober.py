"""Delay measurement simulator.

Path delays are *additive* over links — the linear system ``Y = R D``
holds directly, without the log transform loss rates need — so the same
second-order machinery (augmented matrix, covariance equations) applies
verbatim.  A snapshot here is the per-path mean RTT/OWD over S probes;
per-probe jitter averages down by ``sqrt(S)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.delay.model import DEFAULT_DELAY_MODEL, DelayModel
from repro.topology.graph import Path
from repro.topology.routing import RoutingMatrix
from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class DelaySnapshot:
    """One slot of mean path delays plus simulator ground truth."""

    path_delays: np.ndarray  # (num_paths,) snapshot-mean delays, ms
    num_probes: int
    link_delays: Optional[np.ndarray] = None  # realized per-physical-link

    def __post_init__(self) -> None:
        delays = np.asarray(self.path_delays, dtype=np.float64)
        if delays.ndim != 1 or (delays < 0).any():
            raise ValueError("path delays must be a non-negative vector")
        object.__setattr__(self, "path_delays", delays)
        if self.num_probes <= 0:
            raise ValueError("num_probes must be positive")

    @property
    def num_paths(self) -> int:
        return int(self.path_delays.shape[0])

    def virtual_link_delays(self, routing: RoutingMatrix) -> np.ndarray:
        """Realized per-column delay (sum over alias members)."""
        if self.link_delays is None:
            raise ValueError("snapshot carries no link ground truth")
        out = np.zeros(routing.num_links)
        for vlink in routing.virtual_links:
            out[vlink.column] = self.link_delays[
                list(vlink.member_indices())
            ].sum()
        return out


@dataclass
class DelayCampaign:
    """Snapshots of mean path delays over one fixed routing matrix."""

    routing: RoutingMatrix
    snapshots: List[DelaySnapshot] = field(default_factory=list)

    def append(self, snapshot: DelaySnapshot) -> None:
        if snapshot.num_paths != self.routing.num_paths:
            raise ValueError("snapshot does not match routing matrix")
        self.snapshots.append(snapshot)

    def __len__(self) -> int:
        return len(self.snapshots)

    def __getitem__(self, index: int) -> DelaySnapshot:
        return self.snapshots[index]

    def delay_matrix(self) -> np.ndarray:
        """``(m, num_paths)`` matrix of snapshot-mean path delays."""
        if not self.snapshots:
            raise ValueError("campaign is empty")
        return np.vstack([s.path_delays for s in self.snapshots])

    def split_training_target(self) -> "tuple[DelayCampaign, DelaySnapshot]":
        if len(self.snapshots) < 2:
            raise ValueError("need at least two snapshots")
        return (
            DelayCampaign(routing=self.routing, snapshots=self.snapshots[:-1]),
            self.snapshots[-1],
        )


class DelayProbingSimulator:
    """Simulate snapshots of mean path delays.

    Ground truth: base delays fixed for the campaign; a ``congestion_
    probability`` fraction of links is congested (fixed set, like the
    loss simulator's default) and re-draws its queueing delay each
    snapshot.
    """

    def __init__(
        self,
        paths: Sequence[Path],
        num_physical_links: int,
        model: DelayModel = DEFAULT_DELAY_MODEL,
        congestion_probability: float = 0.10,
        probes_per_snapshot: int = 1000,
        seed: SeedLike = None,
    ) -> None:
        if not paths:
            raise ValueError("need at least one probing path")
        if not 0 <= congestion_probability <= 1:
            raise ValueError("congestion_probability must be in [0, 1]")
        if probes_per_snapshot <= 0:
            raise ValueError("probes_per_snapshot must be positive")
        rng = as_rng(seed)
        self.paths = list(paths)
        self.num_physical_links = num_physical_links
        self.model = model
        self.probes_per_snapshot = probes_per_snapshot
        self.base_delays = model.draw_base_delays(num_physical_links, seed=rng)
        self.congested = rng.random(num_physical_links) < congestion_probability
        self.queue_means = model.draw_queue_means(self.congested, seed=rng)
        self._path_links = [
            np.fromiter((link.index for link in p.links), dtype=np.int64)
            for p in self.paths
        ]

    def run_snapshot(self, seed: SeedLike = None) -> DelaySnapshot:
        rng = as_rng(seed)
        link_delays = self.model.sample_snapshot_delays(
            self.base_delays, self.queue_means, seed=rng
        )
        noise_std = self.model.jitter_std / np.sqrt(self.probes_per_snapshot)
        delays = np.empty(len(self.paths))
        for i, links in enumerate(self._path_links):
            delays[i] = link_delays[links].sum()
        delays = np.maximum(delays + rng.normal(0.0, noise_std, len(delays)), 0.0)
        return DelaySnapshot(
            path_delays=delays,
            num_probes=self.probes_per_snapshot,
            link_delays=link_delays,
        )

    def run_campaign(
        self, num_snapshots: int, routing: RoutingMatrix, seed: SeedLike = None
    ) -> DelayCampaign:
        if num_snapshots <= 0:
            raise ValueError("num_snapshots must be positive")
        rng = as_rng(seed)
        campaign = DelayCampaign(routing=routing)
        for _ in range(num_snapshots):
            campaign.append(self.run_snapshot(seed=rng))
        return campaign
