"""Command-line interface: audit, simulate, infer, compare, experiments.

Five verbs covering the operational loop without writing Python:

``audit``
    generate (or size up) a monitoring layout and print its
    identifiability report — rank(R), rank(A), fluttering pairs —
    before deploying probes;
``simulate``
    run a probing campaign over a generated topology and write it as a
    JSON campaign document (the same format external measurements use);
``infer``
    run one estimator (``--method lia|scfs|clink|tomo``, dispatched
    through the ``repro.api`` registry) on a campaign document and print
    the congested links it reports; ``--variance-solver`` picks LIA's
    phase-1 solver (``sparse``/``cg`` for 10k-link meshes);
``compare``
    run several estimators over one campaign document and print a
    side-by-side table of their verdicts per link;
``experiments``
    regenerate the paper's tables/figures through the parallel sharded
    runner (``--jobs``, ``--backend``, ``--cache-dir``, ``--store-dir``;
    see ``repro.runner``);
``worker``
    serve shards to a ``--backend remote`` coordinator from this
    machine: connect to ``host:port`` (retrying until the coordinator
    is up), pull shards, stream results back
    (:mod:`repro.runner.remote`);
``lint``
    run the project-invariant static analysis (:mod:`repro.analysis`)
    over the given paths — determinism, registry sync, kernel-tier
    parity, concurrency — and exit non-zero on any unsuppressed
    finding (CI blocks on ``repro lint src/``).

Examples::

    python -m repro audit --topology tree --size 300 --seed 7
    python -m repro simulate --topology planetlab --snapshots 31 \
        --out campaign.json
    python -m repro simulate --traffic congestion --size 60 \
        --snapshots 11 --probes 300 --out congested.json
    python -m repro infer campaign.json --threshold 0.002
    python -m repro infer campaign.json --method scfs
    python -m repro infer campaign.json --variance-solver sparse
    python -m repro compare campaign.json --methods lia,scfs,tomo
    python -m repro experiments fig5 --scale small --jobs -1 \
        --cache-dir .repro-cache
    python -m repro experiments table2 --scale paper --jobs 4 \
        --backend thread --store-dir .repro-results
    python -m repro experiments fig5 --scale small --backend remote \
        --remote-workers 4
    python -m repro worker coordinator.example.org:7787
    python -m repro lint src
    python -m repro lint --format json src scripts examples
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

TOPOLOGY_CHOICES = (
    "tree",
    "waxman",
    "barabasi-albert",
    "hierarchical-td",
    "hierarchical-bu",
    "planetlab",
    "dimes",
)

# Static mirrors of repro.experiments.EXPERIMENTS / SCALES and of
# repro.api.registry.available() so building the parser never imports
# the experiment modules (scipy and the full netsim stack) for verbs
# that don't use them; tests pin them in sync with the real registries.
EXPERIMENT_CHOICES = (
    "ablations", "congestion", "duration", "fig3", "fig5", "fig6", "fig7",
    "fig8", "fig9", "table2", "table3", "timing",
)
SCALE_CHOICES = ("tiny", "small", "paper")
#: Static mirror of repro.netsim.sim.config.TRAFFIC_KINDS (pinned in
#: sync by tests): how ``simulate`` realises per-link loss — sampled
#: from an analytic process, or induced by queue overflow in the
#: discrete-event packet simulator.
TRAFFIC_CHOICES = ("analytic", "congestion")
METHOD_CHOICES = ("clink", "delay", "lia", "scfs", "tomo")
#: The methods a *loss* campaign document can drive (``delay`` consumes
#: delay campaigns, which have no document format yet).
LOSS_METHOD_CHOICES = ("clink", "lia", "scfs", "tomo")
#: Static mirror of repro.core.variance.VARIANCE_METHODS (same
#: no-heavy-imports rule as the registries above; pinned in sync by
#: tests).  ``--variance-solver`` picks LIA's phase-1 solver; the
#: ``sparse``/``cg`` entries keep 10k-link meshes out of dense algebra.
VARIANCE_SOLVER_CHOICES = ("wls", "lsmr", "normal", "qr", "nnls", "sparse", "cg")
#: Static mirror of repro.core.kernels.KERNEL_TIERS: the global
#: ``--kernel-tier`` flag must parse without importing the kernel
#: registry.  Every mirror in this module is verified against its
#: registry by the ``registry-sync`` lint rule (``repro lint src/``).
KERNEL_TIER_CHOICES = ("auto", "numpy", "numba")


def _build_topology(kind: str, size: int, hosts: int, seed: Optional[int]):
    from repro.topology.generators import (
        barabasi_albert,
        dimes_like,
        hierarchical_bottom_up,
        hierarchical_top_down,
        planetlab_like,
        random_tree,
        waxman,
    )

    if kind == "tree":
        return random_tree(num_nodes=size, seed=seed)
    if kind == "waxman":
        return waxman(num_nodes=size, num_end_hosts=hosts, seed=seed)
    if kind == "barabasi-albert":
        return barabasi_albert(num_nodes=size, num_end_hosts=hosts, seed=seed)
    if kind == "hierarchical-td":
        return hierarchical_top_down(
            num_ases=max(2, size // 50),
            routers_per_as=min(50, max(2, size // max(2, size // 50))),
            num_end_hosts=hosts,
            seed=seed,
        )
    if kind == "hierarchical-bu":
        return hierarchical_bottom_up(num_nodes=size, num_end_hosts=hosts, seed=seed)
    if kind == "planetlab":
        return planetlab_like(num_sites=max(2, hosts // 2), seed=seed)
    if kind == "dimes":
        return dimes_like(num_ases=max(5, size // 12), num_hosts=hosts, seed=seed)
    raise ValueError(f"unknown topology {kind!r}")


def _prepare(kind: str, size: int, hosts: int, seed: Optional[int]):
    from repro.topology import (
        RoutingMatrix,
        build_paths,
        find_fluttering_pairs,
        remove_fluttering_paths,
    )

    topology = _build_topology(kind, size, hosts, seed)
    paths = build_paths(topology.network, topology.beacons, topology.destinations)
    if find_fluttering_pairs(paths):
        paths, _ = remove_fluttering_paths(paths)
    return topology, paths, RoutingMatrix.from_paths(paths)


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.core.identifiability import audit_identifiability

    topology, paths, routing = _prepare(
        args.topology, args.size, args.hosts, args.seed
    )
    print(topology.summary())
    report = audit_identifiability(routing, paths)
    print(report.summary())
    return 0 if report.variances_identifiable else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.io import CampaignDocument, save_campaign
    from repro.lossmodel import INTERNET, LLRD1, LLRD2
    from repro.probing import ProberConfig, ProbingSimulator

    models = {"llrd1": LLRD1, "llrd2": LLRD2, "internet": INTERNET}
    topology, paths, routing = _prepare(
        args.topology, args.size, args.hosts, args.seed
    )
    config = ProberConfig(
        probes_per_snapshot=args.probes,
        congestion_probability=args.congestion,
        truth_mode=args.truth_mode,
    )
    process = None
    if args.traffic == "congestion":
        from repro.lossmodel import CongestionLossProcess

        process = CongestionLossProcess(paths, topology.network.num_links)
    simulator = ProbingSimulator(
        paths,
        topology.network.num_links,
        model=models[args.model],
        process=process,
        config=config,
    )
    campaign = simulator.run_campaign(args.snapshots, routing, seed=args.seed)
    document = CampaignDocument(
        network=topology.network,
        beacons=topology.beacons,
        destinations=topology.destinations,
        paths=paths,
        snapshots=list(campaign.snapshots),
    )
    save_campaign(document, args.out)
    print(
        f"wrote {args.out}: {routing.num_paths} paths x "
        f"{routing.num_links} links, {len(campaign)} snapshots"
    )
    return 0


def _build_estimator(method: str, threshold: float, variance_solver: str = "wls"):
    """Registry dispatch with the CLI threshold routed to the right knob."""
    from repro.api import registry

    if method == "lia":
        return registry.get(
            "lia",
            congestion_threshold=threshold,
            variance_method=variance_solver,
        )
    return registry.get(method, link_threshold=threshold)


def _fit_predict(
    document, training, target, method: str, threshold: float,
    variance_solver: str = "wls",
):
    """Fit *method* on the training window, predict the target snapshot."""
    estimator = _build_estimator(method, threshold, variance_solver)
    estimator.fit(training, paths=document.paths)
    return estimator.predict(target)


def _check_loss_method(method: str) -> bool:
    if method in LOSS_METHOD_CHOICES:
        return True
    print(
        f"method {method!r} does not consume loss campaign documents; "
        f"choose one of {', '.join(LOSS_METHOD_CHOICES)}",
        file=sys.stderr,
    )
    return False


def cmd_infer(args: argparse.Namespace) -> int:
    from repro.io import load_campaign
    from repro.utils.tables import TextTable

    if not _check_loss_method(args.method):
        return 2
    document = load_campaign(args.document)
    if len(document.snapshots) < 2:
        print("document needs at least 2 snapshots", file=sys.stderr)
        return 2
    campaign = document.campaign()
    routing = campaign.routing
    training, target = campaign.split_training_target()
    result = _fit_predict(
        document, training, target, args.method, args.threshold,
        args.variance_solver,
    )
    num_training = len(training)
    if result.congested_columns is not None:
        congested = np.asarray(sorted(result.congested_columns), dtype=np.int64)
        verdict = f"{len(congested)} links flagged congested by {args.method}"
    else:
        congested = np.flatnonzero(result.loss_rates > args.threshold)
        verdict = f"{len(congested)} links above t_l={args.threshold}"
    print(
        f"{routing.num_paths} paths x {routing.num_links} links; "
        f"trained on {num_training} snapshots; {verdict}"
    )
    table = TextTable(["link column", "physical links", "inferred loss"])
    for column in sorted(
        congested, key=lambda c: (-result.values[c], c)
    )[: args.top]:
        vlink = routing.virtual_links[int(column)]
        table.add_row(
            [
                int(column),
                ",".join(str(i) for i in vlink.member_indices()),
                float(result.values[column]),
            ]
        )
    if len(table):
        print(table.render())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.io import load_campaign
    from repro.utils.tables import TextTable

    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    if not methods:
        print("no methods given", file=sys.stderr)
        return 2
    for method in methods:
        if method not in METHOD_CHOICES:
            print(
                f"unknown method {method!r}; choose from "
                f"{', '.join(METHOD_CHOICES)}",
                file=sys.stderr,
            )
            return 2
        if not _check_loss_method(method):
            return 2
    document = load_campaign(args.document)
    if len(document.snapshots) < 2:
        print("document needs at least 2 snapshots", file=sys.stderr)
        return 2
    # Campaign, routing matrix and split are built once and shared by
    # every method; only the estimators themselves differ.
    campaign = document.campaign()
    routing = campaign.routing
    training, target = campaign.split_training_target()

    results = {}
    flagged = {}
    for method in methods:
        result = _fit_predict(
            document, training, target, method, args.threshold,
            args.variance_solver,
        )
        results[method] = result
        if result.congested_columns is not None:
            flagged[method] = set(result.congested_columns)
        else:
            flagged[method] = set(
                int(c)
                for c in np.flatnonzero(result.loss_rates > args.threshold)
            )

    print(
        f"{routing.num_paths} paths x {routing.num_links} links; "
        f"trained on {len(training)} snapshots; "
        f"t_l={args.threshold}"
    )
    for method in methods:
        print(f"  {method}: {len(flagged[method])} links flagged")

    union = sorted(set().union(*flagged.values()))
    table = TextTable(["link column", "physical links"] + list(methods))
    for column in union[: args.top]:
        vlink = routing.virtual_links[column]
        row: List[object] = [
            column,
            ",".join(str(i) for i in vlink.member_indices()),
        ]
        for method in methods:
            result = results[method]
            if result.congested_columns is None:
                # Rate estimator: always show its estimate for this link.
                row.append(float(result.values[column]))
            else:
                row.append("X" if column in flagged[method] else "")
        table.add_row(row)
    if len(table):
        print(table.render())
    else:
        print("no method flagged any link")
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.runner.remote import run_worker

    return run_worker(
        args.address,
        retry_seconds=args.retry_seconds,
        max_runs=args.max_runs,
        heartbeat_interval=args.heartbeat,
        die_after=args.die_after,
        worker_name=args.name,
    )


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(
        args.paths,
        fmt=args.format,
        rule_ids=args.rule,
        summary_file=args.summary_file,
    )


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS
    from repro.experiments.__main__ import run_experiments
    from repro.runner.args import runner_from_args

    names = (
        sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    run_experiments(names, args.scale, args.seed, runner_from_args(args))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Loss tomography from second-order flow statistics.",
    )
    parser.add_argument(
        "--kernel-tier",
        choices=KERNEL_TIER_CHOICES,
        default=None,
        help=(
            "compiled-kernel tier for the inner linear-algebra loops "
            "(repro.core.kernels); 'auto' (the default, also via "
            "REPRO_KERNEL_TIER) picks numba when installed, 'numba' "
            "demands it, 'numpy' forces the pure-numpy fallback"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    audit = sub.add_parser("audit", help="identifiability report of a layout")
    simulate = sub.add_parser("simulate", help="simulate and save a campaign")
    for p in (audit, simulate):
        p.add_argument("--topology", choices=TOPOLOGY_CHOICES, default="tree")
        p.add_argument("--size", type=int, default=200, help="node count")
        p.add_argument("--hosts", type=int, default=16, help="end hosts")
        p.add_argument("--seed", type=int, default=0)
    audit.set_defaults(func=cmd_audit)

    simulate.add_argument("--snapshots", type=int, default=31)
    simulate.add_argument("--probes", type=int, default=1000)
    simulate.add_argument("--congestion", type=float, default=0.10)
    simulate.add_argument(
        "--model", choices=("llrd1", "llrd2", "internet"), default="llrd1"
    )
    simulate.add_argument(
        "--truth-mode",
        choices=("fixed", "redraw", "persistent", "propensity"),
        default="fixed",
    )
    simulate.add_argument(
        "--traffic",
        choices=TRAFFIC_CHOICES,
        default="analytic",
        help=(
            "loss realisation: 'analytic' samples the configured loss "
            "process; 'congestion' runs the packet-level simulator and "
            "drops probes by queue overflow (repro.netsim.sim)"
        ),
    )
    simulate.add_argument("--out", required=True)
    simulate.set_defaults(func=cmd_simulate)

    infer = sub.add_parser(
        "infer", help="run one estimator on a campaign document"
    )
    infer.add_argument("document")
    infer.add_argument(
        "--method",
        choices=METHOD_CHOICES,
        default="lia",
        help="estimator to run (repro.api registry name)",
    )
    infer.add_argument("--threshold", type=float, default=0.002)
    infer.add_argument("--top", type=int, default=20, help="rows to print")
    infer.set_defaults(func=cmd_infer)

    compare = sub.add_parser(
        "compare",
        help="run several estimators on one campaign document, side by side",
    )
    compare.add_argument("document")
    compare.add_argument(
        "--methods",
        default="lia,scfs,clink,tomo",
        help="comma-separated registry names (default: all loss estimators)",
    )
    compare.add_argument("--threshold", type=float, default=0.002)
    compare.add_argument("--top", type=int, default=30, help="rows to print")
    compare.set_defaults(func=cmd_compare)

    for p in (infer, compare):
        p.add_argument(
            "--variance-solver",
            choices=VARIANCE_SOLVER_CHOICES,
            default="wls",
            help=(
                "LIA phase-1 solver (repro.core.variance.VARIANCE_METHODS); "
                "'sparse'/'cg' keep 10k-link systems out of dense algebra"
            ),
        )

    from repro.runner.args import add_runner_arguments

    experiments = sub.add_parser(
        "experiments", help="regenerate paper tables/figures (parallel runner)"
    )
    experiments.add_argument(
        "experiment",
        choices=sorted(EXPERIMENT_CHOICES) + ["all"],
        help="experiment id (table/figure number) or 'all'",
    )
    experiments.add_argument("--scale", choices=SCALE_CHOICES, default="small")
    experiments.add_argument("--seed", type=int, default=0, help="master seed")
    add_runner_arguments(experiments)
    experiments.set_defaults(func=cmd_experiments)

    lint = sub.add_parser(
        "lint",
        help="static analysis: determinism, registry sync, tier parity",
        description=(
            "Run the rule-based AST lint engine (repro.analysis) over "
            "the given paths.  Exits 1 on any unsuppressed finding; "
            "suppress per line with `# reprolint: disable=<rule> -- why`."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE_ID",
        help="run only this rule (repeatable; default: all rules)",
    )
    lint.add_argument(
        "--summary-file",
        default=None,
        help="append a markdown summary to this file (CI step summaries)",
    )
    lint.set_defaults(func=cmd_lint)

    worker = sub.add_parser(
        "worker",
        help="serve shards to a --backend remote coordinator",
        description=(
            "Connect to a RemoteCoordinator (retrying until it is up), "
            "pull shards, run the campaign's trial function and stream "
            "results back.  This machine must run the exact same repro "
            "sources as the coordinator (enforced by a code-version "
            "handshake)."
        ),
    )
    worker.add_argument("address", help="coordinator host:port")
    worker.add_argument(
        "--retry-seconds",
        type=float,
        default=30.0,
        help="keep retrying the connection this long (default 30)",
    )
    worker.add_argument(
        "--max-runs",
        type=int,
        default=None,
        help="exit after serving this many campaigns (default: serve forever)",
    )
    worker.add_argument(
        "--heartbeat",
        type=float,
        default=2.0,
        help="seconds between keepalive pings while a shard executes",
    )
    worker.add_argument(
        "--name", default=None, help="worker name shown to the coordinator"
    )
    worker.add_argument(
        "--die-after",
        type=int,
        default=None,
        help=(
            "fault injection: exit abruptly (os._exit) upon receiving "
            "shard N+1, leaving it in flight — exercises the "
            "coordinator's re-queue path in tests and CI"
        ),
    )
    worker.set_defaults(func=cmd_worker)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.kernel_tier is not None:
        from repro.core.kernels import KernelTierError, set_kernel_tier

        try:
            set_kernel_tier(args.kernel_tier)
        except KernelTierError as error:
            print(f"--kernel-tier: {error}", file=sys.stderr)
            return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
