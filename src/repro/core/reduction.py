"""Phase 2 of LIA: eliminating good links to reach full column rank
(Section 5.2).

Links are sorted by increasing estimated variance; by Assumption S.3 this
is also increasing congestion order.  The lowest-variance columns are
removed from ``R`` until the remainder ``R*`` has full column rank; the
reduced system ``Y = R* X*`` is then solvable, and the removed (best
performing) links get loss rate ~ 0.

Both entry points accept the routing matrix as a dense array **or** a
scipy sparse matrix (CSR/CSC): reduction extracts columns without ever
densifying the full matrix, and the reduced solve densifies only the
kept-column block ``R*``.

Four strategies (ablated against each other in the benchmarks):

``"threshold"`` (default)
    keep the columns whose estimated variance exceeds an explicit cutoff
    derived from measurement physics: a link whose loss rate sits at the
    congestion threshold ``t_l``, sampled with ``S`` probes per snapshot,
    has log-rate variance of roughly ``t_l / S`` (times a small
    burstiness factor); anything safely above that is congested, anything
    below is noise.  The operator knows both ``t_l`` and ``S``, so unlike
    the gap search this cutoff cannot be fooled by a smooth variance
    spectrum.  :class:`repro.core.lia.LossInferenceAlgorithm` computes
    the cutoff as ``cutoff_scale * t_l / S``.
``"gap"``
    implements the abstract's description — "remove the un-congested
    links with small variances" — literally: split the variance spectrum
    at its largest multiplicative gap (congested variances sit orders of
    magnitude above good ones under Assumption S.3), keep only the
    high side, then drop any linearly dependent stragglers.  Keeping few
    columns concentrates the removed links' (tiny) true losses onto few
    unknowns, which is what makes the paper's near-zero false-positive
    rates and ~1e-3 median absolute errors reachable.
``"paper"``
    the literal loop of the Section 5.3 algorithm box — repeatedly drop
    the currently smallest-variance column until full column rank.  The
    columns kept after ``t`` drops are exactly the length-``(n_c - t)``
    prefix of the *descending* variance order, and a prefix is
    independent iff an incremental Gram–Schmidt scan accepts every one of
    its columns; the first rejected column therefore marks the exact
    stopping point of the literal loop.  One sweep, no per-probe SVDs.
``"greedy"``
    scan columns from highest variance down and keep each column that is
    linearly independent of those kept so far (incremental
    Gram–Schmidt).  This keeps a *maximal* independent set — never fewer
    columns than the paper loop — at O(n_p n_c^2) total cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import linalg as scipy_linalg
from scipy import sparse

from repro.core.linalg import (
    IncrementalColumnBasis,
    _column_accessor,
    greedy_independent_columns,
)

REDUCTION_STRATEGIES = ("threshold", "gap", "paper", "greedy")


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of the full-rank column reduction."""

    kept_columns: np.ndarray  # sorted column indices kept in R*
    removed_columns: np.ndarray  # sorted column indices removed
    strategy: str

    @property
    def num_kept(self) -> int:
        return int(self.kept_columns.shape[0])

    @property
    def num_removed(self) -> int:
        return int(self.removed_columns.shape[0])

    def key(self) -> bytes:
        """Hashable identity of the kept-column set (factorization cache key)."""
        return self.kept_columns.tobytes()


def reduce_to_full_rank(
    routing_matrix,
    variances: np.ndarray,
    strategy: str = "threshold",
    variance_cutoff: Optional[float] = None,
) -> ReductionResult:
    """Select the columns of ``R*`` given per-column variances.

    *routing_matrix* may be dense or scipy sparse.  *variance_cutoff* is
    required by (and only used with) the ``"threshold"`` strategy.
    """
    if sparse.issparse(routing_matrix):
        R = routing_matrix
        num_cols = R.shape[1]
    else:
        R = np.asarray(routing_matrix, dtype=np.float64)
        if R.ndim != 2:
            raise ValueError("routing matrix must be two-dimensional")
        num_cols = R.shape[1]
    v = np.asarray(variances, dtype=np.float64)
    if v.shape != (num_cols,):
        raise ValueError(
            f"need one variance per column: {v.shape} vs {num_cols} columns"
        )
    if strategy not in REDUCTION_STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}, want one of {REDUCTION_STRATEGIES}"
        )
    # Increasing variance; ties broken by column index for determinism.
    ascending = np.lexsort((np.arange(len(v)), v))

    if strategy == "greedy":
        priority = ascending[::-1]
        kept = greedy_independent_columns(R, priority)
    elif strategy == "gap":
        kept = _gap_reduction(R, v, ascending)
    elif strategy == "threshold":
        if variance_cutoff is None or variance_cutoff <= 0:
            raise ValueError(
                "the 'threshold' strategy needs a positive variance_cutoff"
            )
        kept = _threshold_reduction(R, v, ascending, variance_cutoff)
    else:
        kept = _paper_reduction(R, ascending)

    kept_arr = np.array(sorted(int(c) for c in kept), dtype=np.int64)
    removed_arr = np.setdiff1d(np.arange(num_cols, dtype=np.int64), kept_arr)
    return ReductionResult(
        kept_columns=kept_arr, removed_columns=removed_arr, strategy=strategy
    )


def _threshold_reduction(
    R,
    v: np.ndarray,
    ascending: np.ndarray,
    variance_cutoff: float,
) -> np.ndarray:
    """Keep (independent) columns whose variance clears the physics cutoff.

    Candidates are scanned in decreasing variance order; columns that are
    linearly dependent on higher-variance candidates are dropped (the
    rare congested-family case of Figure 7).  An empty candidate set is
    legitimate: no link shows congestion-level variance, so every loss
    rate is approximated by zero.
    """
    descending = ascending[::-1]
    candidates = [int(c) for c in descending if v[c] > variance_cutoff]
    kept = greedy_independent_columns(R, candidates)
    return np.asarray(kept, dtype=np.int64)


#: Variances below ``GAP_NOISE_FLOOR_RATIO * max(v)`` are clamped before
#: the gap search: estimated good-link variances scatter over many orders
#: of magnitude down to ~0, and without the clamp a stray 1e-15 estimate
#: manufactures the largest log-gap at the *bottom* of the spectrum,
#: keeping nearly every column.
GAP_NOISE_FLOOR_RATIO = 1e-3


def _gap_reduction(R, v: np.ndarray, ascending: np.ndarray) -> np.ndarray:
    """Keep the columns above the largest multiplicative variance gap.

    Under Assumption S.3 congested-link variances sit far above good-link
    variances, so the sorted positive spectrum (clamped at a relative
    noise floor) shows one dominant gap at the class boundary; we keep
    everything above it.  Dependent columns within the kept set
    (congested links that form a linearly dependent family — rare, cf.
    Figure 7) are dropped from the low-variance end.  Falls back to the
    paper loop when the spectrum is too degenerate to show a gap.
    """
    descending = ascending[::-1]
    positive = descending[v[descending] > 0]
    if len(positive) < 2:
        # Fewer than two positive variances defeats the gap search.
        return _paper_reduction(R, ascending)
    floor = v[positive[0]] * GAP_NOISE_FLOOR_RATIO
    sorted_pos = np.maximum(v[positive], floor)
    ratios = np.log(sorted_pos[:-1]) - np.log(sorted_pos[1:])
    split = int(np.argmax(ratios))
    if ratios[split] <= 0.0:
        # Flat spectrum (everything at the floor): no class boundary.
        return _paper_reduction(R, ascending)
    candidates = positive[: split + 1]
    kept = greedy_independent_columns(R, [int(c) for c in candidates])
    return np.asarray(kept, dtype=np.int64)


def _paper_reduction(R, ascending: np.ndarray) -> np.ndarray:
    """Exact result of the paper's drop-smallest loop, in one basis sweep.

    The loop's kept set after ``t`` drops is ``descending[:n_c - t]``, a
    prefix of the descending-variance order, and a superset of a
    dependent set is dependent — so the loop stops at the longest
    *independent* prefix.  Scanning descending with the incremental
    basis, every column is accepted exactly while the prefix stays
    independent; the first rejection marks the answer and ends the sweep
    early.  Replaces the seed's binary search over full SVD ranks.
    """
    m, _, column = _column_accessor(R)
    descending = ascending[::-1]
    basis = IncrementalColumnBasis(dimension=m)
    for position, col in enumerate(descending):
        if not basis.try_add(column(int(col))):
            return descending[:position]
    return descending


def solve_reduced_system(
    routing_matrix,
    path_log_rates: np.ndarray,
    reduction: ReductionResult,
    solver: str = "auto",
) -> np.ndarray:
    """Solve ``Y = R* X*`` and re-embed into full link coordinates.

    Returns the full-length vector of link log transmission rates with
    removed columns set to ``log 1 = 0`` (the paper's "approximate their
    loss rates by 0").  Estimated log rates are clipped to ``<= 0``:
    transmission rates cannot exceed 1.

    *routing_matrix* may be dense or scipy sparse; only the kept-column
    block ``R*`` is densified.  Solvers: ``"auto"`` (default) uses the
    rank-revealing QR driver (LAPACK ``gelsy``) and falls back to the
    minimum-norm ``lstsq`` if the kept set is numerically rank deficient
    (it is full rank by construction for every built-in reduction
    strategy, where the two solutions coincide); ``"lstsq"`` is the
    seed's SVD-based path; ``"qr"`` is the paper's Householder
    reference.  Callers solving *many* right-hand sides against one kept
    set should go through :class:`repro.core.engine.InferenceEngine`,
    which caches the ``R*`` factorization outright.
    """
    is_sparse = sparse.issparse(routing_matrix)
    if is_sparse:
        R = routing_matrix
    else:
        R = np.asarray(routing_matrix, dtype=np.float64)
    y = np.asarray(path_log_rates, dtype=np.float64)
    if y.shape != (R.shape[0],):
        raise ValueError("one log rate per path required")
    kept = reduction.kept_columns
    x_full = np.zeros(R.shape[1], dtype=np.float64)
    if len(kept) == 0:
        return x_full
    if is_sparse:
        R_star = np.asarray(R.tocsc()[:, kept].todense(), dtype=np.float64)
    else:
        R_star = R[:, kept]
    if solver == "auto":
        x_star, _, rank, _ = scipy_linalg.lstsq(
            R_star, y, lapack_driver="gelsy", check_finite=False
        )
        if rank < len(kept):
            # gelsy returns a basic solution on rank deficiency; match
            # the seed's minimum-norm behaviour instead.
            x_star, *_ = np.linalg.lstsq(R_star, y, rcond=None)
    elif solver == "lstsq":
        x_star, *_ = np.linalg.lstsq(R_star, y, rcond=None)
    elif solver == "qr":
        from repro.core.linalg import solve_least_squares_qr

        if R_star.shape[0] < R_star.shape[1]:
            raise ValueError("reduced system is underdetermined")
        x_star = solve_least_squares_qr(R_star, y)
    else:
        raise ValueError(f"unknown solver {solver!r}")
    x_full[kept] = np.minimum(x_star, 0.0)
    return x_full
