"""The numba kernel tier: ``@njit``-compiled inner loops.

Importing this module requires :mod:`numba` (``pip install repro[fast]``);
the registry only loads it after :func:`repro.core.kernels.numba_available`
says it can.  All kernels are compiled with ``cache=True`` so the JIT
cost is paid once per machine, not once per process.

Correctness contract (pinned by ``tests/test_kernels.py``):

* ``gram_matvec`` is the one kernel on an experiment-reachable numeric
  path (the ``"cg"`` phase-1 solver): it fuses the ``y = A x``,
  ``z = A^T y``, ``z + ridge x`` chain into one pass, accumulating each
  CSR row sequentially exactly like ``scipy.sparse``'s C matvec — the
  CG iterates, and therefore the returned solution, match the numpy
  tier bit for bit.
* ``back_substitution``, ``givens_downdate``, ``cgs2_project`` and
  ``householder_panel`` agree with the numpy tier to machine precision
  (the numpy tier reaches those sums through BLAS, whose accumulation
  order differs from a sequential loop by rounding only).  Their
  experiment-visible consumers are either discrete decisions taken far
  from the tolerance boundary (basis acceptance, pivot handling) or off
  the default paths entirely (downdating is opt-in; the ``"qr"``
  ablation pins the numpy tier in ``solve_least_squares_qr``), so
  experiment payloads never depend on the rounding difference.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = [
    "TIER",
    "back_substitution",
    "cgs2_project",
    "givens_append_rows",
    "givens_downdate",
    "givens_insert_column",
    "gram_matvec",
    "householder_panel",
]

TIER = "numba"


@njit(cache=True)
def cgs2_project(storage, rank, v):
    """Two classical Gram–Schmidt passes of *v* against ``storage[:, :rank]``.

    Classical (not modified) GS: each pass computes every coefficient
    against the *incoming* vector before subtracting — the same
    projector ``v - B (B^T v)`` as the numpy tier, looped so no
    temporaries are allocated per offer.
    """
    n = v.shape[0]
    w = np.empty(rank, dtype=np.float64)
    for _ in range(2):
        for j in range(rank):
            acc = 0.0
            for i in range(n):
                acc += storage[i, j] * v[i]
            w[j] = acc
        for i in range(n):
            acc = 0.0
            for j in range(rank):
                acc += storage[i, j] * w[j]
            v[i] -= acc
    return v


@njit(cache=True)
def back_substitution(U, b, tol):
    """Zero-pivot-tolerant back-substitution; sequential sums like numpy's."""
    n = U.shape[0]
    x = np.zeros(n, dtype=np.float64)
    for k in range(n - 1, -1, -1):
        residual = b[k]
        for j in range(k + 1, n):
            residual -= U[k, j] * x[j]
        pivot = U[k, k]
        if abs(pivot) <= tol:
            x[k] = 0.0
        else:
            x[k] = residual / pivot
    return x


@njit(cache=True)
def givens_downdate(r, q, position):
    """Givens sweep restoring triangularity after a column deletion.

    Identical rotation coefficients and application order to the numpy
    tier (rows ``i, i+1`` of *r* from column ``i`` on; columns
    ``i, i+1`` of *q*), written as scalar updates.
    """
    k = q.shape[1]
    ncols = r.shape[1]
    m = q.shape[0]
    for i in range(position, k - 1):
        a = r[i, i]
        b = r[i + 1, i]
        h = np.hypot(a, b)
        if h == 0.0:
            continue
        c = a / h
        s = b / h
        for j in range(i, ncols):
            t0 = r[i, j]
            t1 = r[i + 1, j]
            r[i, j] = c * t0 + s * t1
            r[i + 1, j] = -s * t0 + c * t1
        for row in range(m):
            t0 = q[row, i]
            t1 = q[row, i + 1]
            q[row, i] = t0 * c + t1 * s
            q[row, i + 1] = -t0 * s + t1 * c


@njit(cache=True)
def givens_insert_column(r, q, position):
    """Bottom-up Givens sweep zeroing the inserted column's subdiagonal.

    Identical rotation coefficients and application order to the numpy
    tier (rows ``i, i+1`` of *r* from column ``position`` on; columns
    ``i, i+1`` of *q*), written as scalar updates.
    """
    k = r.shape[0]
    m = q.shape[0]
    for i in range(k - 2, position - 1, -1):
        a = r[i, position]
        b = r[i + 1, position]
        h = np.hypot(a, b)
        if h == 0.0:
            continue
        c = a / h
        s = b / h
        for j in range(position, k):
            t0 = r[i, j]
            t1 = r[i + 1, j]
            r[i, j] = c * t0 + s * t1
            r[i + 1, j] = -s * t0 + c * t1
        for row in range(m):
            t0 = q[row, i]
            t1 = q[row, i + 1]
            q[row, i] = t0 * c + t1 * s
            q[row, i + 1] = -t0 * s + t1 * c


@njit(cache=True)
def givens_append_rows(r, rows, q):
    """Row-append Givens sweep; same rotations as the numpy tier, looped."""
    k = r.shape[1]
    t = rows.shape[0]
    m = q.shape[0]
    for jrow in range(t):
        for i in range(k):
            a = r[i, i]
            b = rows[jrow, i]
            if b == 0.0:
                continue
            h = np.hypot(a, b)
            c = a / h
            s = b / h
            for j in range(i, k):
                t0 = r[i, j]
                t1 = rows[jrow, j]
                r[i, j] = c * t0 + s * t1
                rows[jrow, j] = -s * t0 + c * t1
            col = k + jrow
            for row in range(m):
                t0 = q[row, i]
                t1 = q[row, col]
                q[row, i] = c * t0 + s * t1
                q[row, col] = -s * t0 + c * t1


@njit(cache=True)
def householder_panel(A, V, betas, k0, k1):
    """Panel factorization + compact-WY ``T`` accumulation, fully looped."""
    m = A.shape[0]
    for k in range(k0, k1):
        norm_sq = 0.0
        for i in range(k, m):
            norm_sq += A[i, k] * A[i, k]
        norm_x = np.sqrt(norm_sq)
        if norm_x == 0.0:
            for i in range(k, m):
                V[i, k] = 0.0
            betas[k] = 0.0
            continue
        x0 = A[k, k]
        for i in range(k, m):
            V[i, k] = A[i, k]
        if x0 != 0.0:
            V[k, k] += np.sign(x0) * norm_x
        else:
            V[k, k] += norm_x
        vnorm_sq = 0.0
        for i in range(k, m):
            vnorm_sq += V[i, k] * V[i, k]
        vnorm = np.sqrt(vnorm_sq)
        for i in range(k, m):
            V[i, k] /= vnorm
        betas[k] = 2.0
        for j in range(k, k1):
            dot = 0.0
            for i in range(k, m):
                dot += V[i, k] * A[i, j]
            dot *= 2.0
            for i in range(k, m):
                A[i, j] -= V[i, k] * dot
    nb = k1 - k0
    T = np.zeros((nb, nb), dtype=np.float64)
    w = np.empty(nb, dtype=np.float64)
    for j in range(nb):
        beta = betas[k0 + j]
        if j > 0 and beta != 0.0:
            for ii in range(j):
                acc = 0.0
                for i in range(k0, m):
                    acc += V[i, k0 + ii] * V[i, k0 + j]
                w[ii] = acc
            for ii in range(j):
                acc = 0.0
                for jj in range(ii, j):  # T is upper triangular
                    acc += T[ii, jj] * w[jj]
                T[ii, j] = -beta * acc
        T[j, j] = beta
    return T


@njit(cache=True)
def gram_matvec(
    a_data, a_indices, a_indptr,
    at_data, at_indices, at_indptr,
    n_rows, x, ridge,
):
    """Fused ``A^T (A x) + ridge x`` over CSR ``A`` and CSR ``A^T``.

    Each row accumulates sequentially over its nonzeros — the exact
    summation order of ``scipy.sparse``'s C matvec — so the result is
    bit-identical to the numpy tier's two-product operator and the CG
    iterates it drives do not change across tiers.
    """
    n_cols = x.shape[0]
    y = np.empty(n_rows, dtype=np.float64)
    for i in range(n_rows):
        acc = 0.0
        for jj in range(a_indptr[i], a_indptr[i + 1]):
            acc += a_data[jj] * x[a_indices[jj]]
        y[i] = acc
    out = np.empty(n_cols, dtype=np.float64)
    for i in range(n_cols):
        acc = 0.0
        for jj in range(at_indptr[i], at_indptr[i + 1]):
            acc += at_data[jj] * y[at_indices[jj]]
        out[i] = acc + ridge * x[i]
    return out
