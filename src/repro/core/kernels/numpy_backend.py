"""The pure-numpy kernel tier: the implementations the modules shipped with.

Every function here is the inner loop extracted *verbatim* from
``core/linalg.py`` (PR 2's blocked kernels) — same operations in the
same order, so routing those modules through this backend changes no
result by a single bit.  This tier is always available and is the
arithmetic every experiment payload is pinned to.

``gram_matvec`` is ``None``: the numpy tier lets
:func:`repro.core.sparse_solvers.solve_normal_cg` apply the
normal-equation operator with scipy's own sparse matvecs, exactly as
PR 5 shipped it.  (The numba tier replaces that operator application
with one fused CSR kernel that performs the same sequential per-row
accumulations, so the CG iterates stay bit-identical — see
``numba_backend``.)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "TIER",
    "back_substitution",
    "cgs2_project",
    "givens_append_rows",
    "givens_downdate",
    "givens_insert_column",
    "gram_matvec",
    "householder_panel",
]

TIER = "numpy"


def cgs2_project(
    storage: np.ndarray, rank: int, v: np.ndarray
) -> np.ndarray:
    """Orthogonalise *v* (in place) against ``storage[:, :rank]``, twice.

    Two classical Gram–Schmidt passes, each two BLAS-2 products — the
    exact body of ``IncrementalColumnBasis.try_add``.
    """
    B = storage[:, :rank]
    v -= B @ (B.T @ v)
    v -= B @ (B.T @ v)  # second pass for numerical robustness
    return v


def back_substitution(
    U: np.ndarray, b: np.ndarray, tol: float
) -> np.ndarray:
    """Zero-pivot-tolerant back-substitution (the degenerate slow path).

    Only reached when a pivot of ``U`` underflows *tol* — the full-rank
    case dispatches to LAPACK ``trtrs`` before the kernel is consulted.
    """
    n = U.shape[0]
    x = np.zeros(n, dtype=np.float64)
    for k in range(n - 1, -1, -1):
        residual = b[k] - U[k, k + 1 :] @ x[k + 1 :]
        if abs(U[k, k]) <= tol:
            x[k] = 0.0
        else:
            x[k] = residual / U[k, k]
    return x


def givens_downdate(r: np.ndarray, q: np.ndarray, position: int) -> None:
    """Restore triangularity after deleting column *position* (in place).

    *r* is the upper-Hessenberg ``(k, k-1)`` array left by the column
    deletion and *q* the ``(m, k)`` orthonormal block; one Givens
    rotation per subdiagonal entry, applied to both.
    """
    k = q.shape[1]
    for i in range(position, k - 1):
        a, b = r[i, i], r[i + 1, i]
        h = np.hypot(a, b)
        if h == 0.0:
            continue
        c, s = a / h, b / h
        rot = np.array([[c, s], [-s, c]])
        r[[i, i + 1], i:] = rot @ r[[i, i + 1], i:]
        q[:, [i, i + 1]] = q[:, [i, i + 1]] @ rot.T


def givens_insert_column(r: np.ndarray, q: np.ndarray, position: int) -> None:
    """Restore triangularity after inserting a column at *position* (in place).

    *r* is the ``(k, k)`` array whose column ``position`` still carries
    entries down to the last row (the CGS2 coefficients of the inserted
    column plus the residual norm in row ``k-1``) while every other
    column is already upper triangular for its final index; *q* is the
    ``(m, k)`` orthonormal block whose last column is the normalised
    residual.  One Givens rotation per subdiagonal entry, swept
    bottom-up, rolls the inserted column's mass onto its diagonal.
    """
    k = r.shape[0]
    for i in range(k - 2, position - 1, -1):
        a, b = r[i, position], r[i + 1, position]
        h = np.hypot(a, b)
        if h == 0.0:
            continue
        c, s = a / h, b / h
        rot = np.array([[c, s], [-s, c]])
        r[[i, i + 1], position:] = rot @ r[[i, i + 1], position:]
        q[:, [i, i + 1]] = q[:, [i, i + 1]] @ rot.T


def givens_append_rows(r: np.ndarray, rows: np.ndarray, q: np.ndarray) -> None:
    """Fold appended matrix rows into a triangular ``R`` (in place).

    *r* is the ``(k, k)`` upper-triangular factor, *rows* the ``(t, k)``
    block of new matrix rows, and *q* the ``(m + t, k + t)`` orthonormal
    block whose last ``t`` columns are the unit vectors of the new rows.
    Each new row is eliminated left to right against the diagonal of
    ``R``; the rotation mixing ``r[i]`` with ``rows[j]`` acts on ``q``
    columns ``i`` and ``k + j``.  After the sweep ``q[:, :k]`` spans the
    extended matrix and *rows* is numerically zero.
    """
    k = r.shape[1]
    for j in range(rows.shape[0]):
        for i in range(k):
            a, b = r[i, i], rows[j, i]
            if b == 0.0:
                continue
            h = np.hypot(a, b)
            c, s = a / h, b / h
            upper = r[i, i:].copy()
            r[i, i:] = c * upper + s * rows[j, i:]
            rows[j, i:] = -s * upper + c * rows[j, i:]
            qi = q[:, i].copy()
            qj = q[:, k + j]
            q[:, i] = c * qi + s * qj
            q[:, k + j] = -s * qi + c * qj


def householder_panel(
    A: np.ndarray,
    V: np.ndarray,
    betas: np.ndarray,
    k0: int,
    k1: int,
) -> np.ndarray:
    """Factorize panel columns ``[k0, k1)`` of *A* in place; return ``T``.

    One Householder reflector per column (written into ``V``/``betas``)
    applied to the remaining panel columns, then the forward
    accumulation of the compact-WY ``T`` with
    ``H_{k0} ... H_{k1-1} = I - Vp T Vp^T``.
    """
    for k in range(k0, k1):
        x = A[k:, k]
        norm_x = np.linalg.norm(x)
        if norm_x == 0.0:
            V[k:, k] = 0.0
            betas[k] = 0.0
            continue
        v = x.copy()
        v[0] += np.sign(x[0]) * norm_x if x[0] != 0 else norm_x
        v /= np.linalg.norm(v)
        beta = 2.0
        V[k:, k] = v
        betas[k] = beta
        A[k:, k:k1] -= beta * np.outer(v, v @ A[k:, k:k1])
    nb = k1 - k0
    Vp = V[k0:, k0:k1]
    T = np.zeros((nb, nb), dtype=np.float64)
    for j in range(nb):
        beta = betas[k0 + j]
        if j and beta:
            T[:j, j] = -beta * (T[:j, :j] @ (Vp[:, :j].T @ Vp[:, j]))
        T[j, j] = beta
    return T


#: The numpy tier has no fused normal-equation matvec; the CG solver
#: applies ``A^T (A x) + ridge x`` with scipy sparse products.
gram_matvec: Optional[object] = None
