"""Kernel tiers: compiled (numba) vs pure-numpy inner loops.

PRs 2 and 5 rebuilt LIA's hot linear algebra around blocked numpy, but
four inner loops still run in the interpreter when their fast BLAS path
does not apply: the CGS2 two-matvec basis offer (every phase-2
reduction), the zero-pivot-tolerant back-substitution, the Givens
column-removal downdate, and the Householder panel factorization.  The
Jacobi-preconditioned CG solve likewise pays scipy callback overhead on
every ``A^T A x`` operator application.  At campaign scale — thousands
of small trees per grid point — that per-iteration Python overhead, not
FLOPs, dominates.

This package puts those loops behind a *kernel registry* with two
interchangeable tiers:

``"numpy"``
    the exact implementations the modules shipped with — vectorised
    numpy plus the historical Python loops.  Always available; every
    experiment payload is pinned to this tier's arithmetic.
``"numba"``
    ``@njit(cache=True)``-compiled versions of the same loops.  Only
    registered when :mod:`numba` imports (``pip install repro[fast]``);
    the registry silently falls back to ``"numpy"`` otherwise.

Selection, in priority order:

1. an explicit :func:`set_kernel_tier` call (the CLI's global
   ``--kernel-tier`` flag routes here);
2. the ``REPRO_KERNEL_TIER`` environment variable
   (``numba``/``numpy``/``auto``); an env request for ``numba`` on a
   machine without it *warns and falls back* — ambient configuration
   must not break a base install;
3. ``auto``: the best available tier (``numba`` when importable).

The tier only ever swaps loop implementations whose *decisions* are
discrete (basis acceptance, pivot handling) or whose consumers sit off
the default experiment paths; all BLAS/LAPACK-bound solves are shared
between tiers, the fused CG matvec reproduces scipy's summation order
bit for bit, and the one continuous-output experiment consumer (the
``"qr"`` ablation's ``solve_least_squares_qr``) pins the numpy backend
by parameter — so experiment payloads stay seed-for-seed identical
regardless of tier (pinned in ``tests/test_kernels.py``).
"""

from __future__ import annotations

import contextlib
import importlib.util
import os
import threading
import warnings
from types import ModuleType
from typing import Iterator, Optional, Tuple

__all__ = [
    "ENV_VAR",
    "KERNEL_OPS",
    "KERNEL_TIERS",
    "KernelTierError",
    "available_tiers",
    "current_tier",
    "get_kernels",
    "numba_available",
    "set_kernel_tier",
    "use_kernel_tier",
]

#: Environment variable consulted when no tier was set explicitly.
ENV_VAR = "REPRO_KERNEL_TIER"

#: Every tier name the registry understands (``"auto"`` resolves to the
#: best entry of :func:`available_tiers`).
KERNEL_TIERS = ("auto", "numpy", "numba")

#: The operations every backend module must export.  ``gram_matvec``
#: may be ``None`` (the numpy tier applies ``A^T (A x) + ridge x`` with
#: scipy's own sparse matvecs instead of one fused kernel).
KERNEL_OPS = (
    "cgs2_project",
    "back_substitution",
    "givens_downdate",
    "givens_insert_column",
    "givens_append_rows",
    "householder_panel",
    "gram_matvec",
)


class KernelTierError(RuntimeError):
    """An explicitly requested kernel tier cannot be provided."""


def numba_available() -> bool:
    """Whether the numba tier could be activated (without importing it)."""
    return importlib.util.find_spec("numba") is not None


def available_tiers() -> Tuple[str, ...]:
    """Concrete tiers on this machine, best first."""
    if numba_available():
        return ("numba", "numpy")
    return ("numpy",)


#: Guards the tier-selection globals below: the ``thread`` execution
#: backend shares this process, so a tier switch racing a lazy backend
#: load must never hand out a module from the wrong tier.
_TIER_LOCK = threading.RLock()
#: The explicitly selected tier (None -> resolve from the environment).
_selected: Optional[str] = None
#: The active backend module, loaded lazily on first kernel use.
_active: Optional[ModuleType] = None
_active_tier: Optional[str] = None


def _resolve_from_environment() -> str:
    value = os.environ.get(ENV_VAR, "auto").strip().lower() or "auto"
    if value not in KERNEL_TIERS:
        raise KernelTierError(
            f"{ENV_VAR}={value!r} is not a kernel tier; "
            f"choose one of {', '.join(KERNEL_TIERS)}"
        )
    if value == "numba" and not numba_available():
        warnings.warn(
            f"{ENV_VAR}=numba but numba is not installed "
            "(pip install repro[fast]); falling back to the numpy tier",
            RuntimeWarning,
            stacklevel=3,
        )
        return "numpy"
    if value == "auto":
        return available_tiers()[0]
    return value


def _load_backend(tier: str) -> ModuleType:
    if tier == "numba":
        from repro.core.kernels import numba_backend

        return numba_backend
    from repro.core.kernels import numpy_backend

    return numpy_backend


def current_tier() -> str:
    """The tier :func:`get_kernels` would hand out right now."""
    if _selected is not None:
        return _selected
    return _resolve_from_environment()


def set_kernel_tier(tier: Optional[str]) -> str:
    """Select a tier explicitly; returns the concrete tier activated.

    ``"auto"`` (or ``None``) re-enables environment/best-available
    resolution.  Unlike the environment variable, explicitly requesting
    ``"numba"`` on a machine without numba *raises*
    :class:`KernelTierError`: a typed-out flag deserves a loud failure,
    not a silent fallback.
    """
    global _selected, _active, _active_tier
    if tier is None:
        tier = "auto"
    tier = tier.strip().lower()
    if tier not in KERNEL_TIERS:
        raise KernelTierError(
            f"unknown kernel tier {tier!r}; choose one of "
            f"{', '.join(KERNEL_TIERS)}"
        )
    if tier == "numba" and not numba_available():
        raise KernelTierError(
            "kernel tier 'numba' requested but numba is not installed; "
            "pip install repro[fast] or use --kernel-tier numpy"
        )
    with _TIER_LOCK:
        _selected = None if tier == "auto" else tier
        _active = None
        _active_tier = None
    return current_tier() if tier == "auto" else tier


def get_kernels() -> ModuleType:
    """The active backend module (loaded and memoized on first use)."""
    global _active, _active_tier
    with _TIER_LOCK:
        tier = current_tier()
        if _active is None or _active_tier != tier:
            _active = _load_backend(tier)
            _active_tier = tier
        return _active


@contextlib.contextmanager
def use_kernel_tier(tier: str) -> Iterator[str]:
    """Context manager pinning a tier for a ``with`` block (tests, benches)."""
    global _selected, _active, _active_tier
    with _TIER_LOCK:
        saved = (_selected, _active, _active_tier)
    try:
        yield set_kernel_tier(tier)
    finally:
        with _TIER_LOCK:
            _selected, _active, _active_tier = saved
