"""Sample moments of end-to-end measurements (eq. (7) of the paper).

Given ``m`` snapshots of log path transmission rates, the estimator needs
the sample covariance ``Sigma_hat[i, j]`` for every pair of paths that
shares at least one link (plus the variances on the diagonal).  The paper
drops equations whose sample covariance is negative — impossible under
the model, so pure sampling noise — and notes the system stays heavily
redundant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def sample_covariance_matrix(log_matrix: np.ndarray) -> np.ndarray:
    """Unbiased sample covariance of paths over snapshots.

    *log_matrix* has shape ``(m, n_p)`` (snapshots by paths); the result
    is ``(n_p, n_p)``.  Requires ``m >= 2``.
    """
    Y = np.asarray(log_matrix, dtype=np.float64)
    if Y.ndim != 2:
        raise ValueError("log_matrix must be (snapshots, paths)")
    m = Y.shape[0]
    if m < 2:
        raise ValueError(f"need at least two snapshots, got {m}")
    centered = Y - Y.mean(axis=0, keepdims=True)
    return (centered.T @ centered) / (m - 1)


def sample_covariance_pairs(
    log_matrix: np.ndarray,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    block_size: int = 262_144,
) -> np.ndarray:
    """Sample covariances for an explicit list of path pairs.

    Computes only the requested entries, in blocks, so campaigns with
    many paths never materialise the full ``n_p x n_p`` matrix.  Entry
    order matches the input pair arrays.
    """
    Y = np.asarray(log_matrix, dtype=np.float64)
    if Y.ndim != 2:
        raise ValueError("log_matrix must be (snapshots, paths)")
    m, n_paths = Y.shape
    if m < 2:
        raise ValueError(f"need at least two snapshots, got {m}")
    pair_i = np.asarray(pair_i, dtype=np.int64)
    pair_j = np.asarray(pair_j, dtype=np.int64)
    if pair_i.shape != pair_j.shape:
        raise ValueError("pair arrays must align")
    if len(pair_i) and (pair_i.min() < 0 or pair_j.max() >= n_paths):
        raise ValueError("pair index out of range")

    centered = Y - Y.mean(axis=0, keepdims=True)
    out = np.empty(len(pair_i), dtype=np.float64)
    for start in range(0, len(pair_i), block_size):
        stop = min(start + block_size, len(pair_i))
        bi = pair_i[start:stop]
        bj = pair_j[start:stop]
        out[start:stop] = np.einsum(
            "mk,mk->k", centered[:, bi], centered[:, bj]
        ) / (m - 1)
    return out


@dataclass(frozen=True)
class CovarianceSummary:
    """Diagnostics of one covariance estimation pass."""

    num_snapshots: int
    num_pairs: int
    num_negative: int

    @property
    def negative_fraction(self) -> float:
        if self.num_pairs == 0:
            return 0.0
        return self.num_negative / self.num_pairs


def negative_pair_mask(covariances: np.ndarray) -> np.ndarray:
    """True where the sampled covariance is negative (to be dropped)."""
    return np.asarray(covariances, dtype=np.float64) < 0.0
