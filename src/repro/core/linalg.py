"""Dense linear-algebra kernels used by LIA.

The paper solves its linear systems "using Householder reflection to
compute an orthogonal-triangular factorization" (Golub & Van Loan).  We
implement that QR least-squares path explicitly — it is the reference
solver for both phases — plus the incremental Gram–Schmidt column
selector used by the fast full-rank reduction strategy.  Everything is
cross-checked against numpy/scipy in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


def householder_qr(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Compact Householder QR: returns ``(Q, R)`` with ``Q`` m x n, ``R`` n x n.

    Classic Golub & Van Loan algorithm 5.2.1, vectorised per reflection.
    Requires ``m >= n``.
    """
    A = np.array(matrix, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    m, n = A.shape
    if m < n:
        raise ValueError(f"householder_qr requires m >= n, got {m} x {n}")
    vs: List[np.ndarray] = []
    for k in range(n):
        x = A[k:, k].copy()
        norm_x = np.linalg.norm(x)
        if norm_x == 0.0:
            # Degenerate column: no reflection needed.  A zero vector makes
            # the rank-2 update a no-op in both application loops.
            vs.append(np.zeros_like(x))
            continue
        v = x.copy()
        v[0] += np.sign(x[0]) * norm_x if x[0] != 0 else norm_x
        v /= np.linalg.norm(v)
        vs.append(v)
        A[k:, k:] -= 2.0 * np.outer(v, v @ A[k:, k:])
    R = np.triu(A[:n, :])

    # Accumulate thin Q by applying reflections to the identity block.
    Q = np.zeros((m, n), dtype=np.float64)
    Q[:n, :n] = np.eye(n)
    for k in range(n - 1, -1, -1):
        v = vs[k]
        Q[k:, :] -= 2.0 * np.outer(v, v @ Q[k:, :])
    return Q, R


def back_substitution(upper: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``U x = b`` for upper-triangular ``U`` (zero diag -> 0 entry).

    Zero pivots get a zero solution component instead of raising: LIA's
    phase-1 matrix is full rank by Theorem 1, but sampled systems can be
    numerically deficient and a minimum-norm-flavoured fallback keeps the
    estimator total.
    """
    U = np.asarray(upper, dtype=np.float64)
    b = np.asarray(rhs, dtype=np.float64)
    n = U.shape[0]
    if U.shape != (n, n):
        raise ValueError("upper must be square")
    if b.shape[0] != n:
        raise ValueError("rhs length mismatch")
    x = np.zeros(n, dtype=np.float64)
    scale = np.max(np.abs(U)) if n else 0.0
    tol = max(scale, 1.0) * n * np.finfo(np.float64).eps
    for k in range(n - 1, -1, -1):
        residual = b[k] - U[k, k + 1 :] @ x[k + 1 :]
        if abs(U[k, k]) <= tol:
            x[k] = 0.0
        else:
            x[k] = residual / U[k, k]
    return x


def solve_least_squares_qr(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Least-squares solution of ``matrix @ x ~= rhs`` via Householder QR.

    The paper's phase-1/phase-2 solver (O(n_p^2 n_c^2 - n_c^3 / 3) there;
    same complexity class here).
    """
    A = np.asarray(matrix, dtype=np.float64)
    b = np.asarray(rhs, dtype=np.float64)
    if A.shape[0] != b.shape[0]:
        raise ValueError("matrix and rhs row counts differ")
    Q, R = householder_qr(A)
    return back_substitution(R, Q.T @ b)


def qr_column_rank(matrix: np.ndarray, rel_tol: float = 1e-9) -> int:
    """Numerical column rank via incremental Gram–Schmidt.

    Unpivoted QR is not rank revealing (a dependent column can still leave
    a non-negligible diagonal entry further right), so we count columns
    that enlarge the span instead — the same primitive the phase-2
    reduction uses.
    """
    A = np.asarray(matrix, dtype=np.float64)
    basis = IncrementalColumnBasis(dimension=A.shape[0], rel_tol=rel_tol)
    for col in range(A.shape[1]):
        basis.try_add(A[:, col])
    return basis.rank


@dataclass
class IncrementalColumnBasis:
    """Grow an orthonormal basis one column at a time (modified Gram–Schmidt).

    Used by the greedy full-rank reduction: columns are offered in
    decreasing variance order and accepted when linearly independent of
    the columns accepted so far.
    """

    dimension: int
    rel_tol: float = 1e-9

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        self._basis: List[np.ndarray] = []

    @property
    def rank(self) -> int:
        return len(self._basis)

    def try_add(self, column: np.ndarray) -> bool:
        """Add *column* if it enlarges the span; return whether it did."""
        v = np.asarray(column, dtype=np.float64).copy()
        if v.shape != (self.dimension,):
            raise ValueError(
                f"expected column of length {self.dimension}, got {v.shape}"
            )
        norm0 = np.linalg.norm(v)
        if norm0 == 0.0:
            return False
        for b in self._basis:
            v -= (b @ v) * b
        # Second MGS pass for numerical robustness.
        for b in self._basis:
            v -= (b @ v) * b
        norm1 = np.linalg.norm(v)
        if norm1 <= self.rel_tol * norm0:
            return False
        self._basis.append(v / norm1)
        return True


def greedy_independent_columns(
    matrix: np.ndarray,
    priority: Sequence[int],
    rel_tol: float = 1e-9,
) -> List[int]:
    """Maximal independent column subset scanned in *priority* order.

    Returns the accepted column indices in scan order.  The result spans
    the full column space of *matrix*: every rejected column is dependent
    on accepted ones.
    """
    A = np.asarray(matrix, dtype=np.float64)
    basis = IncrementalColumnBasis(dimension=A.shape[0], rel_tol=rel_tol)
    kept: List[int] = []
    for col in priority:
        if basis.try_add(A[:, col]):
            kept.append(int(col))
    return kept
