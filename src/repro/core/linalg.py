"""Dense linear-algebra kernels used by LIA.

The paper solves its linear systems "using Householder reflection to
compute an orthogonal-triangular factorization" (Golub & Van Loan).  We
implement that QR least-squares path explicitly — it is the reference
solver for both phases — plus the incremental Gram–Schmidt column
selector used by the fast full-rank reduction strategy.  Everything is
cross-checked against numpy/scipy in the test suite.

The kernels are *blocked*: the Householder QR aggregates panels of
reflections into compact-WY block reflectors (``P = I - V T V^T``) so the
trailing-matrix update and the thin-Q accumulation run as matrix-matrix
products, and the incremental basis stores its vectors in a preallocated
2-D array so each orthogonalisation is two ``B.T @ v`` / ``B @ w``
matvecs instead of a Python loop over basis vectors.  The pre-blocking
seed implementations are kept as ``*_reference`` functions: they are the
pinning oracles for the equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import linalg as scipy_linalg
from scipy import sparse
from scipy.linalg import lapack as scipy_lapack

from repro.core.kernels import get_kernels

#: Panel width of the blocked Householder QR.  32 keeps the T matrices
#: tiny while making the trailing update a genuine BLAS-3 operation.
DEFAULT_BLOCK_SIZE = 32

#: Residual-norm ratio below which :meth:`QRFactorization.add_column`
#: declares the offered column dependent and refuses the update.  Same
#: tolerance as the reduction's basis offers, so a column the greedy
#: sweep accepted is also updatable.
ADD_COLUMN_REL_TOL = 1e-9


def solve_upper_triangular(r: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``r x = b`` (upper triangular) straight through LAPACK ``trtrs``.

    Bit-identical to ``scipy.linalg.solve_triangular(r, b, lower=False)``
    while skipping ~10x of per-call wrapper overhead — the batched
    ``infer_many`` path issues one of these per tree, so the constant
    matters.  scipy avoids copying a C-contiguous matrix into Fortran
    order by solving the transposed system (``trtrs(r.T, b, lower=True,
    trans=True)``); mirroring that dispatch exactly is what makes the
    results identical to the last bit, not just to precision.
    """
    if r.flags.c_contiguous:
        x, info = scipy_lapack.dtrtrs(
            r.T, b, lower=1, trans=1, unitdiag=0, overwrite_b=0
        )
    else:
        x, info = scipy_lapack.dtrtrs(
            r, b, lower=0, trans=0, unitdiag=0, overwrite_b=0
        )
    if info > 0:
        raise scipy_linalg.LinAlgError(
            f"singular triangular system: zero diagonal entry {info}"
        )
    if info < 0:
        raise ValueError(f"illegal trtrs argument {-info}")
    return x


def householder_qr(
    matrix: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
    kernels=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compact blocked Householder QR: ``(Q, R)`` with ``Q`` m x n, ``R`` n x n.

    Golub & Van Loan algorithm 5.2.2 with the compact-WY representation:
    each panel of ``block_size`` reflections is aggregated into
    ``P = I - V T V^T`` and applied to the trailing matrix (and later to
    the identity block for thin ``Q``) as two matrix products.  Requires
    ``m >= n``.  Bit-for-bit this reorders the sums of the unblocked
    reference, but the factorization it returns is the same to machine
    precision (see ``householder_qr_reference`` and the equivalence
    tests).

    *kernels* pins a specific backend module for the panel loop (a
    payload-stability escape hatch for callers that must not follow the
    active tier); ``None`` dispatches to the registry's current tier.
    """
    A = np.array(matrix, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    m, n = A.shape
    if m < n:
        raise ValueError(f"householder_qr requires m >= n, got {m} x {n}")
    if block_size < 1:
        raise ValueError("block_size must be positive")

    V = np.zeros((m, n), dtype=np.float64)
    betas = np.zeros(n, dtype=np.float64)
    panels: List[Tuple[int, int, np.ndarray]] = []  # (k0, k1, T)

    kern = kernels if kernels is not None else get_kernels()
    for k0 in range(0, n, block_size):
        k1 = min(k0 + block_size, n)
        # Unblocked factorization of the panel columns plus forward
        # accumulation of T (H_{k0} ... H_{k1-1} = I - Vp T Vp^T) — the
        # per-column inner loop, dispatched to the active kernel tier.
        T = kern.householder_panel(A, V, betas, k0, k1)
        panels.append((k0, k1, T))
        # Blocked trailing update:  A := P^T A = A - V T^T (V^T A).
        if k1 < n:
            Vp = V[k0:, k0:k1]
            W = Vp.T @ A[k0:, k1:]
            A[k0:, k1:] -= Vp @ (T.T @ W)

    R = np.triu(A[:n, :])

    # Thin Q = P_0 P_1 ... P_last applied to the identity block, so the
    # panels are applied in reverse order:  Q := Q - V T (V^T Q).
    Q = np.zeros((m, n), dtype=np.float64)
    Q[:n, :n] = np.eye(n)
    for k0, k1, T in reversed(panels):
        Vp = V[k0:, k0:k1]
        Q[k0:, :] -= Vp @ (T @ (Vp.T @ Q[k0:, :]))
    return Q, R


def householder_qr_reference(
    matrix: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """The seed (unblocked, one reflection per column) Householder QR.

    Kept verbatim as the pinning oracle for the blocked kernel; do not
    use on hot paths.
    """
    A = np.array(matrix, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    m, n = A.shape
    if m < n:
        raise ValueError(f"householder_qr requires m >= n, got {m} x {n}")
    vs: List[np.ndarray] = []
    for k in range(n):
        x = A[k:, k].copy()
        norm_x = np.linalg.norm(x)
        if norm_x == 0.0:
            vs.append(np.zeros_like(x))
            continue
        v = x.copy()
        v[0] += np.sign(x[0]) * norm_x if x[0] != 0 else norm_x
        v /= np.linalg.norm(v)
        vs.append(v)
        A[k:, k:] -= 2.0 * np.outer(v, v @ A[k:, k:])
    R = np.triu(A[:n, :])
    Q = np.zeros((m, n), dtype=np.float64)
    Q[:n, :n] = np.eye(n)
    for k in range(n - 1, -1, -1):
        v = vs[k]
        Q[k:, :] -= 2.0 * np.outer(v, v @ Q[k:, :])
    return Q, R


def back_substitution(
    upper: np.ndarray, rhs: np.ndarray, kernels=None
) -> np.ndarray:
    """Solve ``U x = b`` for upper-triangular ``U`` (zero diag -> 0 entry).

    Zero pivots get a zero solution component instead of raising: LIA's
    phase-1 matrix is full rank by Theorem 1, but sampled systems can be
    numerically deficient and a minimum-norm-flavoured fallback keeps the
    estimator total.  The non-degenerate case dispatches to LAPACK
    ``trtrs``; the elimination loop only runs when a pivot actually
    underflows the tolerance.
    """
    U = np.asarray(upper, dtype=np.float64)
    b = np.asarray(rhs, dtype=np.float64)
    n = U.shape[0]
    if U.shape != (n, n):
        raise ValueError("upper must be square")
    if b.shape[0] != n:
        raise ValueError("rhs length mismatch")
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    scale = np.max(np.abs(U))
    tol = max(scale, 1.0) * n * np.finfo(np.float64).eps
    if np.min(np.abs(np.diag(U))) > tol:
        return scipy_linalg.solve_triangular(U, b, lower=False, check_finite=False)
    kern = kernels if kernels is not None else get_kernels()
    return kern.back_substitution(
        np.ascontiguousarray(U), np.ascontiguousarray(b), tol
    )


def solve_least_squares_qr(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Least-squares solution of ``matrix @ x ~= rhs`` via Householder QR.

    The paper's phase-1/phase-2 solver (O(n_p^2 n_c^2 - n_c^3 / 3) there;
    same complexity class here, now with the blocked kernel).

    This is the one kernel consumer whose continuous output lands in an
    experiment payload (the ``"qr"`` phase-1 ablation), so it pins the
    numpy backend explicitly: the compiled panel agrees with the numpy
    one only to machine precision, and payloads must be seed-for-seed
    identical regardless of tier.  (A parameter pin, not a registry
    switch, so concurrent solves on other threads keep their tier.)
    The compiled panel is exercised through :func:`householder_qr`
    directly (factorize(method="householder"), the kernel benchmarks).
    """
    from repro.core.kernels import numpy_backend

    A = np.asarray(matrix, dtype=np.float64)
    b = np.asarray(rhs, dtype=np.float64)
    if A.shape[0] != b.shape[0]:
        raise ValueError("matrix and rhs row counts differ")
    Q, R = householder_qr(A, kernels=numpy_backend)
    return back_substitution(R, Q.T @ b, kernels=numpy_backend)


@dataclass(frozen=True)
class QRFactorization:
    """Thin QR of a (tall, full-column-rank) matrix, built for reuse.

    The inference engine solves ``R* x = y`` for many right-hand sides
    against the *same* kept-column set; holding ``Q`` and ``R`` makes
    each additional solve two triangular-cost operations instead of a
    fresh factorization.  ``columns`` records which source columns the
    factorization covers (the engine's cache key).

    ``remove_column`` returns the factorization of the same matrix with
    one column deleted, restored to triangular form with Givens
    rotations — an O(m k) downdate versus an O(m k^2) refactorization.
    ``add_column`` and ``append_rows`` are the matching *updates*: a
    CGS2 column offer plus a Givens sweep, and a Givens row fold-in,
    each O(m k) against the O(m k^2) fresh QR they replace.
    """

    q: np.ndarray  # (m, k), orthonormal columns
    r: np.ndarray  # (k, k), upper triangular
    columns: Tuple[int, ...]

    @classmethod
    def factorize(
        cls,
        matrix: np.ndarray,
        columns: Optional[Sequence[int]] = None,
        method: str = "lapack",
    ) -> "QRFactorization":
        """Factorize a dense (or sparse, densified) matrix.

        *method* ``"lapack"`` uses the economy LAPACK QR; ``"householder"``
        uses this module's blocked kernel (the paper's algorithm, kept for
        reference and cross-checking).
        """
        if sparse.issparse(matrix):
            matrix = matrix.toarray()
        A = np.asarray(matrix, dtype=np.float64)
        if A.ndim != 2:
            raise ValueError("matrix must be two-dimensional")
        if A.shape[0] < A.shape[1]:
            raise ValueError("QRFactorization requires m >= n")
        if columns is None:
            columns = range(A.shape[1])
        cols = tuple(int(c) for c in columns)
        if len(cols) != A.shape[1]:
            raise ValueError("one column label per matrix column required")
        if method == "lapack":
            q, r = scipy_linalg.qr(A, mode="economic", check_finite=False)
        elif method == "householder":
            q, r = householder_qr(A)
        else:
            raise ValueError(f"unknown method {method!r}")
        # LAPACK hands back Fortran-order arrays; the update/downdate
        # kernels want C-contiguous Q, and paying the layout copy once
        # here keeps it out of every incremental refresh.
        return cls(q=np.ascontiguousarray(q), r=np.triu(r), columns=cols)

    @property
    def num_rows(self) -> int:
        return int(self.q.shape[0])

    @property
    def num_columns(self) -> int:
        return int(self.r.shape[0])

    def is_full_rank(self, rel_tol: float = 1e-12) -> bool:
        """Whether every pivot clears a relative tolerance."""
        if self.num_columns == 0:
            return True
        diag = np.abs(np.diag(self.r))
        scale = max(float(np.max(np.abs(self.r))), 1.0)
        return bool(np.min(diag) > rel_tol * scale * self.num_columns)

    @cached_property
    def full_rank(self) -> bool:
        """:meth:`is_full_rank` at the default tolerance, computed once.

        The factorization is frozen, so the verdict never changes; the
        engine consults it on *every* solve, which made the four numpy
        reductions inside :meth:`is_full_rank` the single largest cost
        of a warm small-tree inference (~40% of ``infer_many``).
        """
        return self.is_full_rank()

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Least-squares solve for a 1-D rhs or a 2-D multi-RHS block.

        A 2-D *rhs* of shape ``(m, s)`` is solved in one pass — this is
        what makes ``infer_batch`` one factorization plus one triangular
        solve for a whole window of snapshots.
        """
        b = np.asarray(rhs, dtype=np.float64)
        if b.shape[0] != self.num_rows:
            raise ValueError("rhs row count does not match factorization")
        if self.num_columns == 0:
            shape = (0,) if b.ndim == 1 else (0, b.shape[1])
            return np.zeros(shape, dtype=np.float64)
        return solve_upper_triangular(self.r, self.q.T @ b)

    def remove_column(self, position: int) -> "QRFactorization":
        """Downdate: the factorization with column *position* deleted.

        Deleting column ``p`` of ``R`` leaves an upper-Hessenberg matrix;
        one Givens rotation per subdiagonal entry restores triangularity,
        and the same rotations applied to ``Q``'s columns keep ``Q R``
        equal to the reduced matrix.
        """
        k = self.num_columns
        if not 0 <= position < k:
            raise IndexError(f"no column {position} in a rank-{k} factorization")
        r = np.ascontiguousarray(np.delete(self.r, position, axis=1))
        # np.array (not ascontiguousarray) so q is always a fresh copy —
        # the kernel rotates it in place and must never touch self.q.
        q = np.array(self.q, dtype=np.float64, order="C")
        get_kernels().givens_downdate(r, q, position)
        remaining = self.columns[:position] + self.columns[position + 1 :]
        return QRFactorization(
            q=q[:, : k - 1], r=np.triu(r[: k - 1, :]), columns=remaining
        )

    def add_column(
        self,
        values: np.ndarray,
        column: int,
        position: Optional[int] = None,
    ) -> "QRFactorization":
        """Update: the factorization with a new column inserted.

        *values* is the new matrix column, *column* its label, and
        *position* where it lands in the column order (default: append
        last).  The column is orthogonalised against ``Q`` with the same
        CGS2 kernel the incremental basis uses, the normalised residual
        becomes the new basis vector, and — when the column is not
        appended last — a bottom-up Givens sweep restores triangularity:
        O(m k) total versus O(m k^2) for a fresh QR.

        Raises :class:`scipy.linalg.LinAlgError` when the offered column
        sits (numerically) inside the current column span — an update
        cannot represent a rank-deficient block, so the caller should
        refactorize instead.
        """
        k = self.num_columns
        m = self.num_rows
        a = np.array(values, dtype=np.float64)
        if a.shape != (m,):
            raise ValueError(f"expected a column of length {m}, got {a.shape}")
        if position is None:
            position = k
        if not 0 <= position <= k:
            raise IndexError(
                f"insert position {position} outside [0, {k}]"
            )
        norm0 = float(np.linalg.norm(a))
        v = a.copy()
        if k:
            v = get_kernels().cgs2_project(
                np.ascontiguousarray(self.q), k, v
            )
        rho = float(np.linalg.norm(v))
        if norm0 == 0.0 or rho <= ADD_COLUMN_REL_TOL * norm0:
            raise scipy_linalg.LinAlgError(
                "offered column is (numerically) dependent on the "
                "factorized columns; refactorize instead of updating"
            )
        q = np.empty((m, k + 1), dtype=np.float64)
        q[:, :k] = self.q
        q[:, k] = v / rho
        r = np.zeros((k + 1, k + 1), dtype=np.float64)
        r[:k, :position] = self.r[:, :position]
        r[:k, position + 1 :] = self.r[:, position:]
        # The exact combined coefficients of both CGS2 passes: the
        # projected-out component a - v lies in span(Q) by construction.
        if k:
            r[:k, position] = self.q.T @ (a - v)
        r[k, position] = rho
        if position < k:
            get_kernels().givens_insert_column(r, q, position)
        inserted = (
            self.columns[:position] + (int(column),) + self.columns[position:]
        )
        return QRFactorization(q=q, r=np.triu(r), columns=inserted)

    def append_rows(self, rows: np.ndarray) -> "QRFactorization":
        """Update: the factorization of the matrix with *rows* stacked below.

        Each new row is Givens-eliminated into ``R`` left to right —
        O(t k (m + k)) for *t* new rows versus a fresh O((m + t) k^2)
        QR.  The column set (and its labels) is unchanged; only the row
        space grows, e.g. when new probing paths join a deployment.
        """
        B = np.array(rows, dtype=np.float64, ndmin=2)
        k = self.num_columns
        m = self.num_rows
        if B.ndim != 2 or B.shape[1] != k:
            raise ValueError(
                f"expected rows of width {k}, got shape {B.shape}"
            )
        t = B.shape[0]
        if t == 0:
            return self
        r = np.array(self.r, dtype=np.float64, order="C")
        q = np.zeros((m + t, k + t), dtype=np.float64)
        q[:m, :k] = self.q
        for j in range(t):
            q[m + j, k + j] = 1.0
        get_kernels().givens_append_rows(r, np.ascontiguousarray(B), q)
        return QRFactorization(
            q=np.ascontiguousarray(q[:, :k]),
            r=np.triu(r),
            columns=self.columns,
        )


def _column_accessor(matrix) -> Tuple[int, int, Callable[[int], np.ndarray]]:
    """Shape plus a dense-column getter for a dense or sparse matrix."""
    if sparse.issparse(matrix):
        A = matrix.tocsc()
        m, n = A.shape

        def column(j: int) -> np.ndarray:
            out = np.zeros(m, dtype=np.float64)
            start, end = A.indptr[j], A.indptr[j + 1]
            out[A.indices[start:end]] = A.data[start:end]
            return out

        return m, n, column
    A = np.asarray(matrix, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    return A.shape[0], A.shape[1], lambda j: A[:, j]


def qr_column_rank(matrix, rel_tol: float = 1e-9) -> int:
    """Numerical column rank via the incremental basis (dense or sparse).

    Unpivoted QR is not rank revealing (a dependent column can still leave
    a non-negligible diagonal entry further right), so we count columns
    that enlarge the span instead — the same primitive the phase-2
    reduction uses.
    """
    m, n, column = _column_accessor(matrix)
    basis = IncrementalColumnBasis(dimension=m, rel_tol=rel_tol)
    for col in range(n):
        basis.try_add(column(col))
    return basis.rank


#: Initial column capacity of the preallocated basis storage.
_INITIAL_CAPACITY = 32


@dataclass
class IncrementalColumnBasis:
    """Grow an orthonormal basis one column at a time.

    Used by the greedy full-rank reduction: columns are offered in
    decreasing variance order and accepted when linearly independent of
    the columns accepted so far.

    The basis lives in a preallocated ``(dimension, capacity)`` array
    (capacity doubles on demand, capped at ``dimension``), so each offer
    orthogonalises with two classical Gram–Schmidt passes — four BLAS-2
    products total — instead of a Python loop over basis vectors.  Two
    passes make classical GS as robust as the seed's modified GS
    ("twice is enough"); the seed loop survives as
    :meth:`try_add_reference` for the equivalence tests.
    """

    dimension: int
    rel_tol: float = 1e-9

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        capacity = min(self.dimension, _INITIAL_CAPACITY)
        self._storage = np.empty((self.dimension, capacity), dtype=np.float64)
        self._rank = 0

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def basis_matrix(self) -> np.ndarray:
        """Read-only view of the accepted orthonormal columns."""
        view = self._storage[:, : self._rank]
        view.flags.writeable = False
        return view

    def _grow(self) -> None:
        if self._rank < self._storage.shape[1]:
            return
        capacity = min(self.dimension, max(2 * self._storage.shape[1], 1))
        storage = np.empty((self.dimension, capacity), dtype=np.float64)
        storage[:, : self._rank] = self._storage[:, : self._rank]
        self._storage = storage

    def _prepare(self, column: np.ndarray) -> Tuple[np.ndarray, float]:
        v = np.array(column, dtype=np.float64)
        if v.shape != (self.dimension,):
            raise ValueError(
                f"expected column of length {self.dimension}, got {v.shape}"
            )
        return v, float(np.linalg.norm(v))

    def _accept(self, v: np.ndarray, norm1: float) -> bool:
        self._grow()
        self._storage[:, self._rank] = v / norm1
        self._rank += 1
        return True

    def try_add(self, column: np.ndarray) -> bool:
        """Add *column* if it enlarges the span; return whether it did."""
        v, norm0 = self._prepare(column)
        if norm0 == 0.0:
            return False
        if self._rank:
            v = get_kernels().cgs2_project(self._storage, self._rank, v)
        norm1 = float(np.linalg.norm(v))
        if norm1 <= self.rel_tol * norm0:
            return False
        return self._accept(v, norm1)

    def try_add_reference(self, column: np.ndarray) -> bool:
        """The seed per-vector modified-Gram–Schmidt loop (pinning oracle)."""
        v, norm0 = self._prepare(column)
        if norm0 == 0.0:
            return False
        basis = [self._storage[:, j] for j in range(self._rank)]
        for b in basis:
            v -= (b @ v) * b
        for b in basis:
            v -= (b @ v) * b
        norm1 = float(np.linalg.norm(v))
        if norm1 <= self.rel_tol * norm0:
            return False
        return self._accept(v, norm1)


def greedy_independent_columns(
    matrix,
    priority: Sequence[int],
    rel_tol: float = 1e-9,
) -> List[int]:
    """Maximal independent column subset scanned in *priority* order.

    Accepts dense arrays and scipy sparse matrices (CSC/CSR) without
    densifying the whole matrix.  Returns the accepted column indices in
    scan order.  The result spans the full column space of *matrix*
    restricted to the scanned columns: every rejected column is dependent
    on accepted ones.
    """
    m, _, column = _column_accessor(matrix)
    basis = IncrementalColumnBasis(dimension=m, rel_tol=rel_tol)
    kept: List[int] = []
    for col in priority:
        if basis.try_add(column(int(col))):
            kept.append(int(col))
    return kept
