"""Sparse phase-1 solvers: 10k-link meshes without a dense ``A^T A``.

The phase-1 system ``Sigma_hat* = A v`` is solved once per network, and
``A`` is extremely sparse — each row marks the links two paths share —
but the historical ``"normal"``/``"wls"`` solvers assembled ``A^T A``
densely (``(A.T @ A).toarray()``), an ``n_c x n_c`` allocation that caps
the solvable mesh size around a few thousand virtual links (10k links
means an 800 MB Gram matrix before the factorization even starts).

This module keeps the whole pipeline sparse:

:func:`solve_normal_sparse`
    exact sparse normal equations — ``A^T A`` assembled as CSC, the same
    tiny Tikhonov ridge the dense path applies (Theorem 1 makes the Gram
    matrix nonsingular in exact arithmetic; the ridge guards numerically
    repeated columns), factorized with ``scipy.sparse.linalg.splu``
    (SuperLU; a sparse Cholesky in effect, since the matrix is SPD).
    Memory follows the factor fill-in, not ``n_c**2``.

:func:`solve_normal_cg`
    matrix-free conjugate gradients on the (ridge-guarded) normal
    equations with a Jacobi (inverse-diagonal) preconditioner.  ``A^T A``
    is never formed at all — each iteration applies ``A`` and ``A^T`` —
    so this is the path for systems where even the sparse Gram factor is
    too large.  A non-converged run finishes with LSMR on the original
    least-squares system rather than returning a half-iterated vector.

Both are reachable as first-class :data:`repro.core.variance.VARIANCE_METHODS`
entries (``"sparse"``, ``"cg"`` — the scalable analogues of ``"normal"``
and ``"lsmr"``) and automatically: :func:`use_sparse_normal` routes the
dense normal-equation methods (``"normal"``, and ``"wls"`` whose row
weighting is applied upstream of the solve) onto the sparse
factorization once the system is wider than
:data:`SPARSE_AUTO_THRESHOLD` columns.  Below the threshold the dense
path runs byte-for-byte as before, keeping every existing experiment
payload seed-for-seed identical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.core.kernels import get_kernels

__all__ = [
    "SPARSE_AUTO_THRESHOLD",
    "gram_ridge",
    "solve_normal_cg",
    "solve_normal_sparse",
    "use_sparse_normal",
]

#: Column count above which the dense normal-equation assembly
#: (``"wls"``/``"normal"``) re-routes to :func:`solve_normal_sparse`.
#: 4096 columns is comfortably above every topology the experiment
#: presets generate (the ``paper`` meshes stay in the low thousands of
#: virtual links) — so existing campaigns never change solver — while a
#: dense Gram matrix at this width (134 MB) is already a pointless
#: allocation when the sparse factorization is faster.
SPARSE_AUTO_THRESHOLD = 4096

#: The tiny-Tikhonov scale every normal-equation solver shares
#: (``ridge = RIDGE_SCALE * trace(A^T A) / n_c``).
RIDGE_SCALE = 1e-10


def _as_sparse(A) -> sparse.csr_matrix:
    if sparse.issparse(A):
        return A.tocsr().astype(np.float64)
    dense = np.asarray(A, dtype=np.float64)
    if dense.ndim != 2:
        raise ValueError("A must be two-dimensional")
    return sparse.csr_matrix(dense)


def gram_ridge(
    column_square_sums: np.ndarray, ridge_scale: float = RIDGE_SCALE
) -> float:
    """The shared tiny-Tikhonov value from the Gram diagonal.

    ``sum(column_square_sums)`` equals ``trace(A^T A)``, so this computes
    exactly the ridge the dense path derives from ``np.trace`` — the
    solvers agree to the last bit on the regularized system they solve.
    """
    n = column_square_sums.shape[0]
    return float(ridge_scale * column_square_sums.sum() / max(n, 1))


def solve_normal_sparse(
    A, b: np.ndarray, ridge_scale: float = RIDGE_SCALE
) -> np.ndarray:
    """Solve ``A^T A v = A^T b`` keeping the Gram matrix sparse.

    The CSC ``A^T A`` goes straight into a SuperLU factorization; no
    dense ``n_c x n_c`` array is ever materialized.  The ridge matches
    the dense solver's guard, so where both run they agree to solver
    precision (~1e-12 relative on well-conditioned meshes).
    """
    A = _as_sparse(A)
    b = np.asarray(b, dtype=np.float64)
    gram = (A.T @ A).tocsc()
    ridge = gram_ridge(gram.diagonal(), ridge_scale)
    if ridge > 0.0:
        gram = gram + ridge * sparse.identity(gram.shape[0], format="csc")
    lu = sparse_linalg.splu(gram.tocsc())
    return np.asarray(lu.solve(A.T @ b), dtype=np.float64)


def solve_normal_cg(
    A,
    b: np.ndarray,
    ridge_scale: float = RIDGE_SCALE,
    rtol: float = 1e-12,
    maxiter: Optional[int] = None,
) -> np.ndarray:
    """Jacobi-preconditioned CG on the normal equations, matrix-free.

    ``A^T A`` is applied as two sparse matvecs per iteration and the
    preconditioner is its inverse diagonal (the column square sums of
    ``A`` — one cheap pass over the nonzeros), so peak memory is a few
    vectors of length ``n_c`` on top of ``A`` itself.  If CG reports
    non-convergence within the iteration budget, the solve finishes with
    LSMR on the original least-squares system (same answer in exact
    arithmetic, more robust to the conditioning WLS weights introduce).
    """
    A = _as_sparse(A)
    b = np.asarray(b, dtype=np.float64)
    n = A.shape[1]
    col_sq = np.asarray(A.multiply(A).sum(axis=0), dtype=np.float64).ravel()
    ridge = gram_ridge(col_sq, ridge_scale)
    diag = col_sq + ridge
    # Columns with an empty support would zero the preconditioner; the
    # ridge keeps the operator itself nonsingular, so floor them there.
    inv_diag = 1.0 / np.maximum(diag, np.finfo(np.float64).tiny)

    At = A.T.tocsr()
    kernel = get_kernels().gram_matvec
    if kernel is not None:
        # Compiled tier: one fused pass over both CSR structures with
        # the same sequential per-row accumulation scipy's C matvec
        # performs, so the operator — and every CG iterate it drives —
        # is bit-identical to the scipy expression below.
        a_data, a_indices, a_indptr = A.data, A.indices, A.indptr
        at_data, at_indices, at_indptr = At.data, At.indices, At.indptr
        n_rows = A.shape[0]

        def gram_matvec(x: np.ndarray) -> np.ndarray:
            return kernel(
                a_data, a_indices, a_indptr,
                at_data, at_indices, at_indptr,
                n_rows, np.ascontiguousarray(x, dtype=np.float64), ridge,
            )

    else:

        def gram_matvec(x: np.ndarray) -> np.ndarray:
            return At @ (A @ x) + ridge * x

    operator = sparse_linalg.LinearOperator(
        (n, n), matvec=gram_matvec, dtype=np.float64
    )
    preconditioner = sparse_linalg.LinearOperator(
        (n, n), matvec=lambda x: inv_diag * x, dtype=np.float64
    )
    rhs = At @ b
    solution, info = sparse_linalg.cg(
        operator,
        rhs,
        rtol=rtol,
        atol=0.0,
        maxiter=maxiter if maxiter is not None else max(10 * n, 1000),
        M=preconditioner,
    )
    if info != 0:
        result = sparse_linalg.lsmr(
            A, b, atol=1e-13, btol=1e-13, conlim=1e14,
            maxiter=max(20 * n, 2000),
        )
        return np.asarray(result[0], dtype=np.float64)
    return np.asarray(solution, dtype=np.float64)


def use_sparse_normal(num_columns: int) -> bool:
    """Whether a normal-equation solve this wide should stay sparse.

    Reads :data:`SPARSE_AUTO_THRESHOLD` at call time so tests (and
    deployments with unusual memory budgets) can adjust the crossover by
    assigning the module attribute.
    """
    return num_columns > SPARSE_AUTO_THRESHOLD
