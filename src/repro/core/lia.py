"""The Loss Inference Algorithm (LIA), Section 5.3.

Ties the two phases together::

    Input:  reduced routing matrix R and m + 1 snapshots
    Phase 1: solve Sigma_hat* = A v for the link variances v
    Phase 2: sort links by variance; drop lowest-variance columns until
             R* has full column rank; solve Y = R* X* on the (m+1)-th
             snapshot; removed links get transmission rate ~ 1

The heavy lifting lives in :class:`repro.core.engine.InferenceEngine`,
which caches everything reusable across snapshots: the intersecting-pairs
structure (the expensive once-per-network computation of A), the phase-2
reduction per variance estimate, and the QR factorization of ``R*`` per
kept-column set.  This class is the user-facing binding of one engine to
one routing matrix, mirroring the paper's presentation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.augmented import IntersectingPairs
from repro.core.engine import InferenceEngine, LIAResult
from repro.core.engine import infer_many as _engine_infer_many
from repro.core.variance import VarianceEstimate
from repro.probing.snapshot import MeasurementCampaign, Snapshot
from repro.topology.routing import RoutingMatrix

__all__ = ["LIAResult", "LossInferenceAlgorithm", "infer_many"]


def infer_many(
    runs: Sequence[
        Tuple["LossInferenceAlgorithm", Snapshot, VarianceEstimate]
    ],
    mode: str = "auto",
) -> List[LIAResult]:
    """Batched inference across many independent trees' LIA instances.

    The wrapper-level face of :func:`repro.core.engine.infer_many`: each
    run is one (algorithm, snapshot, estimate) triple for a *different*
    tree, and the batch is solved without a Python loop over trees (see
    the engine function for the mode semantics and the byte-identity
    guarantee of the default packed mode).
    """
    return _engine_infer_many(
        [(alg.engine, snap, est) for alg, snap, est in runs], mode=mode
    )


class LossInferenceAlgorithm:
    """LIA bound to one routing matrix.

    Parameters
    ----------
    routing:
        The reduced routing matrix (Section 3.1 object).
    variance_method:
        Phase-1 solver, see :data:`repro.core.variance.VARIANCE_METHODS`.
    reduction_strategy:
        Phase-2 column selection: ``"threshold"`` (default), ``"gap"``,
        ``"paper"`` or ``"greedy"`` — see :mod:`repro.core.reduction`.
    congestion_threshold, cutoff_scale:
        Parameters of the default ``"threshold"`` reduction: the loss
        rate ``t_l`` separating good from congested links and the safety
        factor on the implied variance cutoff ``cutoff_scale * t_l / S``
        (S is read off each snapshot).  The default scale of 16 sits well
        above the good-link variance band (~2 t_l / S with burstiness)
        yet a factor of ~5 below the variance of the mildest congested
        link the LLRD models produce, and is validated across scales in
        the ablation benchmarks.
    drop_negative:
        Drop negative sample-covariance equations (paper behaviour).
    floor:
        Continuity floor for log transforms (default ``0.5 / S``).
    downdate_limit, update_limit, reduction_reuse_limit, max_cache_bytes:
        Incremental-cache knobs forwarded to
        :class:`~repro.core.engine.InferenceEngine`; all off by default
        so batch pipelines stay bit-identical (the online monitor opts
        in).
    """

    def __init__(
        self,
        routing: RoutingMatrix,
        variance_method: str = "wls",
        reduction_strategy: str = "threshold",
        drop_negative: bool = True,
        floor: Optional[float] = None,
        congestion_threshold: float = 0.002,
        cutoff_scale: float = 16.0,
        downdate_limit: int = 0,
        update_limit: int = 0,
        reduction_reuse_limit: int = 0,
        max_cache_bytes: Optional[int] = None,
    ) -> None:
        self.engine = InferenceEngine(
            routing,
            variance_method=variance_method,
            reduction_strategy=reduction_strategy,
            drop_negative=drop_negative,
            floor=floor,
            congestion_threshold=congestion_threshold,
            cutoff_scale=cutoff_scale,
            downdate_limit=downdate_limit,
            update_limit=update_limit,
            reduction_reuse_limit=reduction_reuse_limit,
            max_cache_bytes=max_cache_bytes,
        )

    # The statistical knobs stay readable on the wrapper.
    @property
    def routing(self) -> RoutingMatrix:
        return self.engine.routing

    @property
    def variance_method(self) -> str:
        return self.engine.variance_method

    @property
    def reduction_strategy(self) -> str:
        return self.engine.reduction_strategy

    @property
    def drop_negative(self) -> bool:
        return self.engine.drop_negative

    @property
    def floor(self) -> Optional[float]:
        return self.engine.floor

    @property
    def congestion_threshold(self) -> float:
        return self.engine.congestion_threshold

    @property
    def cutoff_scale(self) -> float:
        return self.engine.cutoff_scale

    @property
    def pairs(self) -> IntersectingPairs:
        """The (cached) non-zero rows of the augmented matrix A."""
        return self.engine.pairs

    # -- phase 1 ---------------------------------------------------------------

    def learn_variances(self, training: MeasurementCampaign) -> VarianceEstimate:
        """Estimate link variances from the m training snapshots."""
        return self.engine.learn_variances(training)

    # -- phase 2 ---------------------------------------------------------------

    def infer(
        self, snapshot: Snapshot, variance_estimate: VarianceEstimate
    ) -> LIAResult:
        """Infer link loss rates on one snapshot using learned variances."""
        return self.engine.infer(snapshot, variance_estimate)

    def infer_batch(
        self,
        snapshots: Sequence[Snapshot],
        variance_estimate: VarianceEstimate,
    ) -> List[LIAResult]:
        """Infer many snapshots with one factorization per kept-column set."""
        return self.engine.infer_batch(snapshots, variance_estimate)

    # -- end-to-end -------------------------------------------------------------

    def run(
        self,
        campaign: MeasurementCampaign,
        num_training: Optional[int] = None,
    ) -> LIAResult:
        """Learn on the first ``m`` snapshots, infer on the last one."""
        return self.engine.run(campaign, num_training)
