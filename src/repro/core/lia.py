"""The Loss Inference Algorithm (LIA), Section 5.3.

Ties the two phases together::

    Input:  reduced routing matrix R and m + 1 snapshots
    Phase 1: solve Sigma_hat* = A v for the link variances v
    Phase 2: sort links by variance; drop lowest-variance columns until
             R* has full column rank; solve Y = R* X* on the (m+1)-th
             snapshot; removed links get transmission rate ~ 1

The driver caches the intersecting-pairs structure (the expensive
once-per-network computation of A) so that repeated inference on new
snapshots is cheap, as the paper emphasises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.augmented import IntersectingPairs, intersecting_pairs
from repro.core.reduction import (
    REDUCTION_STRATEGIES,
    ReductionResult,
    reduce_to_full_rank,
    solve_reduced_system,
)
from repro.core.variance import (
    VARIANCE_METHODS,
    VarianceEstimate,
    estimate_link_variances,
)
from repro.probing.snapshot import MeasurementCampaign, Snapshot
from repro.topology.routing import RoutingMatrix


@dataclass(frozen=True)
class LIAResult:
    """Inferred link performance for one snapshot."""

    transmission_rates: np.ndarray  # per routing-matrix column, in (0, 1]
    variance_estimate: VarianceEstimate
    reduction: ReductionResult

    @property
    def loss_rates(self) -> np.ndarray:
        return 1.0 - self.transmission_rates

    @property
    def num_links(self) -> int:
        return int(self.transmission_rates.shape[0])

    def congested_links(self, threshold: float) -> np.ndarray:
        """Boolean mask of links whose inferred loss rate exceeds *threshold*."""
        return self.loss_rates > threshold


class LossInferenceAlgorithm:
    """LIA bound to one routing matrix.

    Parameters
    ----------
    routing:
        The reduced routing matrix (Section 3.1 object).
    variance_method:
        Phase-1 solver, see :data:`repro.core.variance.VARIANCE_METHODS`.
    reduction_strategy:
        Phase-2 column selection: ``"threshold"`` (default), ``"gap"``,
        ``"paper"`` or ``"greedy"`` — see :mod:`repro.core.reduction`.
    congestion_threshold, cutoff_scale:
        Parameters of the default ``"threshold"`` reduction: the loss
        rate ``t_l`` separating good from congested links and the safety
        factor on the implied variance cutoff ``cutoff_scale * t_l / S``
        (S is read off each snapshot).  The default scale of 16 sits well
        above the good-link variance band (~2 t_l / S with burstiness)
        yet a factor of ~5 below the variance of the mildest congested
        link the LLRD models produce, and is validated across scales in
        the ablation benchmarks.
    drop_negative:
        Drop negative sample-covariance equations (paper behaviour).
    floor:
        Continuity floor for log transforms (default ``0.5 / S``).
    """

    def __init__(
        self,
        routing: RoutingMatrix,
        variance_method: str = "wls",
        reduction_strategy: str = "threshold",
        drop_negative: bool = True,
        floor: Optional[float] = None,
        congestion_threshold: float = 0.002,
        cutoff_scale: float = 16.0,
    ) -> None:
        if variance_method not in VARIANCE_METHODS:
            raise ValueError(f"unknown variance method {variance_method!r}")
        if reduction_strategy not in REDUCTION_STRATEGIES:
            raise ValueError(f"unknown reduction strategy {reduction_strategy!r}")
        self.routing = routing
        self.variance_method = variance_method
        self.reduction_strategy = reduction_strategy
        if not 0 < congestion_threshold < 1:
            raise ValueError("congestion_threshold must be in (0, 1)")
        if cutoff_scale <= 0:
            raise ValueError("cutoff_scale must be positive")
        self.drop_negative = drop_negative
        self.floor = floor
        self.congestion_threshold = congestion_threshold
        self.cutoff_scale = cutoff_scale
        self._pairs: Optional[IntersectingPairs] = None

    @property
    def pairs(self) -> IntersectingPairs:
        """The (cached) non-zero rows of the augmented matrix A."""
        if self._pairs is None:
            self._pairs = intersecting_pairs(self.routing.matrix)
        return self._pairs

    # -- phase 1 ---------------------------------------------------------------

    def learn_variances(self, training: MeasurementCampaign) -> VarianceEstimate:
        """Estimate link variances from the m training snapshots."""
        if training.routing is not self.routing and not np.array_equal(
            training.routing.matrix, self.routing.matrix
        ):
            raise ValueError("campaign routing matrix differs from LIA's")
        return estimate_link_variances(
            training,
            method=self.variance_method,
            drop_negative=self.drop_negative,
            floor=self.floor,
            pairs=self.pairs,
        )

    # -- phase 2 ---------------------------------------------------------------

    def infer(
        self, snapshot: Snapshot, variance_estimate: VarianceEstimate
    ) -> LIAResult:
        """Infer link loss rates on one snapshot using learned variances."""
        if variance_estimate.num_links != self.routing.num_links:
            raise ValueError("variance vector does not match routing matrix")
        cutoff = None
        if self.reduction_strategy == "threshold":
            cutoff = (
                self.cutoff_scale
                * self.congestion_threshold
                / snapshot.num_probes
            )
        reduction = reduce_to_full_rank(
            self.routing.matrix,
            variance_estimate.variances,
            strategy=self.reduction_strategy,
            variance_cutoff=cutoff,
        )
        y = snapshot.path_log_rates(self.floor)
        x = solve_reduced_system(self.routing.matrix, y, reduction)
        return LIAResult(
            transmission_rates=np.exp(x),
            variance_estimate=variance_estimate,
            reduction=reduction,
        )

    # -- end-to-end -------------------------------------------------------------

    def run(
        self,
        campaign: MeasurementCampaign,
        num_training: Optional[int] = None,
    ) -> LIAResult:
        """Learn on the first ``m`` snapshots, infer on the last one."""
        training, target = campaign.split_training_target(num_training)
        estimate = self.learn_variances(training)
        return self.infer(target, estimate)
