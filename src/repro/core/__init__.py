"""Core algorithm: the augmented matrix, variance learning, and LIA."""

from repro.core.augmented import (
    AugmentedMatrixBuilder,
    IntersectingPairs,
    augmented_matrix,
    augmented_rank,
    has_identifiable_variances,
    intersecting_pairs,
    num_pair_rows,
    pair_from_row_index,
    pair_row_index,
)
from repro.core.engine import FactorizationCache, InferenceEngine, infer_many
from repro.core.identifiability import (
    IdentifiabilityReport,
    audit_identifiability,
    verify_theorem1,
)
from repro.core.kernels import (
    KernelTierError,
    available_tiers,
    current_tier,
    set_kernel_tier,
    use_kernel_tier,
)
from repro.core.lia import LIAResult, LossInferenceAlgorithm
from repro.core.reduction import (
    ReductionResult,
    reduce_to_full_rank,
    solve_reduced_system,
)
from repro.core.sparse_solvers import (
    SPARSE_AUTO_THRESHOLD,
    solve_normal_cg,
    solve_normal_sparse,
)
from repro.core.variance import (
    VARIANCE_METHODS,
    VarianceEstimate,
    estimate_link_variances,
    solve_covariance_system,
    variance_recovery_error,
)

__all__ = [
    "AugmentedMatrixBuilder",
    "FactorizationCache",
    "IdentifiabilityReport",
    "InferenceEngine",
    "IntersectingPairs",
    "KernelTierError",
    "LIAResult",
    "LossInferenceAlgorithm",
    "ReductionResult",
    "SPARSE_AUTO_THRESHOLD",
    "VARIANCE_METHODS",
    "VarianceEstimate",
    "audit_identifiability",
    "augmented_matrix",
    "augmented_rank",
    "available_tiers",
    "current_tier",
    "estimate_link_variances",
    "has_identifiable_variances",
    "infer_many",
    "intersecting_pairs",
    "num_pair_rows",
    "pair_from_row_index",
    "pair_row_index",
    "reduce_to_full_rank",
    "set_kernel_tier",
    "solve_covariance_system",
    "solve_normal_cg",
    "solve_normal_sparse",
    "solve_reduced_system",
    "use_kernel_tier",
    "variance_recovery_error",
    "verify_theorem1",
]
