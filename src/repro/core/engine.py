"""The factorization-reusing inference engine (LIA's hot path).

The paper stresses that "the inference method is fast": after the
augmented matrix ``A`` is built once per network, per-snapshot inference
should cost little more than a pair of triangular solves.  The seed code
met the first half (cached intersecting pairs) but re-ran the phase-2
column reduction *and* re-factorized ``R*`` from scratch on every
``infer()`` call — even when consecutive snapshots keep exactly the same
column set, which is the common case for rolling-window monitoring and
every fig*/table* campaign.

:class:`InferenceEngine` closes that gap.  It owns the cached
:class:`~repro.core.augmented.IntersectingPairs`, memoizes phase-2
reductions keyed by (variance vector, cutoff), and memoizes the thin QR
factorization of ``R*`` keyed by the kept-column set
(:class:`FactorizationCache`).  :meth:`InferenceEngine.infer_batch`
solves a whole window of snapshots as one multi-RHS triangular solve
against a single factorization.

:class:`repro.core.lia.LossInferenceAlgorithm` is the user-facing wrapper
bound to this engine; the delay and monitoring layers reuse the same
caches through it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import linalg as scipy_linalg
from scipy import sparse

from repro.core.augmented import IntersectingPairs, intersecting_pairs
from repro.core.kernels import get_kernels
from repro.core.linalg import (
    IncrementalColumnBasis,
    QRFactorization,
    solve_upper_triangular,
)
from repro.core.sparse_solvers import solve_normal_sparse
from repro.core.reduction import (
    REDUCTION_STRATEGIES,
    ReductionResult,
    reduce_to_full_rank,
)
from repro.core.variance import (
    VARIANCE_METHODS,
    VarianceEstimate,
    estimate_link_variances,
)
from repro.probing.snapshot import MeasurementCampaign, Snapshot
from repro.topology.routing import RoutingMatrix


@dataclass(frozen=True)
class LIAResult:
    """Inferred link performance for one snapshot."""

    transmission_rates: np.ndarray  # per routing-matrix column, in (0, 1]
    variance_estimate: VarianceEstimate
    reduction: ReductionResult

    @property
    def loss_rates(self) -> np.ndarray:
        return 1.0 - self.transmission_rates

    @property
    def num_links(self) -> int:
        return int(self.transmission_rates.shape[0])

    def congested_links(self, threshold: float) -> np.ndarray:
        """Boolean mask of links whose inferred loss rate exceeds *threshold*."""
        return self.loss_rates > threshold


@dataclass(frozen=True)
class CacheInfo:
    """One engine cache's counters, in ``functools``-style spirit.

    ``updates`` counts requests absorbed by an incremental update
    (column adds for the factorization cache, sweep-free reuse for the
    reduction cache), ``downdates`` by Givens column removals;
    ``misses`` are the requests that paid full price.
    ``resident_bytes`` tracks the arrays the cache keeps alive (shared
    arrays between entries are counted once per entry, a deliberate
    overcount that keeps the byte budget conservative).
    """

    hits: int
    misses: int
    updates: int
    downdates: int
    evictions: int
    entries: int
    resident_bytes: int

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class FactorizationCache:
    """LRU cache of thin QR factorizations of kept-column blocks ``R*``.

    Holds the routing matrix once (as CSC for cheap column slicing) and
    hands out :class:`~repro.core.linalg.QRFactorization` objects keyed
    by the kept-column index set.  Consecutive inferences with the same
    kept set — rolling-window monitoring, consecutive-snapshot
    experiments, every batch — pay for one factorization total.

    With ``downdate_limit > 0``, a requested kept set that is a subset
    of a cached one missing at most that many columns — the
    rolling-monitor pattern where a variance refresh exonerates a link
    or two — is served by *downdating* the cached factorization with
    Givens rotations
    (:meth:`~repro.core.linalg.QRFactorization.remove_column`) instead
    of refactorizing from scratch: O(m k) per removed column versus
    O(m k^2) for a fresh QR.  ``update_limit > 0`` is the mirror-image
    grow direction — a kept set that is a *superset* of a cached one is
    served by CGS2 column adds
    (:meth:`~repro.core.linalg.QRFactorization.add_column`) — covering
    the congestion-churn pattern where links re-enter the kept set.
    Updated/downdated factors equal a fresh QR only to working
    precision, so both limits default to 0 (off) and long-lived
    consumers (:class:`repro.monitor.OnlineLossMonitor`) opt in; batch
    experiment pipelines stay bit-identical to a cold engine.

    *max_bytes*, when set, bounds the bytes resident across cached
    ``Q``/``R`` factors: least-recently-used entries are evicted past
    either the entry or the byte budget (at least one entry always
    stays, so the working set never thrashes to nothing).
    """

    def __init__(
        self,
        matrix,
        max_entries: int = 8,
        downdate_limit: int = 0,
        update_limit: int = 0,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if downdate_limit < 0:
            raise ValueError("downdate_limit must be non-negative")
        if update_limit < 0:
            raise ValueError("update_limit must be non-negative")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive (or None)")
        if sparse.issparse(matrix):
            self._matrix = matrix.tocsc().astype(np.float64)
        else:
            dense = np.asarray(matrix, dtype=np.float64)
            if dense.ndim != 2:
                raise ValueError("matrix must be two-dimensional")
            self._matrix = sparse.csc_matrix(dense)
        self.max_entries = max_entries
        self.downdate_limit = downdate_limit
        self.update_limit = update_limit
        self.max_bytes = max_bytes
        self._cache: "OrderedDict[bytes, QRFactorization]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.updates = 0
        self.downdates = 0
        self.evictions = 0
        self._resident_bytes = 0

    @property
    def num_rows(self) -> int:
        return int(self._matrix.shape[0])

    @property
    def num_columns(self) -> int:
        return int(self._matrix.shape[1])

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def resident_bytes(self) -> int:
        """Bytes held by cached ``Q``/``R`` factors."""
        return self._resident_bytes

    def cache_info(self) -> CacheInfo:
        return CacheInfo(
            hits=self.hits,
            misses=self.misses,
            updates=self.updates,
            downdates=self.downdates,
            evictions=self.evictions,
            entries=len(self._cache),
            resident_bytes=self._resident_bytes,
        )

    def block(self, kept: np.ndarray) -> np.ndarray:
        """The dense kept-column block ``R*`` (never the full matrix)."""
        kept = np.asarray(kept, dtype=np.int64)
        return np.asarray(self._matrix[:, kept].todense(), dtype=np.float64)

    def column(self, index: int) -> np.ndarray:
        """One dense matrix column (for incremental factorization adds)."""
        out = np.zeros(self.num_rows, dtype=np.float64)
        start, end = self._matrix.indptr[index], self._matrix.indptr[index + 1]
        out[self._matrix.indices[start:end]] = self._matrix.data[start:end]
        return out

    @staticmethod
    def _entry_bytes(factorization: QRFactorization) -> int:
        return int(factorization.q.nbytes + factorization.r.nbytes)

    def _store(self, key: bytes, factorization: QRFactorization) -> None:
        self._cache[key] = factorization
        self._resident_bytes += self._entry_bytes(factorization)
        while len(self._cache) > 1 and (
            len(self._cache) > self.max_entries
            or (
                self.max_bytes is not None
                and self._resident_bytes > self.max_bytes
            )
        ):
            _, evicted = self._cache.popitem(last=False)
            self._resident_bytes -= self._entry_bytes(evicted)
            self.evictions += 1

    def factorization(self, kept: np.ndarray) -> QRFactorization:
        """The (cached) thin QR of ``R*`` for this kept-column set."""
        kept = np.asarray(kept, dtype=np.int64)
        key = kept.tobytes()
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached
        factorization = self._downdate_from_superset(kept)
        if factorization is not None:
            self.downdates += 1
        else:
            factorization = self._update_from_subset(kept)
            if factorization is not None:
                self.updates += 1
            else:
                self.misses += 1
                factorization = QRFactorization.factorize(
                    self.block(kept), columns=kept
                )
        self._store(key, factorization)
        return factorization

    def _downdate_from_superset(
        self, kept: np.ndarray
    ) -> Optional[QRFactorization]:
        """Givens-downdate a cached superset factorization, if one is close.

        Scans most-recently-used first for a full-rank cached
        factorization whose column set contains *kept* with at most
        ``downdate_limit`` extras; the best (fewest-extras) candidate is
        shrunk column by column.  Returns ``None`` when no candidate
        exists or the downdated factorization lost full rank (the caller
        then refactorizes from scratch).
        """
        if self.downdate_limit == 0 or not len(self._cache):
            return None
        wanted = set(int(c) for c in kept)
        best: Optional[QRFactorization] = None
        for candidate in reversed(self._cache.values()):
            extra = len(candidate.columns) - len(wanted)
            if not 0 < extra <= self.downdate_limit:
                continue
            if best is not None and extra >= len(best.columns) - len(wanted):
                continue
            if wanted.issubset(candidate.columns) and candidate.is_full_rank():
                best = candidate
                if extra == 1:
                    break
        if best is None:
            return None
        factorization = best
        for position in reversed(
            [i for i, c in enumerate(best.columns) if c not in wanted]
        ):
            factorization = factorization.remove_column(position)
        if not factorization.is_full_rank():
            return None  # numerically degraded; fall back to a fresh QR
        return factorization

    def _update_from_subset(
        self, kept: np.ndarray
    ) -> Optional[QRFactorization]:
        """Column-add a cached subset factorization, if one is close.

        The mirror image of :meth:`_downdate_from_superset`: scans
        most-recently-used first for a full-rank cached factorization
        whose column set is contained in *kept* missing at most
        ``update_limit`` columns; the best (fewest-missing) candidate is
        grown one CGS2 column offer at a time.  Returns ``None`` when no
        candidate exists, a missing column turns out (numerically)
        dependent, or the grown column order cannot match *kept* — the
        caller then refactorizes from scratch.
        """
        if self.update_limit == 0 or not len(self._cache):
            return None
        wanted = tuple(int(c) for c in kept)
        wanted_set = set(wanted)
        best: Optional[QRFactorization] = None
        for candidate in reversed(self._cache.values()):
            missing = len(wanted) - len(candidate.columns)
            if not 0 < missing <= self.update_limit:
                continue
            if best is not None and missing >= len(wanted) - len(best.columns):
                continue
            if wanted_set.issuperset(candidate.columns) and candidate.full_rank:
                best = candidate
                if missing == 1:
                    break
        if best is None:
            return None
        factorization = best
        for column in sorted(wanted_set.difference(best.columns)):
            position = int(
                np.searchsorted(
                    np.asarray(factorization.columns, dtype=np.int64), column
                )
            )
            try:
                factorization = factorization.add_column(
                    self.column(column), column, position
                )
            except scipy_linalg.LinAlgError:
                return None  # dependent column; fall back to a fresh QR
        if factorization.columns != wanted:
            # The engine's kept arrays are sorted, so sorted-position
            # inserts reproduce them; a hand-built unsorted request
            # cannot be matched by updating.
            return None
        if not factorization.is_full_rank():
            return None  # numerically degraded; fall back to a fresh QR
        return factorization


@dataclass
class _ReductionEntry:
    """One memoized reduction plus the state incremental reuse needs.

    ``candidates`` is the threshold strategy's descending-variance scan
    order (``None`` for other strategies or when incremental reuse is
    off), ``all_accepted`` whether the basis sweep kept every candidate,
    and ``basis`` the orthonormal basis the sweep built (kept only when
    all candidates were accepted — the precondition for serving a grown
    candidate set with a handful of CGS2 offers).
    """

    result: ReductionResult
    candidates: Optional[np.ndarray] = None
    all_accepted: bool = False
    basis: Optional[np.ndarray] = None

    @property
    def nbytes(self) -> int:
        total = (
            self.result.kept_columns.nbytes + self.result.removed_columns.nbytes
        )
        if self.candidates is not None:
            total += self.candidates.nbytes
        if self.basis is not None:
            total += self.basis.nbytes
        return int(total)


class ReductionCache:
    """LRU memo of phase-2 column reductions for one routing matrix.

    Keyed by (strategy, variance vector, cutoff): a rolling monitor — or
    any consumer re-inferring against one variance estimate — re-reduces
    only when the estimate or a reduction knob actually changes.  Shared
    by :class:`InferenceEngine` and the delay layer
    (:class:`repro.delay.inference.DelayInferenceAlgorithm`), which used
    to reimplement the same memoized kept-column selection by hand.

    With ``reuse_limit > 0`` the ``"threshold"`` strategy also reuses
    *across* variance vectors: a refresh whose above-cutoff candidate
    set matches a cached one reuses its sweep outright; a candidate set
    that shrank by at most ``reuse_limit`` columns from a cached
    all-accepted sweep keeps the remaining candidates without any sweep
    (a subset of an independent set is independent); one that *grew* by
    at most ``reuse_limit`` columns offers only the new columns against
    the cached orthonormal basis — O(n_p k) per new link instead of the
    O(n_p k^2) full basis sweep.  Near the 1e-9 independence tolerance
    the offer order can differ from a cold sweep's, so reuse defaults to
    0 (off) and only long-lived monitors opt in; batch pipelines stay
    bit-identical.
    """

    def __init__(
        self,
        matrix,
        max_entries: int = 8,
        reuse_limit: int = 0,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if reuse_limit < 0:
            raise ValueError("reuse_limit must be non-negative")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive (or None)")
        self._matrix = matrix
        self.max_entries = max_entries
        self.reuse_limit = reuse_limit
        self.max_bytes = max_bytes
        self._cache: "OrderedDict[Tuple[str, bytes, Optional[float]], _ReductionEntry]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.updates = 0
        self.evictions = 0
        self._resident_bytes = 0

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    def cache_info(self) -> CacheInfo:
        return CacheInfo(
            hits=self.hits,
            misses=self.misses,
            updates=self.updates,
            downdates=0,
            evictions=self.evictions,
            entries=len(self._cache),
            resident_bytes=self._resident_bytes,
        )

    def _store(self, key, entry: _ReductionEntry) -> None:
        self._cache[key] = entry
        self._resident_bytes += entry.nbytes
        while len(self._cache) > 1 and (
            len(self._cache) > self.max_entries
            or (
                self.max_bytes is not None
                and self._resident_bytes > self.max_bytes
            )
        ):
            _, evicted = self._cache.popitem(last=False)
            self._resident_bytes -= evicted.nbytes
            self.evictions += 1

    def reduce(
        self,
        variances: np.ndarray,
        strategy: str,
        variance_cutoff: Optional[float] = None,
    ) -> ReductionResult:
        """The (memoized) reduction for one variance vector."""
        variances = np.asarray(variances, dtype=np.float64)
        key = (strategy, variances.tobytes(), variance_cutoff)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached.result
        entry = None
        if (
            self.reuse_limit
            and strategy == "threshold"
            and variance_cutoff is not None
            and variance_cutoff > 0
        ):
            candidates = self._threshold_candidates(variances, variance_cutoff)
            entry = self._reuse(candidates)
            if entry is not None:
                self.updates += 1
            else:
                self.misses += 1
                entry = self._threshold_sweep(candidates)
        if entry is None:
            self.misses += 1
            entry = _ReductionEntry(
                result=reduce_to_full_rank(
                    self._matrix,
                    variances,
                    strategy=strategy,
                    variance_cutoff=variance_cutoff,
                )
            )
        self._store(key, entry)
        return entry.result

    # -- threshold-strategy incremental reuse --------------------------------

    def _threshold_candidates(
        self, variances: np.ndarray, variance_cutoff: float
    ) -> np.ndarray:
        """The threshold strategy's exact candidate scan order.

        Must reproduce ``reduce_to_full_rank``: descending variance,
        ties broken by ascending column index, filtered to variances
        strictly above the cutoff.
        """
        ascending = np.lexsort((np.arange(len(variances)), variances))
        descending = ascending[::-1]
        return np.asarray(
            descending[variances[descending] > variance_cutoff],
            dtype=np.int64,
        )

    def _result_for(self, kept) -> ReductionResult:
        num_cols = int(self._matrix.shape[1])
        kept_arr = np.array(sorted(int(c) for c in kept), dtype=np.int64)
        removed = np.setdiff1d(np.arange(num_cols, dtype=np.int64), kept_arr)
        return ReductionResult(
            kept_columns=kept_arr, removed_columns=removed, strategy="threshold"
        )

    def _threshold_sweep(self, candidates: np.ndarray) -> _ReductionEntry:
        """The cold basis sweep, keeping the basis for later grow reuse.

        Decision-identical to ``reduce_to_full_rank``'s threshold path
        (same :class:`IncrementalColumnBasis` offers in the same order).
        """
        num_rows = int(self._matrix.shape[0])
        basis = IncrementalColumnBasis(dimension=num_rows)
        kept: List[int] = []
        for col in candidates:
            if basis.try_add(self._column(int(col))):
                kept.append(int(col))
        all_accepted = len(kept) == len(candidates)
        return _ReductionEntry(
            result=self._result_for(kept),
            candidates=candidates,
            all_accepted=all_accepted,
            basis=np.array(basis.basis_matrix) if all_accepted else None,
        )

    def _reuse(self, candidates: np.ndarray) -> Optional[_ReductionEntry]:
        """Serve a new candidate set from a cached sweep, if one is close."""
        cand_key = candidates.tobytes()
        cand_set = set(int(c) for c in candidates)
        for entry in reversed(self._cache.values()):
            if entry.candidates is None:
                continue
            if entry.candidates.tobytes() == cand_key:
                # Identical scan — identical sweep, basis and all.
                return entry
            if not entry.all_accepted:
                continue
            entry_set = set(int(c) for c in entry.candidates)
            shrunk = len(entry_set) - len(cand_set)
            if 0 < shrunk <= self.reuse_limit and cand_set <= entry_set:
                # A subset of an independent set is independent: every
                # candidate survives the sweep without running it.  (The
                # subset's basis is not cheaply derivable, so grow reuse
                # from this entry is unavailable.)
                return _ReductionEntry(
                    result=self._result_for(cand_set),
                    candidates=candidates,
                    all_accepted=True,
                    basis=None,
                )
            grown = len(cand_set) - len(entry_set)
            if (
                0 < grown <= self.reuse_limit
                and entry.basis is not None
                and entry_set <= cand_set
            ):
                grown_entry = self._grow(entry, sorted(cand_set - entry_set))
                if grown_entry is not None:
                    grown_entry.candidates = candidates
                    return grown_entry
        return None

    def _grow(
        self, entry: _ReductionEntry, extras: List[int]
    ) -> Optional[_ReductionEntry]:
        """Offer *extras* against a cached basis; None on any rejection.

        If every extra column enlarges the span then the grown candidate
        set is linearly independent, and a cold sweep — in any scan
        order — would keep all of it.  A rejection means the cold sweep
        could keep a different subset, so fall back to running it.
        """
        basis_cols = entry.basis
        rank = basis_cols.shape[1]
        storage = np.empty(
            (basis_cols.shape[0], rank + len(extras)), dtype=np.float64
        )
        storage[:, :rank] = basis_cols
        kern = get_kernels()
        for column in extras:
            col = self._column(column)
            norm0 = float(np.linalg.norm(col))
            if norm0 == 0.0:
                return None
            v = kern.cgs2_project(storage, rank, col) if rank else col
            norm1 = float(np.linalg.norm(v))
            if norm1 <= 1e-9 * norm0:
                return None
            storage[:, rank] = v / norm1
            rank += 1
        kept = set(int(c) for c in entry.candidates) | set(extras)
        return _ReductionEntry(
            result=self._result_for(kept),
            all_accepted=True,
            basis=storage,
        )

    def _column(self, index: int) -> np.ndarray:
        """One dense routing-matrix column (for the incremental offers)."""
        matrix = self._csc
        out = np.zeros(int(matrix.shape[0]), dtype=np.float64)
        start, end = matrix.indptr[index], matrix.indptr[index + 1]
        out[matrix.indices[start:end]] = matrix.data[start:end]
        return out

    @property
    def _csc(self):
        csc = getattr(self, "_csc_matrix", None)
        if csc is None:
            if sparse.issparse(self._matrix):
                csc = self._matrix.tocsc().astype(np.float64)
            else:
                csc = sparse.csc_matrix(
                    np.asarray(self._matrix, dtype=np.float64)
                )
            self._csc_matrix = csc
        return csc


class InferenceEngine:
    """LIA phases 1+2 with every reusable intermediate cached.

    Parameters mirror :class:`repro.core.lia.LossInferenceAlgorithm`
    (which delegates here); see its docstring for the statistical
    meaning of each knob.  *max_cached_factorizations* bounds the
    kept-column-set LRU; the reduction memo is bounded to the same size.

    *downdate_limit* / *update_limit* / *reduction_reuse_limit* enable
    the incremental cache paths (Givens downdates, CGS2 column adds,
    sweep-free reduction reuse) for kept-set changes of at most that
    many columns; all default to 0 (off) so batch pipelines stay
    bit-identical, and :class:`repro.monitor.OnlineLossMonitor` opts in.
    *max_cache_bytes* byte-bounds each cache's resident arrays.
    """

    def __init__(
        self,
        routing: RoutingMatrix,
        variance_method: str = "wls",
        reduction_strategy: str = "threshold",
        drop_negative: bool = True,
        floor: Optional[float] = None,
        congestion_threshold: float = 0.002,
        cutoff_scale: float = 16.0,
        max_cached_factorizations: int = 8,
        downdate_limit: int = 0,
        update_limit: int = 0,
        reduction_reuse_limit: int = 0,
        max_cache_bytes: Optional[int] = None,
    ) -> None:
        if variance_method not in VARIANCE_METHODS:
            raise ValueError(f"unknown variance method {variance_method!r}")
        if reduction_strategy not in REDUCTION_STRATEGIES:
            raise ValueError(f"unknown reduction strategy {reduction_strategy!r}")
        if not 0 < congestion_threshold < 1:
            raise ValueError("congestion_threshold must be in (0, 1)")
        if cutoff_scale <= 0:
            raise ValueError("cutoff_scale must be positive")
        self.routing = routing
        self.variance_method = variance_method
        self.reduction_strategy = reduction_strategy
        self.drop_negative = drop_negative
        self.floor = floor
        self.congestion_threshold = congestion_threshold
        self.cutoff_scale = cutoff_scale
        self._pairs: Optional[IntersectingPairs] = None
        self._routing_sparse = routing.to_sparse()
        self._factorizations = FactorizationCache(
            self._routing_sparse,
            max_entries=max_cached_factorizations,
            downdate_limit=downdate_limit,
            update_limit=update_limit,
            max_bytes=max_cache_bytes,
        )
        self._reductions = ReductionCache(
            self._routing_sparse,
            max_entries=max_cached_factorizations,
            reuse_limit=reduction_reuse_limit,
            max_bytes=max_cache_bytes,
        )

    # -- cached structures ----------------------------------------------------

    @property
    def pairs(self) -> IntersectingPairs:
        """The (cached) non-zero rows of the augmented matrix A."""
        if self._pairs is None:
            self._pairs = intersecting_pairs(self.routing.matrix)
        return self._pairs

    @pairs.setter
    def pairs(self, value: IntersectingPairs) -> None:
        """Adopt a pre-built structure (a monitoring service hands it down)."""
        if value.num_links != self.routing.num_links:
            raise ValueError("pairs do not match the routing matrix")
        self._pairs = value

    @property
    def factorization_cache(self) -> FactorizationCache:
        return self._factorizations

    @property
    def reduction_cache(self) -> ReductionCache:
        return self._reductions

    def cache_info(self) -> Dict[str, CacheInfo]:
        """Counters of both engine caches, keyed by cache name."""
        return {
            "factorization": self._factorizations.cache_info(),
            "reduction": self._reductions.cache_info(),
        }

    # -- phase 1 ----------------------------------------------------------------

    def learn_variances(self, training: MeasurementCampaign) -> VarianceEstimate:
        """Estimate link variances from the m training snapshots."""
        if training.routing is not self.routing and not np.array_equal(
            training.routing.matrix, self.routing.matrix
        ):
            raise ValueError("campaign routing matrix differs from LIA's")
        return estimate_link_variances(
            training,
            method=self.variance_method,
            drop_negative=self.drop_negative,
            floor=self.floor,
            pairs=self.pairs,
        )

    # -- phase 2 ----------------------------------------------------------------

    def variance_cutoff(self, num_probes: int) -> Optional[float]:
        """The threshold strategy's physics cutoff for this probe count."""
        if self.reduction_strategy != "threshold":
            return None
        return self.cutoff_scale * self.congestion_threshold / num_probes

    def reduce(
        self, estimate: VarianceEstimate, num_probes: int
    ) -> ReductionResult:
        """Memoized phase-2 reduction for one variance estimate.

        Delegates to the shared :class:`ReductionCache`, so a rolling
        monitor re-reduces only when it re-learns variances (or the
        snapshot probe count or a reduction knob changes), not on every
        snapshot.
        """
        self._check_estimate(estimate)
        return self._reductions.reduce(
            estimate.variances,
            self.reduction_strategy,
            self.variance_cutoff(num_probes),
        )

    def _check_estimate(self, estimate: VarianceEstimate) -> None:
        if estimate.num_links != self.routing.num_links:
            raise ValueError("variance vector does not match routing matrix")

    def _solve_reduced(
        self, reduction: ReductionResult, y: np.ndarray
    ) -> np.ndarray:
        """Solve ``Y = R* X*`` via the cached factorization; re-embed and clip.

        *y* is one log-rate vector ``(n_p,)`` or a stack ``(s, n_p)``;
        the stacked form is a single multi-RHS triangular solve.
        """
        kept = reduction.kept_columns
        num_cols = self.routing.num_links
        shape = (num_cols,) if y.ndim == 1 else (y.shape[0], num_cols)
        x_full = np.zeros(shape, dtype=np.float64)
        if len(kept) == 0:
            return x_full
        factorization = self._factorizations.factorization(kept)
        rhs = y if y.ndim == 1 else y.T
        if factorization.full_rank:
            x_star = factorization.solve(rhs)
        else:
            # Every built-in strategy keeps an independent set, but a
            # hand-built ReductionResult may not; match the seed's
            # minimum-norm lstsq behaviour there.
            x_star, *_ = np.linalg.lstsq(
                self._factorizations.block(kept), rhs, rcond=None
            )
        x_star = np.minimum(x_star, 0.0)
        if y.ndim == 1:
            x_full[kept] = x_star
        else:
            x_full[:, kept] = x_star.T
        return x_full

    # -- inference ---------------------------------------------------------------

    def infer(
        self, snapshot: Snapshot, estimate: VarianceEstimate
    ) -> LIAResult:
        """Infer link loss rates on one snapshot using learned variances."""
        reduction = self.reduce(estimate, snapshot.num_probes)
        y = snapshot.path_log_rates(self.floor)
        x = self._solve_reduced(reduction, y)
        return LIAResult(
            transmission_rates=np.exp(x),
            variance_estimate=estimate,
            reduction=reduction,
        )

    def infer_batch(
        self, snapshots: Sequence[Snapshot], estimate: VarianceEstimate
    ) -> List[LIAResult]:
        """Infer many snapshots against one variance estimate.

        Snapshots sharing a kept-column set (all of them, in the common
        fixed-probe-count case) are solved as one multi-RHS system with
        one factorization.  Results match per-snapshot :meth:`infer` to
        machine precision (the multi-RHS triangular solve may reorder
        sums); order follows the input.
        """
        snapshots = list(snapshots)
        results: List[Optional[LIAResult]] = [None] * len(snapshots)
        groups: "OrderedDict[bytes, Tuple[ReductionResult, List[int]]]" = (
            OrderedDict()
        )
        for index, snapshot in enumerate(snapshots):
            reduction = self.reduce(estimate, snapshot.num_probes)
            entry = groups.setdefault(reduction.key(), (reduction, []))
            entry[1].append(index)
        for reduction, indices in groups.values():
            Y = np.vstack(
                [snapshots[i].path_log_rates(self.floor) for i in indices]
            )
            X = self._solve_reduced(reduction, Y)
            rates = np.exp(X)
            for row, index in enumerate(indices):
                results[index] = LIAResult(
                    transmission_rates=rates[row],
                    variance_estimate=estimate,
                    reduction=reduction,
                )
        return results  # type: ignore[return-value]

    # -- end-to-end ---------------------------------------------------------------

    def run(
        self,
        campaign: MeasurementCampaign,
        num_training: Optional[int] = None,
    ) -> LIAResult:
        """Learn on the first ``m`` snapshots, infer on the last one."""
        training, target = campaign.split_training_target(num_training)
        estimate = self.learn_variances(training)
        return self.infer(target, estimate)

    @staticmethod
    def infer_many(
        runs: Sequence[Tuple["InferenceEngine", Snapshot, VarianceEstimate]],
        mode: str = "auto",
    ) -> List[LIAResult]:
        """Batched inference across many independent trees; see the
        module-level :func:`infer_many`."""
        return infer_many(runs, mode=mode)


#: Valid *mode* values for :func:`infer_many`.
INFER_MANY_MODES = ("auto", "loop", "packed", "sparse")

#: How many distinct forests keep a cached :class:`_ForestPlan` alive.
FOREST_PLAN_LIMIT = 4

#: Guards the plan LRU and its byte counter: the ``thread`` execution
#: backend runs trials concurrently in one process, so plan lookups,
#: insertions and evictions from different trials interleave.
_FOREST_PLAN_LOCK = threading.Lock()
_forest_plans: "OrderedDict[Tuple, _ForestPlan]" = OrderedDict()
_forest_plan_max_bytes: Optional[int] = None
_forest_plan_bytes = 0


def set_forest_plan_budget(max_bytes: Optional[int]) -> None:
    """Byte-bound the forest-plan LRU (None removes the bound).

    Complements :data:`FOREST_PLAN_LIMIT` the way the engine caches'
    ``max_bytes`` complements their entry counts: whichever bound is hit
    first evicts least-recently-used plans (the current plan always
    survives).  Takes effect on the next :func:`infer_many` call.
    """
    global _forest_plan_max_bytes
    if max_bytes is not None and max_bytes < 1:
        raise ValueError("max_bytes must be positive (or None)")
    with _FOREST_PLAN_LOCK:
        _forest_plan_max_bytes = max_bytes


def invalidate_forest_plans() -> None:
    """Drop every cached forest plan (releases engine/estimate refs).

    Needed only if an engine's knobs (``floor`` is keyed, the others are
    not) or an estimate's variance array were mutated *in place* after a
    packed :func:`infer_many` call — identity-keyed plans cannot see
    in-place mutation.  Fresh objects get fresh plans automatically.
    """
    global _forest_plan_bytes
    with _FOREST_PLAN_LOCK:
        _forest_plans.clear()
        _forest_plan_bytes = 0


class _ForestPlan:
    """Per-tree solve state for one forest, reusable across windows.

    ``infer_many``'s packed mode re-infers the *same* trees (engines and
    variance estimates) for window after window of snapshots; everything
    except the measured rates — the memoized reduction, the (full-rank)
    thin-QR factors, the scatter indices into the flat output buffer,
    the continuity-floor vector — is snapshot-independent.  Resolving it
    per call costs more Python time than the solves themselves, so the
    plan resolves it once and the warm path is reduced to one fused
    clip+log, one ``Q^T y`` + ``trtrs`` pair per tree, and one fused
    clip+exp.

    The plan holds strong references to its engines and estimates: that
    both keeps the factorizations it resolved coherent with the engine
    caches and pins the object ids the plan-cache key is built from.
    """

    __slots__ = (
        "engines",
        "estimates",
        "reductions",
        "offsets",
        "path_counts",
        "path_offsets",
        "floors_expanded",
        "solves",
        "total_links",
        "nbytes",
    )

    def __init__(
        self,
        runs: Sequence[Tuple["InferenceEngine", Snapshot, VarianceEstimate]],
    ) -> None:
        self.engines = [eng for eng, _, _ in runs]
        self.estimates = [est for _, _, est in runs]
        n = len(runs)
        self.reductions: List[ReductionResult] = []
        offsets = np.zeros(n + 1, dtype=np.int64)
        path_counts = np.empty(n, dtype=np.int64)
        floors = np.empty(n, dtype=np.float64)
        for i, (eng, snap, est) in enumerate(runs):
            self.reductions.append(eng.reduce(est, snap.num_probes))
            offsets[i + 1] = offsets[i] + eng.routing.num_links
            path_counts[i] = snap.path_transmission.shape[0]
            floor = (
                eng.floor
                if eng.floor is not None
                else 0.5 / float(snap.num_probes)
            )
            if not 0 < floor <= 1:
                raise ValueError(f"floor must be in (0, 1], got {floor}")
            floors[i] = floor
        self.offsets = offsets
        self.path_counts = path_counts
        path_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(path_counts, out=path_offsets[1:])
        self.path_offsets = path_offsets
        self.floors_expanded = np.repeat(floors, path_counts)
        self.total_links = int(offsets[-1])
        # One entry per tree with a non-empty kept set:
        # (p0, p1, scatter, r, q_t, block) — r/q_t for the full-rank
        # triangular path, block for the lstsq fallback.
        self.solves: List[Tuple] = []
        for i, (eng, snap, est) in enumerate(runs):
            kept = self.reductions[i].kept_columns
            if len(kept) == 0:
                continue
            p0, p1 = int(path_offsets[i]), int(path_offsets[i + 1])
            scatter = offsets[i] + np.asarray(kept, dtype=np.int64)
            factorization = eng._factorizations.factorization(kept)
            if factorization.full_rank:
                self.solves.append(
                    (p0, p1, scatter, factorization.r, factorization.q.T, None)
                )
            else:
                self.solves.append(
                    (p0, p1, scatter, None, None, eng._factorizations.block(kept))
                )
        # Arrays this plan keeps alive (the r/q_t views are shared with
        # the engine caches; counting them here keeps the plan budget
        # conservative), for the byte-bounded plan LRU.
        total = (
            self.offsets.nbytes
            + self.path_counts.nbytes
            + self.path_offsets.nbytes
            + self.floors_expanded.nbytes
        )
        for _, _, scatter, r, q_t, block in self.solves:
            total += scatter.nbytes
            if r is not None:
                total += r.nbytes + q_t.nbytes
            else:
                total += block.nbytes
        self.nbytes = int(total)

    def log_rates(
        self,
        runs: Sequence[Tuple["InferenceEngine", Snapshot, VarianceEstimate]],
    ) -> np.ndarray:
        """One fused clip+log over every tree's measured path rates.

        Elementwise ufuncs are batching-invariant, so each slice is
        bit-identical to the tree's own ``snapshot.path_log_rates``.
        """
        rates = np.concatenate(
            [snap.path_transmission for _, snap, _ in runs]
        )
        return np.log(np.clip(rates, self.floors_expanded, 1.0))

    def solve(self, log_concat: np.ndarray) -> np.ndarray:
        """Embedded, clipped solutions for all trees in one flat buffer."""
        flat = np.zeros(self.total_links, dtype=np.float64)
        for p0, p1, scatter, r, q_t, block in self.solves:
            y = log_concat[p0:p1]
            if r is not None:
                flat[scatter] = solve_upper_triangular(r, q_t @ y)
            else:
                x_star, *_ = np.linalg.lstsq(block, y, rcond=None)
                flat[scatter] = x_star
        np.minimum(flat, 0.0, out=flat)
        return flat

    def results(self, rates: np.ndarray) -> List[LIAResult]:
        offsets = self.offsets
        return [
            LIAResult(
                transmission_rates=rates[offsets[i] : offsets[i + 1]],
                variance_estimate=self.estimates[i],
                reduction=self.reductions[i],
            )
            for i in range(len(self.estimates))
        ]


def _forest_plan(
    runs: Sequence[Tuple["InferenceEngine", Snapshot, VarianceEstimate]],
) -> "_ForestPlan":
    """The (cached) plan for this forest.

    Keyed by per-tree (engine id, estimate id, probe count, floor knob);
    the cached plan's strong references keep those ids from being
    reused, which is what makes identity keying sound.  Engines with
    factorization downdating or updating enabled get a fresh plan every
    call — their factorization cache is history-dependent, and a stored
    plan could disagree with what a plain loop would see.
    """
    global _forest_plan_bytes
    if any(
        eng._factorizations.downdate_limit or eng._factorizations.update_limit
        for eng, _, _ in runs
    ):
        return _ForestPlan(runs)
    key = tuple(
        (id(eng), id(est), snap.num_probes, eng.floor)
        for eng, snap, est in runs
    )
    with _FOREST_PLAN_LOCK:
        plan = _forest_plans.get(key)
        if plan is not None:
            if np.array_equal(
                plan.path_counts,
                np.fromiter(
                    (snap.path_transmission.shape[0] for _, snap, _ in runs),
                    dtype=np.int64,
                    count=len(runs),
                ),
            ):
                _forest_plans.move_to_end(key)
                return plan
            del _forest_plans[key]
            _forest_plan_bytes -= plan.nbytes
    # Resolve the plan outside the lock — it walks every tree's
    # reduction and factorization, and other threads' forests should
    # not wait on that.  A racing thread building the same key would
    # have to share these engine objects, which are not thread-safe to
    # begin with; last insert simply wins.
    plan = _ForestPlan(runs)
    with _FOREST_PLAN_LOCK:
        displaced = _forest_plans.get(key)
        if displaced is not None:
            _forest_plan_bytes -= displaced.nbytes
        _forest_plans[key] = plan
        _forest_plan_bytes += plan.nbytes
        while len(_forest_plans) > 1 and (
            len(_forest_plans) > FOREST_PLAN_LIMIT
            or (
                _forest_plan_max_bytes is not None
                and _forest_plan_bytes > _forest_plan_max_bytes
            )
        ):
            _, evicted = _forest_plans.popitem(last=False)
            _forest_plan_bytes -= evicted.nbytes
    return plan


def infer_many(
    runs: Sequence[Tuple[InferenceEngine, Snapshot, VarianceEstimate]],
    mode: str = "auto",
) -> List[LIAResult]:
    """Infer many *independent trees* — (engine, snapshot, estimate)
    triples — as one batched operation instead of a Python loop.

    A campaign grid point often evaluates hundreds of small trees, each
    with its own :class:`InferenceEngine`; looping ``engine.infer`` pays
    Python dispatch, ufunc launch, and small-allocation overhead per
    tree that dwarfs the tree's actual FLOPs.  Modes:

    ``"loop"``
        the reference: literally ``engine.infer`` per tree.
    ``"packed"`` (what ``"auto"`` selects)
        one pass issuing the identical per-tree BLAS/LAPACK calls
        (``Q^T y`` then the LAPACK ``trtrs`` the factorization's own
        ``solve`` uses) with everything batchable hoisted out of the
        loop: the embedded solutions land in one flat buffer so the
        negative-clip and the final ``exp`` run as *one* ufunc call over
        all trees.  Elementwise ufuncs are batching-invariant, so the
        results match ``"loop"`` **to the byte** (pinned by
        ``tests/test_engine.py``).
    ``"sparse"``
        assembles every tree's kept-column block into one block-diagonal
        sparse system and solves it in a single
        :func:`~repro.core.sparse_solvers.solve_normal_sparse` call —
        the scale path for thousands of tiny trees, where even the
        packed loop's per-tree factorization bookkeeping dominates.
        Agrees with ``"loop"`` to solver precision (~1e-9 relative), not
        bitwise, so experiments default to ``"packed"``.

    All modes share each engine's reduction/factorization caches, so
    repeated windows against the same trees stay warm.
    """
    if mode not in INFER_MANY_MODES:
        raise ValueError(
            f"unknown infer_many mode {mode!r}; "
            f"choose one of {', '.join(INFER_MANY_MODES)}"
        )
    runs = list(runs)
    if mode == "loop":
        return [eng.infer(snap, est) for eng, snap, est in runs]
    if not runs:
        return []
    if mode == "auto":
        mode = "packed"

    plan = _forest_plan(runs)
    log_concat = plan.log_rates(runs)

    if mode == "packed":
        flat = plan.solve(log_concat)
    else:  # mode == "sparse"
        flat = np.zeros(plan.total_links, dtype=np.float64)
        blocks = []
        stacked_rhs = []
        spans: List[Tuple[int, np.ndarray, int]] = []  # (run idx, kept, k)
        for index, (eng, snap, est) in enumerate(runs):
            kept = plan.reductions[index].kept_columns
            if len(kept) == 0:
                continue
            blocks.append(eng._factorizations.block(kept))
            stacked_rhs.append(
                log_concat[
                    plan.path_offsets[index] : plan.path_offsets[index + 1]
                ]
            )
            spans.append((index, np.asarray(kept, dtype=np.int64), len(kept)))
        if blocks:
            system = sparse.block_diag(blocks, format="csr")
            solution = solve_normal_sparse(system, np.concatenate(stacked_rhs))
            start = 0
            for index, kept, width in spans:
                flat[plan.offsets[index] + kept] = (
                    solution[start : start + width]
                )
                start += width
        np.minimum(flat, 0.0, out=flat)

    # One exp over every tree at once: elementwise, so each entry is
    # bit-identical to the per-tree np.exp the loop mode applies (the
    # never-kept entries stay exp(0) = 1).
    return plan.results(np.exp(flat))
