"""The factorization-reusing inference engine (LIA's hot path).

The paper stresses that "the inference method is fast": after the
augmented matrix ``A`` is built once per network, per-snapshot inference
should cost little more than a pair of triangular solves.  The seed code
met the first half (cached intersecting pairs) but re-ran the phase-2
column reduction *and* re-factorized ``R*`` from scratch on every
``infer()`` call — even when consecutive snapshots keep exactly the same
column set, which is the common case for rolling-window monitoring and
every fig*/table* campaign.

:class:`InferenceEngine` closes that gap.  It owns the cached
:class:`~repro.core.augmented.IntersectingPairs`, memoizes phase-2
reductions keyed by (variance vector, cutoff), and memoizes the thin QR
factorization of ``R*`` keyed by the kept-column set
(:class:`FactorizationCache`).  :meth:`InferenceEngine.infer_batch`
solves a whole window of snapshots as one multi-RHS triangular solve
against a single factorization.

:class:`repro.core.lia.LossInferenceAlgorithm` is the user-facing wrapper
bound to this engine; the delay and monitoring layers reuse the same
caches through it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.core.augmented import IntersectingPairs, intersecting_pairs
from repro.core.linalg import QRFactorization
from repro.core.reduction import (
    REDUCTION_STRATEGIES,
    ReductionResult,
    reduce_to_full_rank,
)
from repro.core.variance import (
    VARIANCE_METHODS,
    VarianceEstimate,
    estimate_link_variances,
)
from repro.probing.snapshot import MeasurementCampaign, Snapshot
from repro.topology.routing import RoutingMatrix


@dataclass(frozen=True)
class LIAResult:
    """Inferred link performance for one snapshot."""

    transmission_rates: np.ndarray  # per routing-matrix column, in (0, 1]
    variance_estimate: VarianceEstimate
    reduction: ReductionResult

    @property
    def loss_rates(self) -> np.ndarray:
        return 1.0 - self.transmission_rates

    @property
    def num_links(self) -> int:
        return int(self.transmission_rates.shape[0])

    def congested_links(self, threshold: float) -> np.ndarray:
        """Boolean mask of links whose inferred loss rate exceeds *threshold*."""
        return self.loss_rates > threshold


class FactorizationCache:
    """LRU cache of thin QR factorizations of kept-column blocks ``R*``.

    Holds the routing matrix once (as CSC for cheap column slicing) and
    hands out :class:`~repro.core.linalg.QRFactorization` objects keyed
    by the kept-column index set.  Consecutive inferences with the same
    kept set — rolling-window monitoring, consecutive-snapshot
    experiments, every batch — pay for one factorization total.

    With ``downdate_limit > 0``, a requested kept set that is a subset
    of a cached one missing at most that many columns — the
    rolling-monitor pattern where a variance refresh exonerates a link
    or two — is served by *downdating* the cached factorization with
    Givens rotations
    (:meth:`~repro.core.linalg.QRFactorization.remove_column`) instead
    of refactorizing from scratch: O(m k) per removed column versus
    O(m k^2) for a fresh QR.  The downdated factors equal a fresh QR
    only to working precision, so the default is 0 (off) and long-lived
    consumers (:class:`repro.monitor.OnlineLossMonitor`) opt in; batch
    experiment pipelines stay bit-identical to a cold engine.
    """

    def __init__(
        self, matrix, max_entries: int = 8, downdate_limit: int = 0
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if downdate_limit < 0:
            raise ValueError("downdate_limit must be non-negative")
        if sparse.issparse(matrix):
            self._matrix = matrix.tocsc().astype(np.float64)
        else:
            dense = np.asarray(matrix, dtype=np.float64)
            if dense.ndim != 2:
                raise ValueError("matrix must be two-dimensional")
            self._matrix = sparse.csc_matrix(dense)
        self.max_entries = max_entries
        self.downdate_limit = downdate_limit
        self._cache: "OrderedDict[bytes, QRFactorization]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.downdates = 0

    @property
    def num_rows(self) -> int:
        return int(self._matrix.shape[0])

    @property
    def num_columns(self) -> int:
        return int(self._matrix.shape[1])

    def __len__(self) -> int:
        return len(self._cache)

    def block(self, kept: np.ndarray) -> np.ndarray:
        """The dense kept-column block ``R*`` (never the full matrix)."""
        kept = np.asarray(kept, dtype=np.int64)
        return np.asarray(self._matrix[:, kept].todense(), dtype=np.float64)

    def factorization(self, kept: np.ndarray) -> QRFactorization:
        """The (cached) thin QR of ``R*`` for this kept-column set."""
        kept = np.asarray(kept, dtype=np.int64)
        key = kept.tobytes()
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached
        factorization = self._downdate_from_superset(kept)
        if factorization is not None:
            self.downdates += 1
        else:
            self.misses += 1
            factorization = QRFactorization.factorize(
                self.block(kept), columns=kept
            )
        self._cache[key] = factorization
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return factorization

    def _downdate_from_superset(
        self, kept: np.ndarray
    ) -> Optional[QRFactorization]:
        """Givens-downdate a cached superset factorization, if one is close.

        Scans most-recently-used first for a full-rank cached
        factorization whose column set contains *kept* with at most
        ``downdate_limit`` extras; the best (fewest-extras) candidate is
        shrunk column by column.  Returns ``None`` when no candidate
        exists or the downdated factorization lost full rank (the caller
        then refactorizes from scratch).
        """
        if self.downdate_limit == 0 or not len(self._cache):
            return None
        wanted = set(int(c) for c in kept)
        best: Optional[QRFactorization] = None
        for candidate in reversed(self._cache.values()):
            extra = len(candidate.columns) - len(wanted)
            if not 0 < extra <= self.downdate_limit:
                continue
            if best is not None and extra >= len(best.columns) - len(wanted):
                continue
            if wanted.issubset(candidate.columns) and candidate.is_full_rank():
                best = candidate
                if extra == 1:
                    break
        if best is None:
            return None
        factorization = best
        for position in reversed(
            [i for i, c in enumerate(best.columns) if c not in wanted]
        ):
            factorization = factorization.remove_column(position)
        if not factorization.is_full_rank():
            return None  # numerically degraded; fall back to a fresh QR
        return factorization


class ReductionCache:
    """LRU memo of phase-2 column reductions for one routing matrix.

    Keyed by (strategy, variance vector, cutoff): a rolling monitor — or
    any consumer re-inferring against one variance estimate — re-reduces
    only when the estimate or a reduction knob actually changes.  Shared
    by :class:`InferenceEngine` and the delay layer
    (:class:`repro.delay.inference.DelayInferenceAlgorithm`), which used
    to reimplement the same memoized kept-column selection by hand.
    """

    def __init__(self, matrix, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._matrix = matrix
        self.max_entries = max_entries
        self._cache: "OrderedDict[Tuple[str, bytes, Optional[float]], ReductionResult]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._cache)

    def reduce(
        self,
        variances: np.ndarray,
        strategy: str,
        variance_cutoff: Optional[float] = None,
    ) -> ReductionResult:
        """The (memoized) reduction for one variance vector."""
        variances = np.asarray(variances, dtype=np.float64)
        key = (strategy, variances.tobytes(), variance_cutoff)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            return cached
        reduction = reduce_to_full_rank(
            self._matrix,
            variances,
            strategy=strategy,
            variance_cutoff=variance_cutoff,
        )
        self._cache[key] = reduction
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return reduction


class InferenceEngine:
    """LIA phases 1+2 with every reusable intermediate cached.

    Parameters mirror :class:`repro.core.lia.LossInferenceAlgorithm`
    (which delegates here); see its docstring for the statistical
    meaning of each knob.  *max_cached_factorizations* bounds the
    kept-column-set LRU; the reduction memo is bounded to the same size.
    """

    def __init__(
        self,
        routing: RoutingMatrix,
        variance_method: str = "wls",
        reduction_strategy: str = "threshold",
        drop_negative: bool = True,
        floor: Optional[float] = None,
        congestion_threshold: float = 0.002,
        cutoff_scale: float = 16.0,
        max_cached_factorizations: int = 8,
    ) -> None:
        if variance_method not in VARIANCE_METHODS:
            raise ValueError(f"unknown variance method {variance_method!r}")
        if reduction_strategy not in REDUCTION_STRATEGIES:
            raise ValueError(f"unknown reduction strategy {reduction_strategy!r}")
        if not 0 < congestion_threshold < 1:
            raise ValueError("congestion_threshold must be in (0, 1)")
        if cutoff_scale <= 0:
            raise ValueError("cutoff_scale must be positive")
        self.routing = routing
        self.variance_method = variance_method
        self.reduction_strategy = reduction_strategy
        self.drop_negative = drop_negative
        self.floor = floor
        self.congestion_threshold = congestion_threshold
        self.cutoff_scale = cutoff_scale
        self._pairs: Optional[IntersectingPairs] = None
        self._routing_sparse = routing.to_sparse()
        self._factorizations = FactorizationCache(
            self._routing_sparse, max_entries=max_cached_factorizations
        )
        self._reductions = ReductionCache(
            self._routing_sparse, max_entries=max_cached_factorizations
        )

    # -- cached structures ----------------------------------------------------

    @property
    def pairs(self) -> IntersectingPairs:
        """The (cached) non-zero rows of the augmented matrix A."""
        if self._pairs is None:
            self._pairs = intersecting_pairs(self.routing.matrix)
        return self._pairs

    @pairs.setter
    def pairs(self, value: IntersectingPairs) -> None:
        """Adopt a pre-built structure (a monitoring service hands it down)."""
        if value.num_links != self.routing.num_links:
            raise ValueError("pairs do not match the routing matrix")
        self._pairs = value

    @property
    def factorization_cache(self) -> FactorizationCache:
        return self._factorizations

    # -- phase 1 ----------------------------------------------------------------

    def learn_variances(self, training: MeasurementCampaign) -> VarianceEstimate:
        """Estimate link variances from the m training snapshots."""
        if training.routing is not self.routing and not np.array_equal(
            training.routing.matrix, self.routing.matrix
        ):
            raise ValueError("campaign routing matrix differs from LIA's")
        return estimate_link_variances(
            training,
            method=self.variance_method,
            drop_negative=self.drop_negative,
            floor=self.floor,
            pairs=self.pairs,
        )

    # -- phase 2 ----------------------------------------------------------------

    def variance_cutoff(self, num_probes: int) -> Optional[float]:
        """The threshold strategy's physics cutoff for this probe count."""
        if self.reduction_strategy != "threshold":
            return None
        return self.cutoff_scale * self.congestion_threshold / num_probes

    def reduce(
        self, estimate: VarianceEstimate, num_probes: int
    ) -> ReductionResult:
        """Memoized phase-2 reduction for one variance estimate.

        Delegates to the shared :class:`ReductionCache`, so a rolling
        monitor re-reduces only when it re-learns variances (or the
        snapshot probe count or a reduction knob changes), not on every
        snapshot.
        """
        self._check_estimate(estimate)
        return self._reductions.reduce(
            estimate.variances,
            self.reduction_strategy,
            self.variance_cutoff(num_probes),
        )

    def _check_estimate(self, estimate: VarianceEstimate) -> None:
        if estimate.num_links != self.routing.num_links:
            raise ValueError("variance vector does not match routing matrix")

    def _solve_reduced(
        self, reduction: ReductionResult, y: np.ndarray
    ) -> np.ndarray:
        """Solve ``Y = R* X*`` via the cached factorization; re-embed and clip.

        *y* is one log-rate vector ``(n_p,)`` or a stack ``(s, n_p)``;
        the stacked form is a single multi-RHS triangular solve.
        """
        kept = reduction.kept_columns
        num_cols = self.routing.num_links
        shape = (num_cols,) if y.ndim == 1 else (y.shape[0], num_cols)
        x_full = np.zeros(shape, dtype=np.float64)
        if len(kept) == 0:
            return x_full
        factorization = self._factorizations.factorization(kept)
        rhs = y if y.ndim == 1 else y.T
        if factorization.is_full_rank():
            x_star = factorization.solve(rhs)
        else:
            # Every built-in strategy keeps an independent set, but a
            # hand-built ReductionResult may not; match the seed's
            # minimum-norm lstsq behaviour there.
            x_star, *_ = np.linalg.lstsq(
                self._factorizations.block(kept), rhs, rcond=None
            )
        x_star = np.minimum(x_star, 0.0)
        if y.ndim == 1:
            x_full[kept] = x_star
        else:
            x_full[:, kept] = x_star.T
        return x_full

    # -- inference ---------------------------------------------------------------

    def infer(
        self, snapshot: Snapshot, estimate: VarianceEstimate
    ) -> LIAResult:
        """Infer link loss rates on one snapshot using learned variances."""
        reduction = self.reduce(estimate, snapshot.num_probes)
        y = snapshot.path_log_rates(self.floor)
        x = self._solve_reduced(reduction, y)
        return LIAResult(
            transmission_rates=np.exp(x),
            variance_estimate=estimate,
            reduction=reduction,
        )

    def infer_batch(
        self, snapshots: Sequence[Snapshot], estimate: VarianceEstimate
    ) -> List[LIAResult]:
        """Infer many snapshots against one variance estimate.

        Snapshots sharing a kept-column set (all of them, in the common
        fixed-probe-count case) are solved as one multi-RHS system with
        one factorization.  Results match per-snapshot :meth:`infer` to
        machine precision (the multi-RHS triangular solve may reorder
        sums); order follows the input.
        """
        snapshots = list(snapshots)
        results: List[Optional[LIAResult]] = [None] * len(snapshots)
        groups: "OrderedDict[bytes, Tuple[ReductionResult, List[int]]]" = (
            OrderedDict()
        )
        for index, snapshot in enumerate(snapshots):
            reduction = self.reduce(estimate, snapshot.num_probes)
            entry = groups.setdefault(reduction.key(), (reduction, []))
            entry[1].append(index)
        for reduction, indices in groups.values():
            Y = np.vstack(
                [snapshots[i].path_log_rates(self.floor) for i in indices]
            )
            X = self._solve_reduced(reduction, Y)
            rates = np.exp(X)
            for row, index in enumerate(indices):
                results[index] = LIAResult(
                    transmission_rates=rates[row],
                    variance_estimate=estimate,
                    reduction=reduction,
                )
        return results  # type: ignore[return-value]

    # -- end-to-end ---------------------------------------------------------------

    def run(
        self,
        campaign: MeasurementCampaign,
        num_training: Optional[int] = None,
    ) -> LIAResult:
        """Learn on the first ``m`` snapshots, infer on the last one."""
        training, target = campaign.split_training_target(num_training)
        estimate = self.learn_variances(training)
        return self.infer(target, estimate)
