"""Phase 1 of LIA: estimating the link variances (Section 5.1).

Solves the overdetermined system ``Sigma_hat* = A v`` for the vector of
link log-rate variances ``v``.  Theorem 1 guarantees ``A`` has full
column rank, so the least-squares solution is unique; the estimator is a
special case of the generalised method of moments (consistent, no
distributional assumption, no iterative MLE).

Seven interchangeable solvers:

``"wls"`` (default)
    feasible generalised least squares: each covariance equation is
    weighted by the inverse of its sampling variance,
    ``var(Sigma_hat_ij) ~= (Sigma_ii Sigma_jj + Sigma_ij^2) / (m - 1)``
    (the Wishart second moment), estimated from the sample path
    variances.  Equations between quiet path pairs carry far less noise
    than those crossing congested links; weighting them up sharpens the
    good/congested variance separation dramatically on meshes.  This is
    the efficient-GMM refinement of the paper's estimator.
``"lsmr"``
    unweighted sparse iterative least squares (the paper's plain LS, at
    scale).
``"normal"``
    dense normal equations ``A^T A v = A^T s`` assembled from the sparse
    rows (exact, fast when ``n_c`` is moderate).
``"qr"``
    the paper's dense Householder QR (reference implementation).
``"nnls"``
    non-negative least squares — variances are non-negative by
    definition, so projecting onto the feasible set is a natural
    extension (ablated in the benchmarks).
``"sparse"``
    exact normal equations with the Gram matrix kept sparse and
    factorized via SuperLU (:mod:`repro.core.sparse_solvers`) — the
    scalable analogue of ``"normal"`` for 10k-link meshes.
``"cg"``
    Jacobi-preconditioned conjugate gradients on the normal equations,
    matrix-free — for systems where even the sparse Gram factor is too
    large.

``"wls"`` and ``"normal"`` route onto the sparse factorization
automatically once the system is wider than
:data:`repro.core.sparse_solvers.SPARSE_AUTO_THRESHOLD` columns; below
it the historical dense path runs unchanged.

Equations with negative sample covariance are dropped first, as in the
paper.  The filtering, WLS row scaling, underdetermined-system guard and
residual bookkeeping live in :func:`solve_covariance_system`, which the
delay layer shares so the two phase-1 implementations cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import optimize, sparse
from scipy.sparse import linalg as sparse_linalg

from repro.core import sparse_solvers
from repro.core.augmented import IntersectingPairs, intersecting_pairs
from repro.core.covariance import (
    CovarianceSummary,
    negative_pair_mask,
    sample_covariance_pairs,
)
from repro.core.linalg import solve_least_squares_qr
from repro.probing.snapshot import MeasurementCampaign

VARIANCE_METHODS = ("wls", "lsmr", "normal", "qr", "nnls", "sparse", "cg")


@dataclass(frozen=True)
class VarianceEstimate:
    """Estimated link variances plus estimation diagnostics.

    ``residual_norm`` is always the residual of the *unweighted* system
    ``||A v - sigma||`` over the equations that survived filtering, so it
    is comparable across every solver; for ``"wls"`` the residual of the
    row-scaled system the solver actually minimised is exposed separately
    as ``weighted_residual_norm`` (``None`` for unweighted methods).
    """

    variances: np.ndarray
    method: str
    covariance_summary: CovarianceSummary
    residual_norm: float
    weighted_residual_norm: Optional[float] = None

    @property
    def num_links(self) -> int:
        return int(self.variances.shape[0])

    def order_by_variance(self) -> np.ndarray:
        """Column indices sorted by increasing variance (phase-2 input)."""
        return np.argsort(self.variances, kind="stable")


@dataclass(frozen=True)
class Phase1Solution:
    """The solved system plus residual diagnostics (shared back end)."""

    variances: np.ndarray
    residual_norm: float
    weighted_residual_norm: Optional[float]
    num_equations: int


def estimate_link_variances(
    campaign: MeasurementCampaign,
    method: str = "wls",
    drop_negative: bool = True,
    floor: Optional[float] = None,
    pairs: Optional[IntersectingPairs] = None,
) -> VarianceEstimate:
    """Run phase 1 on a training campaign.

    Parameters
    ----------
    campaign:
        The ``m`` training snapshots over a fixed routing matrix.
    method:
        One of :data:`VARIANCE_METHODS`.
    drop_negative:
        Drop equations whose sample covariance is negative (the paper's
        rule).  The redundant system tolerates the removal.
    floor:
        Continuity floor for the log transform (default ``0.5 / S``).
    pairs:
        Pre-built intersecting-pairs structure; pass it when running many
        campaigns over one routing matrix ("we only need to do this once
        for the whole network").
    """
    if method not in VARIANCE_METHODS:
        raise ValueError(f"unknown method {method!r}, want one of {VARIANCE_METHODS}")
    if len(campaign) < 2:
        raise ValueError("variance estimation needs at least two snapshots")

    if pairs is None:
        pairs = intersecting_pairs(campaign.routing.matrix)
    log_matrix = campaign.log_matrix(floor)
    sigma = sample_covariance_pairs(log_matrix, pairs.pair_i, pairs.pair_j)

    summary = CovarianceSummary(
        num_snapshots=len(campaign),
        num_pairs=pairs.num_pairs,
        num_negative=int(negative_pair_mask(sigma).sum()),
    )
    weights = None
    if method == "wls":
        weights = _equation_weights(log_matrix, pairs, sigma)
    solution = solve_covariance_system(
        pairs.matrix, sigma, method=method, weights=weights,
        drop_negative=drop_negative,
    )
    return VarianceEstimate(
        variances=solution.variances,
        method=method,
        covariance_summary=summary,
        residual_norm=solution.residual_norm,
        weighted_residual_norm=solution.weighted_residual_norm,
    )


def solve_covariance_system(
    matrix: sparse.csr_matrix,
    sigma: np.ndarray,
    method: str = "wls",
    weights: Optional[np.ndarray] = None,
    drop_negative: bool = True,
) -> Phase1Solution:
    """Shared phase-1 back end: filter, weight, solve, residuals.

    Both the loss layer (log-rate covariances) and the delay layer
    (delay covariances) reduce to the same overdetermined system
    ``sigma = A v``; this helper owns the negative-equation filter, the
    WLS row scaling, the underdetermined-system guard and the residual
    bookkeeping so the two cannot drift apart.  *matrix* is the sparse
    augmented matrix (``IntersectingPairs.matrix``) and *weights*, when
    given, scales each equation before the solve (already filtered
    equations drop their weights too).
    """
    if method not in VARIANCE_METHODS:
        raise ValueError(f"unknown method {method!r}, want one of {VARIANCE_METHODS}")
    keep = None
    if drop_negative:
        negative = negative_pair_mask(sigma)
        if negative.any():
            keep = ~negative
    plain = matrix if keep is None else matrix[keep]
    target = sigma if keep is None else sigma[keep]
    if plain.shape[0] < plain.shape[1]:
        raise ValueError(
            f"after filtering, {plain.shape[0]} equations remain for "
            f"{plain.shape[1]} unknowns; take more snapshots or keep negatives"
        )
    if weights is not None:
        kept_weights = weights if keep is None else weights[keep]
        A = sparse.diags(kept_weights) @ plain
        b = kept_weights * target
    else:
        A, b = plain, target

    v = _solve(A, b, method)
    residual = float(np.linalg.norm(plain @ v - target))
    weighted_residual = (
        float(np.linalg.norm(A @ v - b)) if weights is not None else None
    )
    return Phase1Solution(
        variances=v,
        residual_norm=residual,
        weighted_residual_norm=weighted_residual,
        num_equations=int(plain.shape[0]),
    )


def _equation_weights(
    measurements: np.ndarray, pairs: IntersectingPairs, sigma: np.ndarray
) -> np.ndarray:
    """Square-root inverse sampling variance of each covariance equation.

    ``var(Sigma_hat_ij) ~= (Sigma_ii Sigma_jj + Sigma_ij^2) / (m - 1)``;
    the per-path variances are taken from the sample (*measurements* is
    the ``(m, n_p)`` matrix the covariances were computed from — log
    rates for the loss layer, raw delays for the delay layer).  Floored
    so that perfectly quiet path pairs (zero sample variance) cannot
    produce infinite weights.
    """
    return _equation_weights_from_moments(
        measurements.var(axis=0, ddof=1),
        pairs,
        sigma,
        measurements.shape[0],
    )


def _equation_weights_from_moments(
    path_variances: np.ndarray,
    pairs: IntersectingPairs,
    sigma: np.ndarray,
    num_snapshots: int,
) -> np.ndarray:
    """:func:`_equation_weights` from pre-computed per-path variances."""
    eq_var = (
        path_variances[pairs.pair_i] * path_variances[pairs.pair_j] + sigma**2
    ) / max(num_snapshots - 1, 1)
    floor = max(float(eq_var.max()) * 1e-9, 1e-30)
    return 1.0 / np.sqrt(np.maximum(eq_var, floor))


def estimate_link_variances_from_moments(
    pairs: IntersectingPairs,
    sigma: np.ndarray,
    path_variances: np.ndarray,
    num_snapshots: int,
    method: str = "wls",
    drop_negative: bool = True,
) -> VarianceEstimate:
    """Phase 1 from pre-computed window moments (the streaming path).

    A rolling monitor maintains per-equation covariance sums
    incrementally — O(pairs) per snapshot — instead of re-reading the
    whole window; this entry point runs the same filtering, weighting
    and solve as :func:`estimate_link_variances` on those moments
    without ever materialising the ``(m, n_p)`` measurement matrix.
    *sigma* is the per-pair sample covariance vector (entry order
    matching *pairs*), *path_variances* the per-path sample variances.
    """
    if method not in VARIANCE_METHODS:
        raise ValueError(f"unknown method {method!r}, want one of {VARIANCE_METHODS}")
    if num_snapshots < 2:
        raise ValueError("variance estimation needs at least two snapshots")
    sigma = np.asarray(sigma, dtype=np.float64)
    if sigma.shape != (pairs.num_pairs,):
        raise ValueError("one covariance per intersecting pair required")
    summary = CovarianceSummary(
        num_snapshots=num_snapshots,
        num_pairs=pairs.num_pairs,
        num_negative=int(negative_pair_mask(sigma).sum()),
    )
    weights = None
    if method == "wls":
        weights = _equation_weights_from_moments(
            np.asarray(path_variances, dtype=np.float64),
            pairs,
            sigma,
            num_snapshots,
        )
    solution = solve_covariance_system(
        pairs.matrix, sigma, method=method, weights=weights,
        drop_negative=drop_negative,
    )
    return VarianceEstimate(
        variances=solution.variances,
        method=method,
        covariance_summary=summary,
        residual_norm=solution.residual_norm,
        weighted_residual_norm=solution.weighted_residual_norm,
    )


def _solve(A: sparse.csr_matrix, b: np.ndarray, method: str) -> np.ndarray:
    if method == "lsmr":
        # Weighting can make the system badly conditioned; give the
        # iteration enough budget to actually converge.
        result = sparse_linalg.lsmr(
            A, b, atol=1e-13, btol=1e-13, conlim=1e14,
            maxiter=max(20 * A.shape[1], 2000),
        )
        return np.asarray(result[0], dtype=np.float64)
    if method in ("normal", "wls"):
        if sparse_solvers.use_sparse_normal(A.shape[1]):
            # Above the crossover a dense Gram matrix is the memory
            # bottleneck; the sparse factorization solves the identically
            # regularized system.
            return sparse_solvers.solve_normal_sparse(A, b)
        # Exact normal equations.  n_c x n_c stays dense-friendly into the
        # thousands, and unlike iterative solvers the answer does not
        # degrade with the conditioning the WLS weights introduce.
        AtA = (A.T @ A).toarray()
        Atb = A.T @ b
        # Tiny Tikhonov term guards against numerically repeated columns;
        # Theorem 1 makes AtA nonsingular in exact arithmetic.
        ridge = 1e-10 * np.trace(AtA) / max(AtA.shape[0], 1)
        return np.linalg.solve(AtA + ridge * np.eye(AtA.shape[0]), Atb)
    if method == "sparse":
        return sparse_solvers.solve_normal_sparse(A, b)
    if method == "cg":
        return sparse_solvers.solve_normal_cg(A, b)
    if method == "qr":
        return solve_least_squares_qr(A.toarray(), b)
    if method == "nnls":
        dense = A.toarray()
        solution, _ = optimize.nnls(dense, b)
        return solution
    raise AssertionError(f"unreachable method {method}")


def variance_recovery_error(
    estimate: VarianceEstimate, true_variances: np.ndarray
) -> float:
    """Relative L2 error against ground-truth variances (for tests/benches)."""
    truth = np.asarray(true_variances, dtype=np.float64)
    if truth.shape != estimate.variances.shape:
        raise ValueError("variance vectors must align")
    denom = np.linalg.norm(truth)
    if denom == 0.0:
        return float(np.linalg.norm(estimate.variances))
    return float(np.linalg.norm(estimate.variances - truth) / denom)
