"""The augmented matrix ``A`` of Definition 1.

``A`` stacks, for every ordered pair of paths ``i <= j``, the element-wise
product ``R_i* (x) R_j*`` of their routing-matrix rows.  Because ``R`` is
binary, the product row marks the links shared by paths ``i`` and ``j``
(for ``i == j`` it is simply ``R_i*``).  Lemma 1 turns the covariance
relation ``Sigma = R diag(v) R^T`` into the linear system
``Sigma* = A v``; Theorem 1 shows ``A`` has full column rank under T.1-2,
making the link variances ``v`` identifiable.

Most path pairs share no link, so most rows of ``A`` are zero and
constrain nothing.  The sparse builder therefore materialises only the
*intersecting* pairs — the paper's "many redundant covariance equations"
drop out for free — while the dense builder reproduces the textbook
object for tests, small systems and the paper's worked example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np
from scipy import sparse


def num_pair_rows(num_paths: int) -> int:
    """Number of rows of ``A``: ``n_p (n_p + 1) / 2``."""
    return num_paths * (num_paths + 1) // 2


def pair_row_index(i, j, num_paths: int):
    """Canonical row index of the pair ``(i, j)`` with ``i <= j``.

    Rows are ordered (0,0), (0,1), ..., (0,n-1), (1,1), (1,2), ...; this
    is the usual flattening of the upper triangle.  Accepts scalars or
    numpy arrays (vectorised).
    """
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    if np.any(i > j):
        raise ValueError("pair_row_index requires i <= j")
    if np.any((i < 0) | (j >= num_paths)):
        raise ValueError("pair indices out of range")
    idx = i * num_paths - (i * (i - 1)) // 2 + (j - i)
    if idx.ndim == 0:
        return int(idx)
    return idx


def pair_from_row_index(row: int, num_paths: int) -> Tuple[int, int]:
    """Invert :func:`pair_row_index` (scalar only)."""
    if not 0 <= row < num_pair_rows(num_paths):
        raise ValueError(f"row {row} out of range")
    i = 0
    remaining = row
    # The i-th block has (num_paths - i) rows.
    while remaining >= num_paths - i:
        remaining -= num_paths - i
        i += 1
    return i, i + remaining


def augmented_matrix(routing_matrix: np.ndarray) -> np.ndarray:
    """Dense ``A`` with the canonical row ordering (all pairs, zero rows kept).

    Shape ``(n_p (n_p + 1) / 2, n_c)``.  Intended for small systems; the
    large-scale path is :func:`intersecting_pairs`.
    """
    R = np.asarray(routing_matrix, dtype=np.float64)
    if R.ndim != 2:
        raise ValueError("routing matrix must be two-dimensional")
    n_paths, n_links = R.shape
    A = np.empty((num_pair_rows(n_paths), n_links), dtype=np.float64)
    cursor = 0
    for i in range(n_paths):
        block = R[i] * R[i:]
        A[cursor : cursor + (n_paths - i)] = block
        cursor += n_paths - i
    return A


@dataclass(frozen=True)
class IntersectingPairs:
    """Sparse ``A`` restricted to path pairs that share at least one link.

    Attributes
    ----------
    matrix:
        CSR matrix of shape ``(num_pairs, n_c)``; row ``r`` is
        ``R_{pair_i[r]}* (x) R_{pair_j[r]}*``.
    pair_i, pair_j:
        The path indices of each retained row (``pair_i <= pair_j``).
    """

    matrix: sparse.csr_matrix
    pair_i: np.ndarray
    pair_j: np.ndarray

    @property
    def num_pairs(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def num_links(self) -> int:
        return int(self.matrix.shape[1])


def intersecting_pairs(routing_matrix: np.ndarray) -> IntersectingPairs:
    """Build the non-zero rows of ``A`` column by column.

    For each link ``k`` with path set ``S_k``, every pair drawn from
    ``S_k`` contributes a 1 in column ``k``.  Collecting the upper
    triangle of ``S_k x S_k`` per column gives exactly the non-zero
    entries of ``A``; pairs sharing no link never appear.  Zero rows are
    redundant in the least-squares sense (they constrain no variance), so
    dropping them leaves the estimate unchanged.
    """
    R = np.asarray(routing_matrix)
    if R.ndim != 2:
        raise ValueError("routing matrix must be two-dimensional")
    n_paths, n_links = R.shape

    row_keys: List[np.ndarray] = []
    col_ids: List[np.ndarray] = []
    for k in range(n_links):
        members = np.flatnonzero(R[:, k])
        if len(members) == 0:
            continue
        iu, ju = np.triu_indices(len(members))
        keys = pair_row_index(members[iu], members[ju], n_paths)
        row_keys.append(np.atleast_1d(keys))
        col_ids.append(np.full(len(iu), k, dtype=np.int64))

    if not row_keys:
        raise ValueError("routing matrix covers no links")
    return _assemble_pairs(
        np.concatenate(row_keys), np.concatenate(col_ids), n_paths, n_links
    )


def _assemble_pairs(
    all_keys: np.ndarray, all_cols: np.ndarray, n_paths: int, n_links: int
) -> IntersectingPairs:
    """Turn (canonical pair key, column) entries into an IntersectingPairs."""
    unique_keys, compact_rows = np.unique(all_keys, return_inverse=True)

    matrix = sparse.csr_matrix(
        (
            np.ones(len(all_keys), dtype=np.float64),
            (compact_rows, all_cols),
        ),
        shape=(len(unique_keys), n_links),
    )

    # Recover (i, j) for each retained row from the canonical key.
    pair_i = np.empty(len(unique_keys), dtype=np.int64)
    pair_j = np.empty(len(unique_keys), dtype=np.int64)
    # Vectorised inversion: find i via the block structure.
    block_starts = np.cumsum(
        np.concatenate(([0], np.arange(n_paths, 0, -1)))
    )  # start key of each i-block
    i_of = np.searchsorted(block_starts, unique_keys, side="right") - 1
    pair_i[:] = i_of
    pair_j[:] = unique_keys - block_starts[i_of] + i_of
    return IntersectingPairs(matrix=matrix, pair_i=pair_i, pair_j=pair_j)


def augmented_rank(routing_matrix: np.ndarray, tol: float = None) -> int:
    """Rank of ``A`` (via its non-zero rows; zero rows cannot add rank)."""
    pairs = intersecting_pairs(routing_matrix)
    dense = pairs.matrix.toarray()
    return int(np.linalg.matrix_rank(dense, tol=tol))


def has_identifiable_variances(routing_matrix: np.ndarray) -> bool:
    """Lemma 2: variances are identifiable iff ``A`` has full column rank."""
    R = np.asarray(routing_matrix)
    return augmented_rank(R) == R.shape[1]


class AugmentedMatrixBuilder:
    """Incrementally maintained augmented matrix.

    Section 5.1 notes that when beacons come and go "only the rows
    corresponding to the changes need to be updated".  This builder keeps
    the per-link path sets and rebuilds lazily, recomputing the pair list
    only for columns whose membership changed since the last build; the
    untouched columns' pair lists are reused verbatim.  It is the
    bookkeeping object a long-running monitoring service would hold.

    Paths carry stable internal ids (rows are ids in insertion order, so
    id order and row order always agree); per-column pair lists are
    cached in id space and translated to current row indices only during
    :meth:`build`, which makes path removal — which renumbers every later
    row — a cheap vectorised re-translation instead of a rebuild.
    """

    def __init__(self, num_links: int) -> None:
        if num_links <= 0:
            raise ValueError("num_links must be positive")
        self.num_links = num_links
        self._path_links: List[np.ndarray] = []
        self._path_ids: List[int] = []
        self._next_id = 0
        self._column_members: List[Set[int]] = [set() for _ in range(num_links)]
        # Column -> (i_ids, j_ids) pair arrays in stable-id space.
        self._column_pairs: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._dirty_columns: Set[int] = set()
        self._rows_renumbered = True
        self._cache: Optional[IntersectingPairs] = None

    @property
    def num_paths(self) -> int:
        return len(self._path_links)

    @property
    def _dirty(self) -> bool:
        return self._cache is None or bool(self._dirty_columns) or self._rows_renumbered

    def add_path(self, link_columns) -> int:
        """Register a path by its routing-matrix column indices; return row."""
        cols = np.unique(np.asarray(link_columns, dtype=np.int64))
        if len(cols) == 0:
            raise ValueError("a path must traverse at least one link")
        if cols[0] < 0 or cols[-1] >= self.num_links:
            raise ValueError("column index out of range")
        path_id = self._next_id
        self._next_id += 1
        self._path_links.append(cols)
        self._path_ids.append(path_id)
        for col in cols:
            self._column_members[int(col)].add(path_id)
            self._dirty_columns.add(int(col))
        self._rows_renumbered = True
        return len(self._path_links) - 1

    def remove_path(self, row: int) -> None:
        """Drop a path (rows above it shift down by one).

        Only the removed path's own columns are marked dirty; every other
        column keeps its cached pair list and is merely re-translated to
        the new row numbering at the next :meth:`build`.
        """
        if not 0 <= row < len(self._path_links):
            raise IndexError(f"no path row {row}")
        cols = self._path_links[row]
        path_id = self._path_ids[row]
        del self._path_links[row]
        del self._path_ids[row]
        for col in cols:
            self._column_members[int(col)].discard(path_id)
            self._dirty_columns.add(int(col))
        self._rows_renumbered = True

    def routing_matrix(self) -> np.ndarray:
        R = np.zeros((len(self._path_links), self.num_links), dtype=np.uint8)
        for i, cols in enumerate(self._path_links):
            R[i, cols] = 1
        return R

    def build(self) -> IntersectingPairs:
        if not self._dirty:
            assert self._cache is not None
            return self._cache
        # Recompute pair lists only for columns whose membership changed.
        for col in self._dirty_columns:
            members = np.fromiter(
                self._column_members[col], dtype=np.int64, count=len(self._column_members[col])
            )
            members.sort()
            if len(members) == 0:
                self._column_pairs.pop(col, None)
                continue
            iu, ju = np.triu_indices(len(members))
            self._column_pairs[col] = (members[iu], members[ju])
        self._dirty_columns.clear()

        if not self._column_pairs:
            raise ValueError("routing matrix covers no links")
        # Translate stable ids to current rows (ids are row-ordered, so
        # this is one searchsorted per build) and assemble.
        id_order = np.asarray(self._path_ids, dtype=np.int64)
        n_paths = len(id_order)
        columns = sorted(self._column_pairs)
        key_blocks: List[np.ndarray] = []
        col_blocks: List[np.ndarray] = []
        for col in columns:
            i_ids, j_ids = self._column_pairs[col]
            i_rows = np.searchsorted(id_order, i_ids)
            j_rows = np.searchsorted(id_order, j_ids)
            keys = pair_row_index(i_rows, j_rows, n_paths)
            key_blocks.append(np.atleast_1d(keys))
            col_blocks.append(np.full(len(i_ids), col, dtype=np.int64))
        self._cache = _assemble_pairs(
            np.concatenate(key_blocks),
            np.concatenate(col_blocks),
            n_paths,
            self.num_links,
        )
        self._rows_renumbered = False
        return self._cache
