"""Identifiability checks (Section 4 of the paper).

Theorem 1: in any topology satisfying T.1 (time-invariant routing) and
T.2 (no route fluttering), the augmented matrix ``A`` has full column
rank, so the link variances are statistically identifiable.  These
utilities verify the theorem's premises and conclusion on concrete
routing matrices — both as a user-facing sanity check before deploying a
monitoring layout, and as the oracle for the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.augmented import augmented_rank
from repro.topology.fluttering import find_fluttering_pairs
from repro.topology.graph import Path
from repro.topology.routing import RoutingMatrix


@dataclass(frozen=True)
class IdentifiabilityReport:
    """Outcome of a full identifiability audit."""

    num_paths: int
    num_links: int
    routing_rank: int
    augmented_rank: int
    fluttering_pairs: Tuple[Tuple[int, int], ...]
    duplicate_columns: Tuple[Tuple[int, int], ...]

    @property
    def variances_identifiable(self) -> bool:
        """Lemma 2's criterion: A has full column rank."""
        return self.augmented_rank == self.num_links

    @property
    def means_identifiable(self) -> bool:
        """First-order identifiability: R itself has full column rank.

        Generally false — the rank deficiency of R is the paper's whole
        starting point.
        """
        return self.routing_rank == self.num_links

    @property
    def assumptions_hold(self) -> bool:
        return not self.fluttering_pairs and not self.duplicate_columns

    def summary(self) -> str:
        lines = [
            f"paths={self.num_paths} links={self.num_links}",
            f"rank(R)={self.routing_rank} (means identifiable: "
            f"{self.means_identifiable})",
            f"rank(A)={self.augmented_rank} (variances identifiable: "
            f"{self.variances_identifiable})",
        ]
        if self.fluttering_pairs:
            lines.append(
                f"T.2 violated by {len(self.fluttering_pairs)} fluttering pairs"
            )
        if self.duplicate_columns:
            lines.append(
                f"alias reduction incomplete: {len(self.duplicate_columns)} "
                "duplicate columns"
            )
        return "\n".join(lines)


def duplicate_column_pairs(matrix: np.ndarray) -> List[Tuple[int, int]]:
    """Pairs of identical columns (should be empty after alias reduction)."""
    R = np.asarray(matrix)
    seen: dict = {}
    duplicates: List[Tuple[int, int]] = []
    for col in range(R.shape[1]):
        key = R[:, col].tobytes()
        if key in seen:
            duplicates.append((seen[key], col))
        else:
            seen[key] = col
    return duplicates


def audit_identifiability(
    routing: RoutingMatrix, paths: Sequence[Path] = None
) -> IdentifiabilityReport:
    """Full audit of a monitoring layout.

    *paths* default to the routing matrix's own paths; pass them
    explicitly when auditing a physical path set before reduction.
    """
    if paths is None:
        paths = routing.paths
    flutters = tuple(find_fluttering_pairs(paths))
    duplicates = tuple(duplicate_column_pairs(routing.matrix))
    return IdentifiabilityReport(
        num_paths=routing.num_paths,
        num_links=routing.num_links,
        routing_rank=routing.rank(),
        augmented_rank=augmented_rank(routing.matrix),
        fluttering_pairs=flutters,
        duplicate_columns=duplicates,
    )


def verify_theorem1(routing: RoutingMatrix, paths: Sequence[Path] = None) -> bool:
    """Check Theorem 1's implication on a concrete instance.

    Returns True when either the premises fail (nothing to check) or the
    conclusion holds; False indicates a counterexample to the theorem —
    the property-based test suite asserts this never happens.
    """
    report = audit_identifiability(routing, paths)
    if not report.assumptions_hold:
        return True
    return report.variances_identifiable


def theoretical_variance_from_truth(
    routing: RoutingMatrix, log_link_rates_per_snapshot: np.ndarray
) -> np.ndarray:
    """Empirical per-column variance of ground-truth log link rates.

    Helper for tests: with the matrix of per-snapshot virtual-link log
    rates (shape ``(m, n_c)``), returns the per-column sample variance —
    what phase 1 should recover as m grows.
    """
    X = np.asarray(log_link_rates_per_snapshot, dtype=np.float64)
    if X.ndim != 2 or X.shape[1] != routing.num_links:
        raise ValueError("expected (snapshots, num_links) matrix")
    if X.shape[0] < 2:
        raise ValueError("need at least two snapshots")
    return X.var(axis=0, ddof=1)
