"""Experiment harness: one runner per table/figure of the paper.

Every module exposes ``run(scale, seed) -> ExperimentResult``; the
registry below maps experiment ids to runners.  Use the CLI::

    python -m repro.experiments fig5 --scale small --seed 0
    python -m repro.experiments all --scale tiny
"""

from typing import Callable, Dict

from repro.experiments import (
    ablations,
    congestion_vs_analytic,
    duration,
    fig3_mean_variance,
    fig5_tree_accuracy,
    fig6_error_cdfs,
    fig7_rank_ratio,
    fig8_sweeps,
    fig9_cross_validation,
    table2_mesh_accuracy,
    table3_as_location,
    timing,
)
from repro.experiments.base import (
    SCALES,
    ExperimentResult,
    ScaleParams,
    prepare_topology,
    run_lia_trial,
    scale_params,
)

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig3": fig3_mean_variance.run,
    "fig5": fig5_tree_accuracy.run,
    "fig6": fig6_error_cdfs.run,
    "fig7": fig7_rank_ratio.run,
    "fig8": fig8_sweeps.run,
    "fig9": fig9_cross_validation.run,
    "table2": table2_mesh_accuracy.run,
    "table3": table3_as_location.run,
    "timing": timing.run,
    "duration": duration.run,
    "ablations": ablations.run,
    "congestion": congestion_vs_analytic.run,
}

__all__ = [
    "EXPERIMENTS",
    "SCALES",
    "ExperimentResult",
    "ScaleParams",
    "prepare_topology",
    "run_lia_trial",
    "scale_params",
]
