"""Command-line entry point for the experiment harness.

Examples::

    python -m repro.experiments fig5
    python -m repro.experiments table2 --scale paper --seed 7
    python -m repro.experiments all --scale tiny
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, SCALES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (table/figure number) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default="small",
        help="parameter preset: tiny (smoke), small (minutes), paper",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        result = EXPERIMENTS[name](scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"[{name} finished in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
