"""Command-line entry point for the experiment harness.

Examples::

    python -m repro.experiments fig5
    python -m repro.experiments table2 --scale paper --seed 7
    python -m repro.experiments all --scale tiny
    python -m repro.experiments fig8 --scale paper --jobs -1 \
        --cache-dir ~/.cache/repro-experiments
    python -m repro.experiments fig5 --jobs 4 --backend thread \
        --store-dir /tmp/repro-results
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.experiments import EXPERIMENTS, SCALES
from repro.runner import ParallelRunner
from repro.runner.args import add_runner_arguments, runner_from_args


def run_experiments(
    names: Sequence[str],
    scale: str,
    seed: Optional[int],
    runner: ParallelRunner,
) -> None:
    """Run experiments in order, printing each result and runner stats.

    Every experiment — timing and duration included — routes its trials
    through ``runner.run()``, so ``last_stats`` always describes the
    experiment just printed.
    """
    for name in names:
        start = time.perf_counter()
        result = EXPERIMENTS[name](scale=scale, seed=seed, runner=runner)
        elapsed = time.perf_counter() - start
        print(result.render())
        stats = runner.last_stats
        print(
            f"[{name} finished in {elapsed:.1f}s: "
            f"{stats.trials_executed} trials executed, "
            f"{stats.trials_cached} recalled from cache, "
            f"backend={runner.backend.name}, jobs={runner.n_jobs}]"
        )
        print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (table/figure number) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default="small",
        help="parameter preset: tiny (smoke), small (minutes), paper",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    add_runner_arguments(parser)
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    run_experiments(names, args.scale, args.seed, runner_from_args(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
