"""Figure 5: locating congested links on trees — LIA vs SCFS over m.

The paper's headline comparison: 1000-node trees (branching <= 10),
beacon at the root, destinations at the leaves, LLRD1 losses with
p = 10 % congested links.  DR and FPR are plotted against the number of
training snapshots m for LIA, against the single-snapshot SCFS baseline.

Expected shape: LIA dominates SCFS at every m (higher DR, lower FPR);
LIA improves with m; SCFS is flat (it never uses history).

Each repetition is one independent trial: it simulates a single
``max(grid)+1``-snapshot campaign and evaluates every m on suffixes of
it, so the trial — not the (rep, m) pair — is the schedulable unit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.api import EstimatorSpec, Scenario
from repro.experiments.base import (
    ExperimentResult,
    execute_trials,
    repetition_seeds,
    scale_params,
)
from repro.lossmodel import LLRD1
from repro.probing import ProberConfig
from repro.runner import ParallelRunner, TrialSpec
from repro.utils.tables import TextTable

SNAPSHOT_GRID = {
    "tiny": (5, 15),
    "small": (10, 30, 50),
    "paper": (10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
}


def trial(spec: TrialSpec) -> dict:
    """One repetition: a full campaign scored at every m plus SCFS.

    One declarative scenario: LIA is refitted on every suffix window of
    the m-grid (one engine, so the intersecting-pairs structure is built
    once and R* factorizations are shared across grid points); SCFS
    never uses history, so it is scored once on the target snapshot.
    """
    params = scale_params(spec.params["scale"])
    grid = tuple(spec.params["grid"])

    scenario = Scenario(
        topology="tree",
        params=params,
        prober=ProberConfig(
            probes_per_snapshot=params.probes, congestion_probability=0.10
        ),
        model=LLRD1,
        training_grid=grid,
        estimators=(
            EstimatorSpec("lia"),
            EstimatorSpec("scfs", {"link_threshold": LLRD1.threshold}),
        ),
    )
    outcome = scenario.run(seed=spec.seed)

    lia_dr: Dict[str, float] = {}
    lia_fpr: Dict[str, float] = {}
    for m in grid:
        detection = outcome.evaluation("lia", m).detection
        lia_dr[str(m)] = detection.detection_rate
        lia_fpr[str(m)] = detection.false_positive_rate
    scfs = outcome.evaluation("scfs").detection
    return {
        "lia_dr": lia_dr,
        "lia_fpr": lia_fpr,
        "scfs_dr": scfs.detection_rate,
        "scfs_fpr": scfs.false_positive_rate,
    }


def run(
    scale: str = "small",
    seed: Optional[int] = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    params = scale_params(scale)
    grid = SNAPSHOT_GRID[scale]

    specs = [
        TrialSpec(
            "fig5", rep, seed=rep_seed,
            params={"scale": scale, "grid": list(grid)},
        )
        for rep, rep_seed in enumerate(repetition_seeds(seed, params.repetitions))
    ]
    payloads = execute_trials(runner, "fig5", trial, specs)

    # One streaming pass: each payload is read from the result store
    # once and folded into the per-m series.
    lia_dr: Dict[int, List[float]] = {m: [] for m in grid}
    lia_fpr: Dict[int, List[float]] = {m: [] for m in grid}
    scfs_dr: List[float] = []
    scfs_fpr: List[float] = []
    for payload in payloads:
        for m in grid:
            lia_dr[m].append(payload["lia_dr"][str(m)])
            lia_fpr[m].append(payload["lia_fpr"][str(m)])
        scfs_dr.append(payload["scfs_dr"])
        scfs_fpr.append(payload["scfs_fpr"])

    table = TextTable(["m", "LIA DR", "LIA FPR", "SCFS DR", "SCFS FPR"])
    mean_scfs_dr = float(np.mean(scfs_dr))
    mean_scfs_fpr = float(np.mean(scfs_fpr))
    for m in grid:
        table.add_row(
            [
                m,
                float(np.mean(lia_dr[m])),
                float(np.mean(lia_fpr[m])),
                mean_scfs_dr,
                mean_scfs_fpr,
            ]
        )

    result = ExperimentResult(
        name="fig5",
        description=(
            f"Congested-link location on trees ({params.tree_nodes} nodes, "
            f"p=10%, S={params.probes}, {params.repetitions} repetitions); "
            "SCFS uses only the target snapshot"
        ),
        table=table,
        data={
            "grid": grid,
            "lia_dr": {m: list(v) for m, v in lia_dr.items()},
            "lia_fpr": {m: list(v) for m, v in lia_fpr.items()},
            "scfs_dr": scfs_dr,
            "scfs_fpr": scfs_fpr,
        },
    )
    best_m = max(grid)
    result.notes.append(
        f"LIA at m={best_m}: DR={np.mean(lia_dr[best_m]):.3f} vs SCFS "
        f"{mean_scfs_dr:.3f}; FPR {np.mean(lia_fpr[best_m]):.3f} vs "
        f"{mean_scfs_fpr:.3f}"
    )
    return result
