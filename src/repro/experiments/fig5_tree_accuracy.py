"""Figure 5: locating congested links on trees — LIA vs SCFS over m.

The paper's headline comparison: 1000-node trees (branching <= 10),
beacon at the root, destinations at the leaves, LLRD1 losses with
p = 10 % congested links.  DR and FPR are plotted against the number of
training snapshots m for LIA, against the single-snapshot SCFS baseline.

Expected shape: LIA dominates SCFS at every m (higher DR, lower FPR);
LIA improves with m; SCFS is flat (it never uses history).

Each repetition is one independent trial: it simulates a single
``max(grid)+1``-snapshot campaign and evaluates every m on suffixes of
it, so the trial — not the (rep, m) pair — is the schedulable unit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.lia import LossInferenceAlgorithm
from repro.experiments.base import (
    ExperimentResult,
    execute_trials,
    prepare_topology,
    repetition_seeds,
    scale_params,
)
from repro.inference import scfs_localize
from repro.lossmodel import LLRD1
from repro.metrics import detection_outcome, evaluate_location
from repro.probing import ProberConfig, ProbingSimulator
from repro.runner import ParallelRunner, TrialSpec
from repro.utils.rng import derive_seed
from repro.utils.tables import TextTable

SNAPSHOT_GRID = {
    "tiny": (5, 15),
    "small": (10, 30, 50),
    "paper": (10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
}


def trial(spec: TrialSpec) -> dict:
    """One repetition: a full campaign scored at every m plus SCFS."""
    params = scale_params(spec.params["scale"])
    grid = tuple(spec.params["grid"])
    max_m = max(grid)
    rep_seed = spec.seed

    prepared = prepare_topology("tree", params, derive_seed(rep_seed, 0))
    config = ProberConfig(
        probes_per_snapshot=params.probes, congestion_probability=0.10
    )
    simulator = ProbingSimulator(
        prepared.paths,
        prepared.topology.network.num_links,
        model=LLRD1,
        config=config,
    )
    campaign = simulator.run_campaign(
        max_m + 1, prepared.routing, seed=derive_seed(rep_seed, 1)
    )
    target = campaign[-1]
    truth = target.virtual_congested(prepared.routing)

    lia_dr: Dict[str, float] = {}
    lia_fpr: Dict[str, float] = {}
    # One LIA across the m-grid: the engine builds the intersecting-pairs
    # structure once and reuses R* factorizations across grid points that
    # reduce to the same kept-column set.
    lia = LossInferenceAlgorithm(prepared.routing)
    for m in grid:
        training = campaign.snapshots[max_m - m : max_m]
        sub = type(campaign)(routing=campaign.routing, snapshots=list(training))
        estimate = lia.learn_variances(sub)
        result = lia.infer(target, estimate)
        outcome = evaluate_location(
            result.loss_rates, truth, prepared.routing, LLRD1.threshold
        )
        lia_dr[str(m)] = outcome.detection_rate
        lia_fpr[str(m)] = outcome.false_positive_rate

    localized = scfs_localize(
        target, prepared.paths, prepared.routing, LLRD1.threshold
    )
    outcome = detection_outcome(
        localized.as_mask(prepared.routing.num_links), truth
    )
    return {
        "lia_dr": lia_dr,
        "lia_fpr": lia_fpr,
        "scfs_dr": outcome.detection_rate,
        "scfs_fpr": outcome.false_positive_rate,
    }


def run(
    scale: str = "small",
    seed: Optional[int] = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    params = scale_params(scale)
    grid = SNAPSHOT_GRID[scale]

    specs = [
        TrialSpec(
            "fig5", rep, seed=rep_seed,
            params={"scale": scale, "grid": list(grid)},
        )
        for rep, rep_seed in enumerate(repetition_seeds(seed, params.repetitions))
    ]
    payloads = execute_trials(runner, "fig5", trial, specs)

    lia_dr: Dict[int, List[float]] = {
        m: [p["lia_dr"][str(m)] for p in payloads] for m in grid
    }
    lia_fpr: Dict[int, List[float]] = {
        m: [p["lia_fpr"][str(m)] for p in payloads] for m in grid
    }
    scfs_dr: List[float] = [p["scfs_dr"] for p in payloads]
    scfs_fpr: List[float] = [p["scfs_fpr"] for p in payloads]

    table = TextTable(["m", "LIA DR", "LIA FPR", "SCFS DR", "SCFS FPR"])
    mean_scfs_dr = float(np.mean(scfs_dr))
    mean_scfs_fpr = float(np.mean(scfs_fpr))
    for m in grid:
        table.add_row(
            [
                m,
                float(np.mean(lia_dr[m])),
                float(np.mean(lia_fpr[m])),
                mean_scfs_dr,
                mean_scfs_fpr,
            ]
        )

    result = ExperimentResult(
        name="fig5",
        description=(
            f"Congested-link location on trees ({params.tree_nodes} nodes, "
            f"p=10%, S={params.probes}, {params.repetitions} repetitions); "
            "SCFS uses only the target snapshot"
        ),
        table=table,
        data={
            "grid": grid,
            "lia_dr": {m: list(v) for m, v in lia_dr.items()},
            "lia_fpr": {m: list(v) for m, v in lia_fpr.items()},
            "scfs_dr": scfs_dr,
            "scfs_fpr": scfs_fpr,
        },
    )
    best_m = max(grid)
    result.notes.append(
        f"LIA at m={best_m}: DR={np.mean(lia_dr[best_m]):.3f} vs SCFS "
        f"{mean_scfs_dr:.3f}; FPR {np.mean(lia_fpr[best_m]):.3f} vs "
        f"{mean_scfs_fpr:.3f}"
    )
    return result
