"""Figure 9: cross-validation of LIA on the (simulated) Internet.

The paper's PlanetLab deployment cannot observe true link rates, so it
validates indirectly (Section 7.2): paths are split half/half into an
inference set and a validation set; LIA runs on the inference half; a
validation path is *consistent* when its measured rate matches the
product of inferred rates over its links in the inference topology
within epsilon = 0.005.  The paper reports >95 % consistency, improving
with m and flattening beyond m ~ 80.

Our reproduction adds the full Section 7.1 measurement chain: topology
measured by simulated traceroute (anonymous routers, imperfect sr-ally
alias resolution), probes over the *true* network, churning
propensity-mode congestion, INTERNET loss model.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.api import Scenario, get
from repro.experiments.base import (
    ExperimentResult,
    execute_trials,
    repetition_seeds,
    scale_params,
)
from repro.lossmodel import INTERNET
from repro.metrics import validate_against_paths
from repro.netsim import measure_topology
from repro.probing import (
    MeasurementCampaign,
    ProberConfig,
    restrict_campaign,
    split_paths,
)
from repro.runner import ParallelRunner, TrialSpec
from repro.topology import RoutingMatrix
from repro.utils.rng import derive_seed
from repro.utils.tables import TextTable

M_GRID = {
    "tiny": (5, 15),
    "small": (10, 20, 40),
    "paper": (20, 40, 60, 80, 100),
}


def trial(spec: TrialSpec) -> dict:
    """One repetition: measure, probe, split, validate at every m.

    The scenario runs the common stages (topology generation, probing
    campaign over the *true* network); the Section 7.1 measurement chain
    — simulated traceroute, path split, consistency metric — is spliced
    between them, and the m-grid sweep runs through the ``lia``
    estimator adapter (one engine: pairs built once, kept-column
    factorizations shared across grid points).
    """
    params = scale_params(spec.params["scale"])
    grid = tuple(spec.params["grid"])
    max_m = max(grid)
    rep_seed = spec.seed

    scenario = Scenario(
        topology="planetlab",
        params=params,
        prober=ProberConfig(
            probes_per_snapshot=params.probes,
            congestion_probability=0.08,
            truth_mode="propensity",
            propensity_range=(0.1, 0.7),
        ),
        model=INTERNET,
        training_grid=grid,
        campaign_salt=2,
    )
    prepared = scenario.prepare(rep_seed)
    measured = measure_topology(
        prepared.topology.network,
        prepared.paths,
        end_hosts=prepared.topology.end_hosts,
        seed=derive_seed(rep_seed, 1),
    )
    measured_routing = RoutingMatrix.from_paths(measured.paths)
    true_campaign = scenario.simulate(prepared, rep_seed)
    # Same measurements, interpreted over the measured topology.
    campaign = MeasurementCampaign(
        routing=measured_routing, snapshots=true_campaign.snapshots
    )

    split = split_paths(len(measured.paths), seed=derive_seed(rep_seed, 3))
    inference_campaign, _, inference_routing = restrict_campaign(
        campaign, measured.paths, split.inference_rows
    )
    validation_paths = [measured.paths[r] for r in split.validation_rows]
    target = campaign[-1]
    validation_rates = target.path_transmission[list(split.validation_rows)]

    rates: Dict[str, float] = {}
    estimator = get("lia")
    target_inference = inference_campaign.snapshots[max_m]
    for m in grid:
        estimator.fit(
            MeasurementCampaign(
                routing=inference_routing,
                snapshots=inference_campaign.snapshots[max_m - m : max_m],
            )
        )
        result = estimator.predict(target_inference)
        consistency = validate_against_paths(
            result.raw, inference_routing, validation_paths, validation_rates
        )
        rates[str(m)] = consistency.consistency_rate
    return {"rates": rates}


def run(
    scale: str = "small",
    seed: Optional[int] = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    params = scale_params(scale)
    grid = M_GRID[scale]

    specs = [
        TrialSpec(
            "fig9", rep, seed=rep_seed,
            params={"scale": scale, "grid": list(grid)},
        )
        for rep, rep_seed in enumerate(repetition_seeds(seed, params.repetitions))
    ]
    payloads = execute_trials(runner, "fig9", trial, specs)
    # One streaming pass folding each repetition into the per-m series.
    rates: Dict[int, List[float]] = {m: [] for m in grid}
    for payload in payloads:
        for m in grid:
            rates[m].append(payload["rates"][str(m)])

    table = TextTable(["m", "consistent paths (%)"], float_fmt="{:.2f}")
    for m in grid:
        table.add_row([m, 100.0 * float(np.mean(rates[m]))])

    result = ExperimentResult(
        name="fig9",
        description=(
            "Cross-validation on the measured (traceroute) PlanetLab-like "
            f"topology, epsilon=0.005, {params.repetitions} repetitions"
        ),
        table=table,
        data={"rates": {m: list(v) for m, v in rates.items()}},
    )
    return result
