"""Table 2: LIA accuracy across mesh topologies.

The paper runs LIA over BRITE meshes (Barabási–Albert, Waxman,
hierarchical top-down and bottom-up), the PlanetLab topology and the
DIMES topology — LLRD1, p = 10 %, m = 50, S = 1000, 10 runs each — and
reports DR, FPR and the max/median/min of the error factors and absolute
errors.

Expected shape (paper values for reference): DR 86–96 % with FPR 2–7 %;
median error factor 1.00; median absolute error ~1e-3; hierarchical and
DIMES topologies slightly harder than the rest.

The trial grid is (topology kind x repetition): 6 x repetitions
independent trials, the widest fan-out in the harness.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional

import numpy as np

from repro.experiments.base import (
    MESH_TOPOLOGY_KINDS,
    ExperimentResult,
    execute_trials,
    fold_grouped,
    lia_scenario,
    repetition_seeds,
    scale_params,
)
from repro.metrics import absolute_error, error_factor
from repro.runner import ParallelRunner, TrialSpec
from repro.utils.tables import TextTable


def trial(spec: TrialSpec) -> dict:
    """One (topology kind, repetition) LIA scenario run."""
    params = scale_params(spec.params["scale"])
    kind = spec.params["kind"]
    scenario = lia_scenario(
        topology=kind,
        params=params,
        snapshots=params.snapshots,
        probes=params.probes,
        topology_salt=zlib.crc32(kind.encode()),
    )
    outcome = scenario.run(seed=spec.seed)
    evaluation = outcome.evaluations[0]
    detection = evaluation.detection
    realized = outcome.targets[-1].realized_virtual_loss_rates(
        outcome.prepared.routing
    )
    loss_rates = evaluation.result.values
    return {
        "dr": detection.detection_rate,
        "fpr": detection.false_positive_rate,
        "error_factors": error_factor(realized, loss_rates).tolist(),
        "absolute_errors": absolute_error(realized, loss_rates).tolist(),
    }


def run(
    scale: str = "small",
    seed: Optional[int] = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    params = scale_params(scale)
    table = TextTable(
        [
            "topology", "DR", "FPR",
            "EF max", "EF med", "EF min",
            "AE max", "AE med", "AE min",
        ]
    )

    rep_seeds = repetition_seeds(seed, params.repetitions)
    specs = []
    for kind in MESH_TOPOLOGY_KINDS:
        for rep_seed in rep_seeds:
            specs.append(
                TrialSpec(
                    "table2", len(specs), seed=rep_seed,
                    params={"scale": scale, "kind": kind},
                )
            )
    payloads = execute_trials(runner, "table2", trial, specs)

    # One streaming pass grouped by the (kind-major, rep-minor) spec
    # layout; per-kind error pools accumulate incrementally.
    folds: Dict[str, Dict[str, list]] = {
        kind: {"dr": [], "fpr": [], "ef": [], "ae": []}
        for kind in MESH_TOPOLOGY_KINDS
    }

    def fold(kind, payload):
        folds[kind]["dr"].append(payload["dr"])
        folds[kind]["fpr"].append(payload["fpr"])
        folds[kind]["ef"].append(np.asarray(payload["error_factors"]))
        folds[kind]["ae"].append(np.asarray(payload["absolute_errors"]))

    fold_grouped(
        payloads,
        [(kind, len(rep_seeds)) for kind in MESH_TOPOLOGY_KINDS],
        fold,
    )

    raw: Dict[str, Dict[str, object]] = {}
    for kind in MESH_TOPOLOGY_KINDS:
        metrics = folds[kind]
        drs = metrics["dr"]
        fprs = metrics["fpr"]
        ef = np.concatenate(metrics["ef"])
        ae = np.concatenate(metrics["ae"])
        table.add_row(
            [
                kind,
                float(np.mean(drs)),
                float(np.mean(fprs)),
                float(ef.max()), float(np.median(ef)), float(ef.min()),
                float(ae.max()), float(np.median(ae)), float(ae.min()),
            ]
        )
        raw[kind] = {
            "dr": drs,
            "fpr": fprs,
            "error_factors": ef,
            "absolute_errors": ae,
        }

    result = ExperimentResult(
        name="table2",
        description=(
            f"LIA on mesh topologies (LLRD1, p=10%, m={params.snapshots}, "
            f"S={params.probes}, {params.repetitions} runs each)"
        ),
        table=table,
        data=raw,
    )
    return result
