"""Table 2: LIA accuracy across mesh topologies.

The paper runs LIA over BRITE meshes (Barabási–Albert, Waxman,
hierarchical top-down and bottom-up), the PlanetLab topology and the
DIMES topology — LLRD1, p = 10 %, m = 50, S = 1000, 10 runs each — and
reports DR, FPR and the max/median/min of the error factors and absolute
errors.

Expected shape (paper values for reference): DR 86–96 % with FPR 2–7 %;
median error factor 1.00; median absolute error ~1e-3; hierarchical and
DIMES topologies slightly harder than the rest.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import zlib

import numpy as np

from repro.experiments.base import (
    MESH_TOPOLOGY_KINDS,
    ExperimentResult,
    prepare_topology,
    repetition_seeds,
    run_lia_trial,
    scale_params,
)
from repro.metrics import absolute_error, error_factor
from repro.utils.rng import derive_seed
from repro.utils.tables import TextTable


def run(scale: str = "small", seed: Optional[int] = 0) -> ExperimentResult:
    params = scale_params(scale)
    table = TextTable(
        [
            "topology", "DR", "FPR",
            "EF max", "EF med", "EF min",
            "AE max", "AE med", "AE min",
        ]
    )
    raw: Dict[str, Dict[str, object]] = {}

    for kind in MESH_TOPOLOGY_KINDS:
        drs: List[float] = []
        fprs: List[float] = []
        factors: List[np.ndarray] = []
        abs_errors: List[np.ndarray] = []
        for rep_seed in repetition_seeds(seed, params.repetitions):
            prepared = prepare_topology(
                kind, params, derive_seed(rep_seed, zlib.crc32(kind.encode()))
            )
            trial = run_lia_trial(
                prepared,
                derive_seed(rep_seed, 1),
                snapshots=params.snapshots,
                probes=params.probes,
            )
            drs.append(trial.detection.detection_rate)
            fprs.append(trial.detection.false_positive_rate)
            realized = trial.target.realized_virtual_loss_rates(prepared.routing)
            factors.append(error_factor(realized, trial.result.loss_rates))
            abs_errors.append(absolute_error(realized, trial.result.loss_rates))

        ef = np.concatenate(factors)
        ae = np.concatenate(abs_errors)
        table.add_row(
            [
                kind,
                float(np.mean(drs)),
                float(np.mean(fprs)),
                float(ef.max()), float(np.median(ef)), float(ef.min()),
                float(ae.max()), float(np.median(ae)), float(ae.min()),
            ]
        )
        raw[kind] = {
            "dr": drs,
            "fpr": fprs,
            "error_factors": ef,
            "absolute_errors": ae,
        }

    result = ExperimentResult(
        name="table2",
        description=(
            f"LIA on mesh topologies (LLRD1, p=10%, m={params.snapshots}, "
            f"S={params.probes}, {params.repetitions} runs each)"
        ),
        table=table,
        data=raw,
    )
    return result
