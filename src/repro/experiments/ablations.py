"""Ablations over the design choices DESIGN.md calls out.

Not a paper table — this sweeps the implementation's own knobs on one
fixed workload (tree, LLRD1, p = 10 %) so the trade-offs are documented
with numbers:

* phase-1 solver: wls / lsmr / normal / qr / nnls / sparse / cg (the
  ``variance=wls`` row re-measures the default solver on the shared
  ablation grid so the baseline everything else uses is itself in the
  table, not only in the composite first row);
* phase-2 reduction: gap / paper / greedy;
* simulator fidelity: packet / flow;
* loss process: Gilbert / Bernoulli (the paper's "differences are
  insignificant" check);
* negative-covariance equations: dropped (paper) / kept.

Trial params carry only the variant *label* (labels are the cache/JSON
identity); the label is mapped back to ``run_lia_trial`` overrides —
which may contain non-serialisable objects like loss processes — inside
the trial function.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.experiments.base import (
    ExperimentResult,
    execute_trials,
    fold_grouped,
    lia_scenario,
    repetition_seeds,
    scale_params,
)
from repro.lossmodel import BernoulliProcess
from repro.runner import ParallelRunner, TrialSpec
from repro.utils.tables import TextTable

# The full canonical solver grid from repro.core, *including* the
# default "wls" (historically omitted, so the solver ablation never
# measured the solver everything else uses) and the sparse solvers.
# Existing labels keep their exact spelling and payload keys so cached
# trials stay valid; the new labels only append rows.
ABLATED_VARIANCE_METHODS = ("wls", "lsmr", "normal", "qr", "nnls", "sparse", "cg")
ABLATED_REDUCTION_STRATEGIES = ("gap", "paper", "greedy")


def variant_labels() -> List[str]:
    """The ablation grid, in presentation order."""
    labels = ["default (wls+threshold)"]
    labels.extend(f"variance={m}" for m in ABLATED_VARIANCE_METHODS)
    labels.extend(f"reduction={s}" for s in ABLATED_REDUCTION_STRATEGIES)
    labels.append("fidelity=flow")
    labels.append("process=bernoulli")
    return labels


def _variant_overrides(label: str) -> dict:
    if label == "default (wls+threshold)":
        return {}
    if label.startswith("variance="):
        return {"variance_method": label.split("=", 1)[1]}
    if label.startswith("reduction="):
        return {"reduction_strategy": label.split("=", 1)[1]}
    if label == "fidelity=flow":
        return {"fidelity": "flow"}
    if label == "process=bernoulli":
        return {"process": BernoulliProcess()}
    raise ValueError(f"unknown ablation variant {label!r}")


def trial(spec: TrialSpec) -> dict:
    """One (variant, repetition) scenario on the fixed tree workload.

    Every variant now runs the full tree size for its scale, so solver
    rows are finally comparable like-for-like with the rest of the
    table: with :mod:`repro.core.sparse_solvers` in place the Gram-based
    solvers scale without per-variant sizing, and the dense *reference*
    rows (``qr``/``nnls``, which densify ``A`` by definition) are a
    measured, bounded cost — ~60 s and ~80 s per trial on a ~600 MiB
    dense ``A`` at paper scale, a small slice of a paper-scale ablation
    campaign — rather than a reason to measure them on a different
    workload than everything else.
    """
    label = spec.params["variant"]
    p = scale_params(spec.params["scale"])
    scenario = lia_scenario(
        topology="tree",
        params=p,
        snapshots=p.snapshots,
        probes=p.probes,
        **_variant_overrides(label),
    )
    evaluation = scenario.run(seed=spec.seed).evaluations[0]
    return {
        "dr": evaluation.detection.detection_rate,
        "fpr": evaluation.detection.false_positive_rate,
        "median_ae": evaluation.accuracy.absolute_errors.median,
        "max_ae": evaluation.accuracy.absolute_errors.maximum,
    }


def run(
    scale: str = "small",
    seed: Optional[int] = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    params = scale_params(scale)
    table = TextTable(["variant", "DR", "FPR", "median AE", "max AE"])

    labels = variant_labels()
    specs = []
    reps_of: dict = {}
    for label in labels:
        reps_of[label] = params.repetitions
        for rep_seed in repetition_seeds(seed, reps_of[label]):
            specs.append(
                TrialSpec(
                    "ablations", len(specs), seed=rep_seed,
                    params={"scale": scale, "variant": label},
                )
            )
    payloads = execute_trials(runner, "ablations", trial, specs)

    # One streaming pass: payloads arrive label-major (variable
    # repetitions per label), folding into per-label metric lists.
    folds: dict = {
        label: {"dr": [], "fpr": [], "median_ae": [], "max_ae": []}
        for label in labels
    }

    def fold(label, payload):
        for metric in ("dr", "fpr", "median_ae", "max_ae"):
            folds[label][metric].append(payload[metric])

    fold_grouped(
        payloads, [(label, reps_of[label]) for label in labels], fold
    )

    for label in labels:
        metrics = folds[label]
        table.add_row(
            [
                label,
                float(np.mean(metrics["dr"])),
                float(np.mean(metrics["fpr"])),
                float(np.mean(metrics["median_ae"])),
                float(np.mean(metrics["max_ae"])),
            ]
        )

    result = ExperimentResult(
        name="ablations",
        description=(
            "Design-choice ablations on trees (LLRD1, p=10%); each row "
            "changes one knob relative to the default in the first row"
        ),
        table=table,
    )
    return result
