"""Ablations over the design choices DESIGN.md calls out.

Not a paper table — this sweeps the implementation's own knobs on one
fixed workload (tree, LLRD1, p = 10 %) so the trade-offs are documented
with numbers:

* phase-1 solver: lsmr / normal / qr / nnls;
* phase-2 reduction: gap / paper / greedy;
* simulator fidelity: packet / flow;
* loss process: Gilbert / Bernoulli (the paper's "differences are
  insignificant" check);
* negative-covariance equations: dropped (paper) / kept.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.lia import LossInferenceAlgorithm
from repro.core.variance import estimate_link_variances
from repro.experiments.base import (
    ExperimentResult,
    prepare_topology,
    repetition_seeds,
    run_lia_trial,
    scale_params,
)
from repro.lossmodel import BernoulliProcess, GilbertProcess
from repro.utils.rng import derive_seed
from repro.utils.tables import TextTable


def run(scale: str = "small", seed: Optional[int] = 0) -> ExperimentResult:
    params = scale_params(scale)
    table = TextTable(["variant", "DR", "FPR", "median AE", "max AE"])

    variants = [("default (wls+threshold)", {})]
    for method in ("lsmr", "normal", "qr", "nnls"):
        variants.append((f"variance={method}", {"variance_method": method}))
    for strategy in ("gap", "paper", "greedy"):
        variants.append((f"reduction={strategy}", {"reduction_strategy": strategy}))
    variants.append(("fidelity=flow", {"fidelity": "flow"}))
    variants.append(("process=bernoulli", {"process": BernoulliProcess()}))

    # QR/NNLS densify A; keep them tractable by capping the tree size.
    dense_params = params.sized(
        tree_nodes=min(params.tree_nodes, 120),
        snapshots=min(params.snapshots, 25),
    )

    for label, overrides in variants:
        needs_dense = any(
            overrides.get("variance_method") == m for m in ("qr", "nnls")
        )
        p = dense_params if needs_dense else params
        drs: List[float] = []
        fprs: List[float] = []
        medians: List[float] = []
        maxima: List[float] = []
        for rep_seed in repetition_seeds(seed, p.repetitions):
            prepared = prepare_topology("tree", p, derive_seed(rep_seed, 0))
            trial = run_lia_trial(
                prepared,
                derive_seed(rep_seed, 1),
                snapshots=p.snapshots,
                probes=p.probes,
                **overrides,
            )
            drs.append(trial.detection.detection_rate)
            fprs.append(trial.detection.false_positive_rate)
            medians.append(trial.accuracy.absolute_errors.median)
            maxima.append(trial.accuracy.absolute_errors.maximum)
        table.add_row(
            [
                label,
                float(np.mean(drs)),
                float(np.mean(fprs)),
                float(np.mean(medians)),
                float(np.mean(maxima)),
            ]
        )

    result = ExperimentResult(
        name="ablations",
        description=(
            "Design-choice ablations on trees (LLRD1, p=10%); each row "
            "changes one knob relative to the default in the first row"
        ),
        table=table,
    )
    return result
