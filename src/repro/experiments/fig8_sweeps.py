"""Figure 8: sensitivity of LIA to the congestion fraction p and to S.

Panel (a): DR and FPR as the fraction of congested links p grows from
5 % to 25 % (PlanetLab topology, m = 50, S = 1000).  Expected shape:
accuracy degrades slowly as p grows (more congested links risk falling
into linearly dependent families and more loss mass is misattributed).

Panel (b): DR and FPR as the per-snapshot probe count S shrinks from
1000 to 50 (p = 10 %).  Expected shape: mild degradation — the paper
notes the impact of S "is less severe".

Both panels flatten into one (panel, value, repetition) trial grid, so a
parallel run overlaps the whole sweep instead of one grid point at a
time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.experiments.base import (
    ExperimentResult,
    execute_trials,
    fold_grouped,
    lia_scenario,
    repetition_seeds,
    scale_params,
)
from repro.runner import ParallelRunner, TrialSpec
from repro.utils.rng import derive_seed
from repro.utils.tables import TextTable

P_GRID = {
    "tiny": (0.05, 0.25),
    "small": (0.05, 0.10, 0.25),
    "paper": (0.05, 0.10, 0.15, 0.20, 0.25),
}
S_GRID = {
    "tiny": (100, 300),
    "small": (100, 400, 1000),
    "paper": (50, 200, 400, 600, 800, 1000),
}


def trial(spec: TrialSpec) -> dict:
    """One (panel, grid value, repetition) sensitivity scenario."""
    params = scale_params(spec.params["scale"])
    variable = spec.params["variable"]
    value = spec.params["value"]
    kwargs = dict(snapshots=params.snapshots, probes=params.probes)
    if variable == "p":
        kwargs["congestion_probability"] = value
    else:
        kwargs["probes"] = value
    scenario = lia_scenario(topology="planetlab", params=params, **kwargs)
    detection = scenario.run(seed=spec.seed).evaluations[0].detection
    return {
        "dr": detection.detection_rate,
        "fpr": detection.false_positive_rate,
    }


def _sweep_specs(
    experiment: str,
    scale: str,
    variable: str,
    values,
    repetitions: int,
    seed: Optional[int],
    start_index: int,
) -> List[TrialSpec]:
    specs = []
    for value in values:
        for rep_seed in repetition_seeds(seed, repetitions):
            specs.append(
                TrialSpec(
                    experiment,
                    start_index + len(specs),
                    seed=rep_seed,
                    params={"scale": scale, "variable": variable, "value": value},
                )
            )
    return specs


def run(
    scale: str = "small",
    seed: Optional[int] = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    params = scale_params(scale)
    p_values = P_GRID[scale]
    s_values = S_GRID[scale]

    p_specs = _sweep_specs(
        "fig8", scale, "p", p_values, params.repetitions,
        derive_seed(seed, 10), 0,
    )
    s_specs = _sweep_specs(
        "fig8", scale, "S", s_values, params.repetitions,
        derive_seed(seed, 20), len(p_specs),
    )
    payloads = execute_trials(runner, "fig8", trial, p_specs + s_specs)

    # One streaming pass over both panels: each payload folds into its
    # (panel, grid value) bucket following the value-major, rep-minor
    # spec layout.
    raw_p: Dict[float, Dict[str, List[float]]] = {
        v: {"dr": [], "fpr": []} for v in p_values
    }
    raw_s: Dict[float, Dict[str, List[float]]] = {
        v: {"dr": [], "fpr": []} for v in s_values
    }

    def fold(bucket, payload):
        bucket["dr"].append(payload["dr"])
        bucket["fpr"].append(payload["fpr"])

    fold_grouped(
        payloads,
        [(raw_p[v], params.repetitions) for v in p_values]
        + [(raw_s[v], params.repetitions) for v in s_values],
        fold,
    )

    combined = TextTable(["panel", "value", "DR", "FPR"])
    for value in p_values:
        combined.add_row(
            ["(a) p", value,
             float(np.mean(raw_p[value]["dr"])),
             float(np.mean(raw_p[value]["fpr"]))]
        )
    for value in s_values:
        combined.add_row(
            ["(b) S", value,
             float(np.mean(raw_s[value]["dr"])),
             float(np.mean(raw_s[value]["fpr"]))]
        )

    result = ExperimentResult(
        name="fig8",
        description=(
            "LIA sensitivity on the PlanetLab-like topology "
            f"(m={params.snapshots}; panel a: S={params.probes} varying p; "
            "panel b: p=10% varying S)"
        ),
        table=combined,
        data={"p_sweep": raw_p, "s_sweep": raw_s},
    )
    return result
