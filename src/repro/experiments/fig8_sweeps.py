"""Figure 8: sensitivity of LIA to the congestion fraction p and to S.

Panel (a): DR and FPR as the fraction of congested links p grows from
5 % to 25 % (PlanetLab topology, m = 50, S = 1000).  Expected shape:
accuracy degrades slowly as p grows (more congested links risk falling
into linearly dependent families and more loss mass is misattributed).

Panel (b): DR and FPR as the per-snapshot probe count S shrinks from
1000 to 50 (p = 10 %).  Expected shape: mild degradation — the paper
notes the impact of S "is less severe".
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.experiments.base import (
    ExperimentResult,
    prepare_topology,
    repetition_seeds,
    run_lia_trial,
    scale_params,
)
from repro.utils.rng import derive_seed
from repro.utils.tables import TextTable

P_GRID = {
    "tiny": (0.05, 0.25),
    "small": (0.05, 0.10, 0.25),
    "paper": (0.05, 0.10, 0.15, 0.20, 0.25),
}
S_GRID = {
    "tiny": (100, 300),
    "small": (100, 400, 1000),
    "paper": (50, 200, 400, 600, 800, 1000),
}


def _sweep(
    variable: str,
    values,
    params,
    seed: Optional[int],
) -> "tuple[TextTable, Dict]":
    table = TextTable([variable, "DR", "FPR"])
    raw: Dict[float, Dict[str, List[float]]] = {}
    for value in values:
        drs: List[float] = []
        fprs: List[float] = []
        for rep_seed in repetition_seeds(seed, params.repetitions):
            prepared = prepare_topology(
                "planetlab", params, derive_seed(rep_seed, 0)
            )
            kwargs = dict(snapshots=params.snapshots, probes=params.probes)
            if variable == "p":
                kwargs["congestion_probability"] = value
            else:
                kwargs["probes"] = value
            trial = run_lia_trial(prepared, derive_seed(rep_seed, 1), **kwargs)
            drs.append(trial.detection.detection_rate)
            fprs.append(trial.detection.false_positive_rate)
        table.add_row([value, float(np.mean(drs)), float(np.mean(fprs))])
        raw[value] = {"dr": drs, "fpr": fprs}
    return table, raw


def run(scale: str = "small", seed: Optional[int] = 0) -> ExperimentResult:
    params = scale_params(scale)
    table_p, raw_p = _sweep("p", P_GRID[scale], params, derive_seed(seed, 10))
    table_s, raw_s = _sweep("S", S_GRID[scale], params, derive_seed(seed, 20))

    combined = TextTable(["panel", "value", "DR", "FPR"])
    for value in P_GRID[scale]:
        combined.add_row(
            ["(a) p", value,
             float(np.mean(raw_p[value]["dr"])),
             float(np.mean(raw_p[value]["fpr"]))]
        )
    for value in S_GRID[scale]:
        combined.add_row(
            ["(b) S", value,
             float(np.mean(raw_s[value]["dr"])),
             float(np.mean(raw_s[value]["fpr"]))]
        )

    result = ExperimentResult(
        name="fig8",
        description=(
            "LIA sensitivity on the PlanetLab-like topology "
            f"(m={params.snapshots}; panel a: S={params.probes} varying p; "
            "panel b: p=10% varying S)"
        ),
        table=combined,
        data={"p_sweep": raw_p, "s_sweep": raw_s},
    )
    return result
