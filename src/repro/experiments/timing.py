"""Section 6.4: running times of the algorithm's pieces.

The paper reports (Matlab, 2 GHz Pentium 4): solving the first-order
system (3) takes milliseconds; solving the reduced system (9) is about
10x longer; computing the augmented matrix A can take up to an hour but
is done once; after that, inference runs in under a second even for
thousand-node networks.

We time the same stages on the tree topology: building the
intersecting-pairs structure (A), phase 1 (variance learning), the
full-rank reduction, and the phase-2 solve.  Expected shape: building A
dominates; it amortises across snapshots; per-snapshot inference is
sub-second.

The measurement is one trial through the sharded runner, marked
``cacheable=False``: wall-clock numbers are live state, so the shard
cache must never replay them — every invocation re-times the stages on
the current machine.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.augmented import intersecting_pairs
from repro.core.lia import LossInferenceAlgorithm, infer_many
from repro.core.reduction import reduce_to_full_rank, solve_reduced_system
from repro.experiments.base import (
    ExperimentResult,
    execute_trials,
    prepare_topology,
    scale_params,
)
from repro.probing import ProberConfig, ProbingSimulator
from repro.runner import ParallelRunner, TrialSpec
from repro.utils.rng import derive_seed
from repro.utils.tables import TextTable


def trial(spec: TrialSpec) -> dict:
    """Time each pipeline stage once on the tree topology."""
    params = scale_params(spec.params["scale"])
    seed = spec.seed
    prepared = prepare_topology("tree", params, derive_seed(seed, 0))
    simulator = ProbingSimulator(
        prepared.paths,
        prepared.topology.network.num_links,
        config=ProberConfig(probes_per_snapshot=params.probes),
    )
    campaign = simulator.run_campaign(
        params.snapshots + 1, prepared.routing, seed=derive_seed(seed, 1)
    )
    training, target = campaign.split_training_target()

    t0 = time.perf_counter()
    pairs = intersecting_pairs(prepared.routing.matrix)
    t_build_a = time.perf_counter() - t0

    lia = LossInferenceAlgorithm(prepared.routing)
    lia.engine.pairs = pairs  # reuse, as a monitoring service would

    t0 = time.perf_counter()
    estimate = lia.learn_variances(training)
    t_phase1 = time.perf_counter() - t0

    t0 = time.perf_counter()
    reduction = reduce_to_full_rank(
        prepared.routing.matrix, estimate.variances, strategy="gap"
    )
    t_reduce = time.perf_counter() - t0

    y = target.path_log_rates()
    t0 = time.perf_counter()
    solve_reduced_system(prepared.routing.matrix, y, reduction)
    t_phase2_solve = time.perf_counter() - t0

    t0 = time.perf_counter()
    lia.infer(target, estimate)
    t_infer = time.perf_counter() - t0

    # Second inference against the same estimate: the engine's reduction
    # memo and R* factorization cache are warm, so this is the marginal
    # cost a monitoring service pays per snapshot.
    t0 = time.perf_counter()
    lia.infer(target, estimate)
    t_infer_warm = time.perf_counter() - t0

    # Forest stage: the campaign-scale shape is many *small* independent
    # trees inferred per round.  Time a Python loop of engine.infer
    # against the block-diagonal batched solve (infer_many's packed
    # mode, bit-identical output).  One untimed pass first so both
    # measurements run against warm reduction/factorization caches.
    num_trees = {"tiny": 16, "small": 64, "paper": 256}.get(
        spec.params["scale"], 64
    )
    forest_runs = []
    for i in range(num_trees):
        tree = prepare_topology(
            "tree", params.sized(tree_nodes=31), derive_seed(seed, 100 + i)
        )
        tree_simulator = ProbingSimulator(
            tree.paths,
            tree.topology.network.num_links,
            config=ProberConfig(probes_per_snapshot=params.probes),
        )
        tree_campaign = tree_simulator.run_campaign(
            params.snapshots + 1, tree.routing, seed=derive_seed(seed, 1000 + i)
        )
        tree_training, tree_target = tree_campaign.split_training_target()
        algorithm = LossInferenceAlgorithm(tree.routing)
        forest_runs.append(
            (algorithm, tree_target, algorithm.learn_variances(tree_training))
        )
    infer_many(forest_runs, mode="loop")  # warm the per-tree caches

    t0 = time.perf_counter()
    infer_many(forest_runs, mode="loop")
    t_forest_loop = time.perf_counter() - t0

    t0 = time.perf_counter()
    infer_many(forest_runs)
    t_forest_batched = time.perf_counter() - t0

    cache_info = {
        name: info.as_dict() for name, info in lia.engine.cache_info().items()
    }

    return {
        "cache_info": cache_info,
        "build_a": t_build_a,
        "phase1": t_phase1,
        "reduce": t_reduce,
        "phase2_solve": t_phase2_solve,
        "infer": t_infer,
        "infer_warm": t_infer_warm,
        "forest_loop": t_forest_loop,
        "forest_batched": t_forest_batched,
        "forest_trees": num_trees,
        "num_paths": prepared.routing.num_paths,
        "num_links": prepared.routing.num_links,
    }


def run(
    scale: str = "small",
    seed: Optional[int] = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    params = scale_params(scale)
    specs = [
        TrialSpec(
            "timing", 0, seed=seed, params={"scale": scale}, cacheable=False
        )
    ]
    (payload,) = execute_trials(runner, "timing", trial, specs)

    table = TextTable(["stage", "seconds"], float_fmt="{:.4f}")
    table.add_row(["build A (once per network)", payload["build_a"]])
    table.add_row(["phase 1: learn variances", payload["phase1"]])
    table.add_row(["phase 2: full-rank reduction", payload["reduce"]])
    table.add_row(["phase 2: reduced solve (eq. 9)", payload["phase2_solve"]])
    table.add_row(["per-snapshot inference total", payload["infer"]])
    table.add_row(
        ["per-snapshot inference (warm engine)", payload["infer_warm"]]
    )
    trees = payload["forest_trees"]
    table.add_row([f"forest: {trees}-tree loop (warm)", payload["forest_loop"]])
    table.add_row(
        [f"forest: {trees}-tree batched solve", payload["forest_batched"]]
    )

    cache_table = TextTable(
        [
            "cache",
            "hits",
            "misses",
            "updates",
            "downdates",
            "evictions",
            "entries",
            "resident bytes",
        ]
    )
    for cache_name, info in payload["cache_info"].items():
        cache_table.add_row(
            [
                cache_name,
                info["hits"],
                info["misses"],
                info["updates"],
                info["downdates"],
                info["evictions"],
                info["entries"],
                info["resident_bytes"],
            ]
        )

    result = ExperimentResult(
        name="timing",
        description=(
            f"Running times on the tree topology "
            f"({payload['num_paths']} paths, "
            f"{payload['num_links']} links, m={params.snapshots})"
        ),
        table=table,
        extra_tables=[("engine cache statistics (warm state):", cache_table)],
        data={
            "cache_info": payload["cache_info"],
            "build_a": payload["build_a"],
            "phase1": payload["phase1"],
            "reduce": payload["reduce"],
            "phase2_solve": payload["phase2_solve"],
            "infer": payload["infer"],
            "infer_warm": payload["infer_warm"],
            "forest_loop": payload["forest_loop"],
            "forest_batched": payload["forest_batched"],
            "forest_trees": payload["forest_trees"],
        },
    )
    result.notes.append(
        "A is computed once per network and reused across snapshots, as in "
        "Section 5.1"
    )
    return result
