"""Figure 7: congested links versus the columns retained in R*.

For every topology the paper plots the ratio between the number of
congested links (p * n_c) and the number of columns kept in the
full-rank reduced matrix R*.  The ratio stays below 1 everywhere —
meaning the reduction never has to sacrifice a congested link, which is
why approximating the removed links' loss by zero is safe.

We report the ratio per topology (tree plus the six meshes) and,
as a stronger check, the count of congested links that were actually
removed (should be ~0).
"""

from __future__ import annotations

import zlib
from typing import Optional

import numpy as np

from repro.experiments.base import (
    MESH_TOPOLOGY_KINDS,
    ExperimentResult,
    execute_trials,
    fold_grouped,
    lia_scenario,
    repetition_seeds,
    scale_params,
)
from repro.runner import ParallelRunner, TrialSpec
from repro.utils.tables import TextTable


def trial(spec: TrialSpec) -> dict:
    """One (topology kind, repetition): reduction bookkeeping counts."""
    params = scale_params(spec.params["scale"])
    kind = spec.params["kind"]
    scenario = lia_scenario(
        topology=kind,
        params=params,
        snapshots=params.snapshots,
        probes=params.probes,
        topology_salt=zlib.crc32(kind.encode()),
    )
    outcome = scenario.run(seed=spec.seed)
    truth = outcome.targets[-1].virtual_congested(outcome.prepared.routing)
    reduction = outcome.evaluations[0].result.raw.reduction
    return {
        "num_congested": int(truth.sum()),
        "num_kept": len(reduction.kept_columns),
        "removed_congested": int(truth[reduction.removed_columns].sum()),
    }


def run(
    scale: str = "small",
    seed: Optional[int] = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    params = scale_params(scale)
    table = TextTable(
        ["topology", "congested", "columns in R*", "ratio", "congested removed"]
    )
    data = {}

    kinds = ("tree",) + MESH_TOPOLOGY_KINDS
    rep_seeds = repetition_seeds(seed, params.repetitions)
    specs = []
    for kind in kinds:
        for rep_seed in rep_seeds:
            specs.append(
                TrialSpec(
                    "fig7", len(specs), seed=rep_seed,
                    params={"scale": scale, "kind": kind},
                )
            )
    payloads = execute_trials(runner, "fig7", trial, specs)

    # One streaming pass grouped by the (kind-major, rep-minor) spec
    # layout: per-kind folds hold only the scalar metrics.
    folds = {
        kind: {"congested": [], "kept": [], "removed": []} for kind in kinds
    }

    def fold(kind, payload):
        folds[kind]["congested"].append(payload["num_congested"])
        folds[kind]["kept"].append(payload["num_kept"])
        folds[kind]["removed"].append(payload["removed_congested"])

    fold_grouped(payloads, [(kind, len(rep_seeds)) for kind in kinds], fold)

    for kind in kinds:
        metrics = folds[kind]
        congested_counts = metrics["congested"]
        kept_counts = metrics["kept"]
        ratios = [
            c / k for c, k in zip(congested_counts, kept_counts) if k
        ]
        removed_congested = metrics["removed"]
        table.add_row(
            [
                kind,
                float(np.mean(congested_counts)),
                float(np.mean(kept_counts)),
                float(np.mean(ratios)),
                float(np.mean(removed_congested)),
            ]
        )
        data[kind] = {
            "ratios": ratios,
            "removed_congested": removed_congested,
        }

    result = ExperimentResult(
        name="fig7",
        description=(
            "Ratio of congested links to columns kept in R* "
            f"(p=10%, m={params.snapshots}); below 1 means no congested "
            "link had to be removed"
        ),
        table=table,
        data=data,
    )
    return result
