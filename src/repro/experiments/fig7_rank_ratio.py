"""Figure 7: congested links versus the columns retained in R*.

For every topology the paper plots the ratio between the number of
congested links (p * n_c) and the number of columns kept in the
full-rank reduced matrix R*.  The ratio stays below 1 everywhere —
meaning the reduction never has to sacrifice a congested link, which is
why approximating the removed links' loss by zero is safe.

We report the ratio per topology (tree plus the six meshes) and,
as a stronger check, the count of congested links that were actually
removed (should be ~0).
"""

from __future__ import annotations

from typing import List, Optional

import zlib

import numpy as np

from repro.experiments.base import (
    MESH_TOPOLOGY_KINDS,
    ExperimentResult,
    prepare_topology,
    repetition_seeds,
    run_lia_trial,
    scale_params,
)
from repro.utils.rng import derive_seed
from repro.utils.tables import TextTable


def run(scale: str = "small", seed: Optional[int] = 0) -> ExperimentResult:
    params = scale_params(scale)
    table = TextTable(
        ["topology", "congested", "columns in R*", "ratio", "congested removed"]
    )
    data = {}

    for kind in ("tree",) + MESH_TOPOLOGY_KINDS:
        ratios: List[float] = []
        congested_counts: List[int] = []
        kept_counts: List[int] = []
        removed_congested: List[int] = []
        for rep_seed in repetition_seeds(seed, params.repetitions):
            prepared = prepare_topology(
                kind, params, derive_seed(rep_seed, zlib.crc32(kind.encode()))
            )
            trial = run_lia_trial(
                prepared,
                derive_seed(rep_seed, 1),
                snapshots=params.snapshots,
                probes=params.probes,
            )
            truth = trial.target.virtual_congested(prepared.routing)
            kept = trial.result.reduction.kept_columns
            num_congested = int(truth.sum())
            num_kept = len(kept)
            congested_counts.append(num_congested)
            kept_counts.append(num_kept)
            if num_kept:
                ratios.append(num_congested / num_kept)
            removed_congested.append(
                int(truth[trial.result.reduction.removed_columns].sum())
            )
        table.add_row(
            [
                kind,
                float(np.mean(congested_counts)),
                float(np.mean(kept_counts)),
                float(np.mean(ratios)),
                float(np.mean(removed_congested)),
            ]
        )
        data[kind] = {
            "ratios": ratios,
            "removed_congested": removed_congested,
        }

    result = ExperimentResult(
        name="fig7",
        description=(
            "Ratio of congested links to columns kept in R* "
            f"(p=10%, m={params.snapshots}); below 1 means no congested "
            "link had to be removed"
        ),
        table=table,
        data=data,
    )
    return result
