"""Table 3: are congested links inter-AS or intra-AS?

The paper maps the congested links LIA finds on PlanetLab to autonomous
systems (via a RouteViews BGP table) and reports, for loss thresholds
t_l in {0.04, 0.02, 0.01}, the split between inter-AS and intra-AS
links: congested links lean inter-AS (53–58 %), more so for small t_l.

Our reproduction drives the same pipeline over the AS-annotated
PlanetLab-like topology with its synthetic BGP table: ground-truth
congestion propensities are boosted on inter-AS (peering) links —
the mechanism the measurement literature proposes for the paper's
observation — LIA infers rates, and the inferred congested columns are
classified through longest-prefix-match on their endpoint addresses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.api import EstimatorSpec, Scenario
from repro.experiments.base import (
    ExperimentResult,
    execute_trials,
    repetition_seeds,
    scale_params,
)
from repro.lossmodel import INTERNET
from repro.netsim import AsMapper, classify_congested_columns
from repro.probing import ProberConfig
from repro.runner import ParallelRunner, TrialSpec
from repro.utils.rng import SeedLike, as_rng
from repro.utils.tables import TextTable

THRESHOLDS = (0.04, 0.02, 0.01)
#: Inter-AS links are this factor more likely to be congestion-prone.
INTER_AS_BOOST = 3.0


def _propensities_with_inter_as_boost(
    prepared, base_fraction: float, seed: SeedLike
) -> np.ndarray:
    """Per-physical-link propensities, boosted on AS-boundary links."""
    rng = as_rng(seed)
    topology = prepared.topology
    network = topology.network
    inter = np.zeros(network.num_links, dtype=bool)
    for link in network.links:
        inter[link.index] = (
            topology.as_of_node[link.tail] != topology.as_of_node[link.head]
        )
    trouble_probability = np.where(
        inter,
        min(1.0, base_fraction * INTER_AS_BOOST),
        base_fraction,
    )
    trouble = rng.random(network.num_links) < trouble_probability
    propensities = np.zeros(network.num_links, dtype=np.float64)
    count = int(trouble.sum())
    if count:
        propensities[trouble] = rng.uniform(0.1, 0.7, size=count)
    return propensities


def trial(spec: TrialSpec) -> dict:
    """One repetition: inferred congested links classified by AS boundary."""
    params = scale_params(spec.params["scale"])
    scenario = Scenario(
        topology="planetlab",
        params=params,
        prober=ProberConfig(
            probes_per_snapshot=params.probes,
            truth_mode="propensity",
        ),
        model=INTERNET,
        num_training=params.snapshots,
        estimators=(EstimatorSpec("lia"),),
        propensities=lambda prepared, seed: _propensities_with_inter_as_boost(
            prepared, base_fraction=0.06, seed=seed
        ),
        propensity_salt=1,
        campaign_salt=2,
    )
    outcome = scenario.run(seed=spec.seed)
    mapper, plan = AsMapper.from_topology(outcome.prepared.topology)
    loss_rates = outcome.evaluations[0].result.values

    fractions: Dict[str, Optional[float]] = {}
    for threshold in THRESHOLDS:
        columns = np.flatnonzero(loss_rates > threshold)
        if len(columns) == 0:
            fractions[str(threshold)] = None
            continue
        breakdown = classify_congested_columns(
            [int(c) for c in columns], outcome.prepared.routing, mapper, plan
        )
        fractions[str(threshold)] = breakdown.inter_fraction
    return {"inter_fractions": fractions}


def run(
    scale: str = "small",
    seed: Optional[int] = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    params = scale_params(scale)

    specs = [
        TrialSpec("table3", rep, seed=rep_seed, params={"scale": scale})
        for rep, rep_seed in enumerate(repetition_seeds(seed, params.repetitions))
    ]
    payloads = execute_trials(runner, "table3", trial, specs)
    # One streaming pass folding each repetition into the per-threshold
    # series (None = no link crossed that threshold in the repetition).
    counts: Dict[float, List[float]] = {t: [] for t in THRESHOLDS}
    for payload in payloads:
        for t in THRESHOLDS:
            fraction = payload["inter_fractions"][str(t)]
            if fraction is not None:
                counts[t].append(fraction)

    table = TextTable(["t_l", "inter-AS (%)", "intra-AS (%)"], float_fmt="{:.1f}")
    for threshold in THRESHOLDS:
        if counts[threshold]:
            inter = 100.0 * float(np.mean(counts[threshold]))
        else:
            inter = float("nan")
        table.add_row([str(threshold), inter, 100.0 - inter])

    result = ExperimentResult(
        name="table3",
        description=(
            "Location of inferred congested links relative to AS "
            f"boundaries (m={params.snapshots}, inter-AS propensity boost "
            f"x{INTER_AS_BOOST})"
        ),
        table=table,
        data={"inter_fractions": {t: list(v) for t, v in counts.items()}},
    )
    result.notes.append(
        "ground truth boosts congestion propensity on AS-boundary links; "
        "the pipeline (LPM over the synthetic BGP table) matches Section 7.2.2"
    )
    return result
