"""Section 7.2.2: how long does a link remain congested?

The paper applies LIA to 100 consecutive snapshots (t_l = 0.01, m = 50)
and measures the run lengths of each link's congested state: 99 % of
congested links stay congested for a single 5-minute snapshot, 1 % for
two.

We reproduce the study over churning propensity-mode congestion: learn
variances once from the first m snapshots, infer each of the following
consecutive snapshots, extract per-link congestion run lengths from the
inferred states, and report the run-length distribution.  Expected
shape: overwhelmingly length-1 runs, a small tail at 2+.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.api import EstimatorSpec, Scenario
from repro.experiments.base import ExperimentResult, scale_params
from repro.lossmodel import INTERNET
from repro.probing import ProberConfig
from repro.runner import ParallelRunner
from repro.utils.tables import TextTable

THRESHOLD = 0.01


def run_lengths(states: np.ndarray) -> List[int]:
    """Lengths of True-runs in each row of a (links, time) boolean matrix."""
    lengths: List[int] = []
    for row in states:
        count = 0
        for value in row:
            if value:
                count += 1
            elif count:
                lengths.append(count)
                count = 0
        if count:
            lengths.append(count)
    return lengths


def run(
    scale: str = "small",
    seed: Optional[int] = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    # Inherently sequential (consecutive-snapshot inference with shared
    # learned variances); `runner` is accepted for interface uniformity.
    del runner
    params = scale_params(scale)
    num_consecutive = {"tiny": 10, "small": 30, "paper": 100}[scale]

    # One scenario with many target snapshots: variances are learned once
    # from the leading window, and the engine solves all consecutive
    # targets as one multi-RHS system against a single R* factorization.
    scenario = Scenario(
        topology="planetlab",
        params=params,
        prober=ProberConfig(
            probes_per_snapshot=params.probes,
            congestion_probability=0.08,
            truth_mode="propensity",
            propensity_range=(0.1, 0.5),
        ),
        model=INTERNET,
        num_training=params.snapshots,
        num_targets=num_consecutive,
        estimators=(EstimatorSpec("lia"),),
    )
    outcome = scenario.run(seed=seed)
    routing = outcome.prepared.routing

    inferred = np.zeros((routing.num_links, num_consecutive), dtype=bool)
    actual = np.zeros_like(inferred)
    results = outcome.evaluations[0].results
    for t, (snapshot, result) in enumerate(zip(outcome.targets, results)):
        inferred[:, t] = result.values > THRESHOLD
        actual[:, t] = snapshot.virtual_congested(routing)

    lengths = run_lengths(inferred)
    actual_lengths = run_lengths(actual)

    table = TextTable(
        ["run length", "inferred runs (%)", "ground-truth runs (%)"],
        float_fmt="{:.1f}",
    )
    max_len = max([1] + lengths + actual_lengths)
    inferred_arr = np.asarray(lengths or [0])
    actual_arr = np.asarray(actual_lengths or [0])
    for length in range(1, min(max_len, 5) + 1):
        table.add_row(
            [
                length,
                100.0 * float((inferred_arr == length).mean()) if lengths else 0.0,
                100.0 * float((actual_arr == length).mean())
                if actual_lengths
                else 0.0,
            ]
        )

    result = ExperimentResult(
        name="duration",
        description=(
            f"Congestion run lengths over {num_consecutive} consecutive "
            f"snapshots (t_l={THRESHOLD}, m={params.snapshots})"
        ),
        table=table,
        data={
            "inferred_lengths": lengths,
            "actual_lengths": actual_lengths,
        },
    )
    if lengths:
        single = 100.0 * float((inferred_arr == 1).mean())
        result.notes.append(f"{single:.1f}% of inferred congestion runs last one snapshot")
    return result
