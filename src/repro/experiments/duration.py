"""Section 7.2.2: how long does a link remain congested?

The paper applies LIA to 100 consecutive snapshots (t_l = 0.01, m = 50)
and measures the run lengths of each link's congested state: 99 % of
congested links stay congested for a single 5-minute snapshot, 1 % for
two.

We reproduce the study over churning propensity-mode congestion: learn
variances once from the first m snapshots, infer each of the following
consecutive snapshots, extract per-link congestion run lengths from the
inferred states, and report the run-length distribution.  Expected
shape: overwhelmingly length-1 runs, a small tail at 2+.

The whole study is one trial through the sharded runner (the
consecutive-snapshot chain is inherently sequential, but routing it
through ``ParallelRunner`` gives it the shard cache, the streaming
result store and honest runner stats for free).  Inside the trial the
per-target states are folded *as the scenario scores them* via
``target_consumer`` — run lengths accumulate incrementally and the
scenario result retains only the last ``InferenceResult`` instead of
all of them.  (The engine still solves the window as one multi-RHS
system, so the per-target results exist transiently during the solve;
the fold bounds what outlives scoring.)
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.api import EstimatorSpec, Scenario
from repro.experiments.base import (
    ExperimentResult,
    execute_trials,
    scale_params,
)
from repro.lossmodel import INTERNET
from repro.probing import ProberConfig
from repro.runner import ParallelRunner, TrialSpec
from repro.utils.tables import TextTable

THRESHOLD = 0.01

NUM_CONSECUTIVE = {"tiny": 10, "small": 30, "paper": 100}


class RunLengthFold:
    """Streaming run-length extraction over per-link boolean states.

    Feed one ``(links,)`` boolean column per time step; completed runs
    collect per link so :meth:`finish` reproduces the row-major order of
    a whole-matrix scan while only the open-run counters and the output
    itself stay resident.
    """

    def __init__(self, num_links: int) -> None:
        self._open = np.zeros(num_links, dtype=np.int64)
        self._per_link: List[List[int]] = [[] for _ in range(num_links)]

    def update(self, states: np.ndarray) -> None:
        closing = (~states) & (self._open > 0)
        for link in np.flatnonzero(closing):
            self._per_link[link].append(int(self._open[link]))
        self._open[~states] = 0
        self._open[states] += 1

    def finish(self) -> List[int]:
        for link in np.flatnonzero(self._open > 0):
            self._per_link[link].append(int(self._open[link]))
        self._open[:] = 0
        return [length for runs in self._per_link for length in runs]


def trial(spec: TrialSpec) -> dict:
    """The consecutive-snapshot study, folded one target at a time."""
    params = scale_params(spec.params["scale"])
    num_consecutive = NUM_CONSECUTIVE[spec.params["scale"]]

    # One scenario with many target snapshots: variances are learned once
    # from the leading window, and the engine solves all consecutive
    # targets as one multi-RHS system against a single R* factorization.
    scenario = Scenario(
        topology="planetlab",
        params=params,
        prober=ProberConfig(
            probes_per_snapshot=params.probes,
            congestion_probability=0.08,
            truth_mode="propensity",
            propensity_range=(0.1, 0.5),
        ),
        model=INTERNET,
        num_training=params.snapshots,
        num_targets=num_consecutive,
        estimators=(EstimatorSpec("lia"),),
    )
    prepared = scenario.prepare(spec.seed)
    routing = prepared.routing
    inferred = RunLengthFold(routing.num_links)
    actual = RunLengthFold(routing.num_links)

    def consume(label, num_training, index, snapshot, result):
        inferred.update(result.values > THRESHOLD)
        actual.update(snapshot.virtual_congested(routing))

    scenario.run(seed=spec.seed, prepared=prepared, target_consumer=consume)
    return {
        "inferred_lengths": inferred.finish(),
        "actual_lengths": actual.finish(),
    }


def run(
    scale: str = "small",
    seed: Optional[int] = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    params = scale_params(scale)
    num_consecutive = NUM_CONSECUTIVE[scale]

    specs = [TrialSpec("duration", 0, seed=seed, params={"scale": scale})]
    (payload,) = execute_trials(runner, "duration", trial, specs)
    lengths = payload["inferred_lengths"]
    actual_lengths = payload["actual_lengths"]

    table = TextTable(
        ["run length", "inferred runs (%)", "ground-truth runs (%)"],
        float_fmt="{:.1f}",
    )
    max_len = max([1] + lengths + actual_lengths)
    inferred_arr = np.asarray(lengths or [0])
    actual_arr = np.asarray(actual_lengths or [0])
    for length in range(1, min(max_len, 5) + 1):
        table.add_row(
            [
                length,
                100.0 * float((inferred_arr == length).mean()) if lengths else 0.0,
                100.0 * float((actual_arr == length).mean())
                if actual_lengths
                else 0.0,
            ]
        )

    result = ExperimentResult(
        name="duration",
        description=(
            f"Congestion run lengths over {num_consecutive} consecutive "
            f"snapshots (t_l={THRESHOLD}, m={params.snapshots})"
        ),
        table=table,
        data={
            "inferred_lengths": lengths,
            "actual_lengths": actual_lengths,
        },
    )
    if lengths:
        single = 100.0 * float((inferred_arr == 1).mean())
        result.notes.append(f"{single:.1f}% of inferred congestion runs last one snapshot")
    return result
