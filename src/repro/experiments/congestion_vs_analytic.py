"""Congestion-induced vs analytic losses: does LIA survive real queues?

The paper's evaluation samples losses from an *analytic* process
(Gilbert chains parameterised by assigned rates).  This experiment
replays the same study with the loss realisation swapped for the
discrete-event packet simulator (:mod:`repro.netsim.sim`): drops happen
because finite FIFO buffers overflow under calibrated on/off drivers
plus AIMD/BBR-like cross traffic.  Everything else — topology, ground
truth, probing layout, estimators — is held fixed snapshot for
snapshot: both arms run ``truth_mode="fixed"`` from the same campaign
seed, so they share the identical congested set and assigned rates and
differ only in how those rates become packet drops.

Reported side by side per arm:

* LIA detection rate / false-positive rate and rate-accuracy (error
  factor, absolute error) against the *realised* loss fractions;
* SCFS on the same target snapshot (the single-snapshot baseline);
* delay tomography MAE — the congestion arm feeds the simulator's own
  per-probe queueing delays (the same packets that produced the drops)
  into the delay estimator, while the analytic arm uses the analytic
  :class:`~repro.delay.DelayProbingSimulator`.

Expected shape: both arms agree qualitatively (DR near 1, FPR small);
the congestion arm is noisier — burst lengths are emergent rather than
chain-specified, and cross traffic leaks a little loss onto good links
— which is exactly the robustness statement worth pinning.

Sizing note: the packet simulator costs ~100k events per snapshot at
these sizes, so the presets use smaller trees / shorter campaigns than
the analytic experiments; the comparison is within-experiment, both
arms at identical sizing.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.api import EstimatorSpec, Scenario, get
from repro.delay import DelayCampaign, DelayProbingSimulator, DelaySnapshot
from repro.experiments.base import (
    ExperimentResult,
    execute_trials,
    mean_and_ci,
    repetition_seeds,
    scale_params,
)
from repro.lossmodel import LLRD1
from repro.netsim.sim import TrafficConfig
from repro.probing import ProberConfig
from repro.runner import ParallelRunner, TrialSpec
from repro.utils.rng import derive_seed
from repro.utils.tables import TextTable

ARMS = ("analytic", "congestion")

#: Event-loop-friendly overrides of the scale presets (see module note).
SIZING = {
    "tiny": dict(tree_nodes=25, num_end_hosts=6, snapshots=5, probes=150),
    "small": dict(tree_nodes=40, num_end_hosts=10, snapshots=8, probes=300),
    "paper": dict(tree_nodes=80, num_end_hosts=16, snapshots=12, probes=500),
}

#: Sub-seed salt of the analytic arm's delay campaign (the congestion
#: arm needs none: its delays are byproducts of the loss simulation).
DELAY_SALT = 7


def _delay_mae(campaign: DelayCampaign) -> float:
    """Fit/predict delay tomography; MAE of inferred column deviations."""
    routing = campaign.routing
    training, target = campaign.split_training_target()
    estimator = get("delay")
    estimator.fit(training)
    result = estimator.predict(target)
    training_mean = np.mean(
        [s.virtual_link_delays(routing) for s in training.snapshots], axis=0
    )
    truth_dev = target.virtual_link_delays(routing) - training_mean
    return float(np.mean(np.abs(result.values - truth_dev)))


def _congestion_delay_campaign(process, prepared) -> DelayCampaign:
    """Delay snapshots from the loss simulation's own probe sojourns."""
    num_links = process.num_links
    campaign = DelayCampaign(routing=prepared.routing)
    path_links = [
        np.asarray(p.link_indices(), dtype=np.int64) for p in prepared.paths
    ]
    for trace in process.traces:
        link_delays = np.zeros(num_links)
        link_delays[trace.active_links] = trace.delays_ms.mean(axis=1)
        path_delays = np.array(
            [link_delays[links].sum() for links in path_links]
        )
        campaign.append(
            DelaySnapshot(
                path_delays=path_delays,
                num_probes=trace.num_probes,
                link_delays=link_delays,
            )
        )
    return campaign


def trial(spec: TrialSpec) -> dict:
    """One repetition: both arms on one topology, truth held identical."""
    params = scale_params(spec.params["scale"]).sized(
        **SIZING[spec.params["scale"]]
    )
    payload: Dict[str, dict] = {}
    for arm in ARMS:
        scenario = Scenario(
            topology="tree",
            params=params,
            prober=ProberConfig(
                probes_per_snapshot=params.probes,
                congestion_probability=0.10,
                truth_mode="fixed",
            ),
            model=LLRD1,
            num_training=params.snapshots,
            traffic=TrafficConfig(kind=arm),
            estimators=(
                EstimatorSpec("lia"),
                EstimatorSpec("scfs", {"link_threshold": LLRD1.threshold}),
            ),
        )
        prepared = scenario.prepare(spec.seed)
        simulator = scenario.build_simulator(prepared)
        if arm == "congestion":
            simulator.process.collect_traces = True
        campaign = simulator.run_campaign(
            scenario.campaign_length,
            prepared.routing,
            seed=derive_seed(spec.seed, scenario.campaign_salt),
        )
        outcome = scenario.evaluate(prepared, campaign)

        lia = outcome.evaluation("lia")
        scfs = outcome.evaluation("scfs")
        target = outcome.targets[-1]
        if arm == "congestion":
            delay_campaign = _congestion_delay_campaign(
                simulator.process, prepared
            )
        else:
            delay_sim = DelayProbingSimulator(
                prepared.paths,
                prepared.topology.network.num_links,
                probes_per_snapshot=params.probes,
                seed=derive_seed(spec.seed, DELAY_SALT),
            )
            delay_campaign = delay_sim.run_campaign(
                scenario.campaign_length,
                prepared.routing,
                seed=derive_seed(spec.seed, DELAY_SALT + 1),
            )
        payload[arm] = {
            "dr": lia.detection.detection_rate,
            "fpr": lia.detection.false_positive_rate,
            # Median error factors sit at exactly 1 (the clamped
            # good-link mass dominates); the worst link discriminates.
            "error_factor": lia.accuracy.error_factors.maximum,
            "abs_error": lia.accuracy.absolute_errors.maximum,
            "scfs_dr": scfs.detection.detection_rate,
            "scfs_fpr": scfs.detection.false_positive_rate,
            "delay_mae": _delay_mae(delay_campaign),
            "target_loss_mean": float(
                np.mean(target.realized_loss_fractions)
            ),
        }
    return payload


METRICS = (
    ("dr", "LIA DR"),
    ("fpr", "LIA FPR"),
    ("error_factor", "LIA max err-factor"),
    ("abs_error", "LIA max |err|"),
    ("scfs_dr", "SCFS DR"),
    ("scfs_fpr", "SCFS FPR"),
    ("delay_mae", "Delay MAE ms"),
)


def run(
    scale: str = "small",
    seed: Optional[int] = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    params = scale_params(scale).sized(**SIZING[scale])
    specs = [
        TrialSpec("congestion", rep, seed=rep_seed, params={"scale": scale})
        for rep, rep_seed in enumerate(
            repetition_seeds(seed, params.repetitions)
        )
    ]
    payloads = execute_trials(runner, "congestion", trial, specs)

    series: Dict[str, Dict[str, list]] = {
        arm: {key: [] for key, _ in METRICS} for arm in ARMS
    }
    for payload in payloads:
        for arm in ARMS:
            for key, _ in METRICS:
                series[arm][key].append(payload[arm][key])

    table = TextTable(["metric", "analytic", "congestion"])
    for key, label in METRICS:
        cells = []
        for arm in ARMS:
            mean, ci = mean_and_ci(series[arm][key])
            cells.append(f"{mean:.3f} +- {ci:.3f}")
        table.add_row([label, *cells])

    result = ExperimentResult(
        name="congestion",
        description=(
            f"LIA/SCFS/delay accuracy with analytic (Gilbert) vs "
            f"congestion-induced (packet-level queue overflow) losses; "
            f"{params.tree_nodes}-node trees, identical ground truth per "
            f"arm, m={params.snapshots}, S={params.probes}, "
            f"{params.repetitions} repetitions"
        ),
        table=table,
        data={arm: {k: list(v) for k, v in series[arm].items()} for arm in ARMS},
    )
    dr_a = float(np.mean(series["analytic"]["dr"]))
    dr_c = float(np.mean(series["congestion"]["dr"]))
    fpr_a = float(np.mean(series["analytic"]["fpr"]))
    fpr_c = float(np.mean(series["congestion"]["fpr"]))
    result.notes.append(
        f"LIA DR {dr_a:.3f} (analytic) vs {dr_c:.3f} (congestion); "
        f"FPR {fpr_a:.3f} vs {fpr_c:.3f} — emergent queue-overflow losses "
        "keep the variance signal LIA needs"
    )
    return result
