"""Shared machinery of the experiment harness.

Every experiment module exposes ``run(scale="small", seed=0) ->
ExperimentResult``.  ``scale="paper"`` uses the paper's parameters
(1000-node topologies, m = 50, S = 1000, 10 repetitions); ``"small"``
shrinks them so the whole suite regenerates in minutes on a laptop, and
``"tiny"`` is for CI/benchmark smoke runs.  Scaling down changes absolute
numbers, never the qualitative shape the experiments check.

Trial functions phrase their topology → probe → infer → score loop as
:class:`repro.api.Scenario` runs; this module keeps only experiment
*sizing* (the scale presets) plus rendering/aggregation helpers.  The
topology front end (``make_topology``/``prepare_topology``/
``PreparedTopology``) lives in :mod:`repro.topology.prepare` and is
re-exported here for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api import EstimatorSpec, Scenario
from repro.core.lia import LIAResult
from repro.lossmodel import LLRD1, LossRateModel
from repro.lossmodel.processes import LossProcess
from repro.metrics import AccuracyReport, DetectionOutcome
from repro.probing import ProberConfig
from repro.probing.snapshot import Snapshot
from repro.topology.prepare import (
    MESH_TOPOLOGY_KINDS,
    PreparedTopology,
    make_topology,
    prepare_topology,
)
from repro.runner import ParallelRunner, ResultView, TrialSpec
from repro.utils.rng import derive_seed
from repro.utils.tables import TextTable

__all__ = [
    "MESH_TOPOLOGY_KINDS",
    "SCALES",
    "SCALE_PRESETS",
    "ExperimentResult",
    "PreparedTopology",
    "ScaleParams",
    "TrialOutcome",
    "execute_trials",
    "fold_grouped",
    "lia_scenario",
    "make_topology",
    "mean_and_ci",
    "prepare_topology",
    "repetition_seeds",
    "run_lia_trial",
    "scale_params",
]

SCALES = ("tiny", "small", "paper")


@dataclass(frozen=True)
class ScaleParams:
    """Experiment sizing for one scale preset."""

    tree_nodes: int
    mesh_nodes: int
    num_end_hosts: int
    snapshots: int          # the paper's m
    probes: int             # the paper's S
    repetitions: int

    def sized(self, **overrides) -> "ScaleParams":
        return replace(self, **overrides)


SCALE_PRESETS: Dict[str, ScaleParams] = {
    "tiny": ScaleParams(
        tree_nodes=60, mesh_nodes=80, num_end_hosts=10,
        snapshots=15, probes=300, repetitions=2,
    ),
    "small": ScaleParams(
        tree_nodes=250, mesh_nodes=200, num_end_hosts=20,
        snapshots=30, probes=600, repetitions=3,
    ),
    "paper": ScaleParams(
        tree_nodes=1000, mesh_nodes=1000, num_end_hosts=60,
        snapshots=50, probes=1000, repetitions=10,
    ),
}


def scale_params(scale: str) -> ScaleParams:
    if scale not in SCALE_PRESETS:
        raise ValueError(f"unknown scale {scale!r}, want one of {SCALES}")
    return SCALE_PRESETS[scale]


@dataclass
class ExperimentResult:
    """Rendered output plus raw data of one experiment run."""

    name: str
    description: str
    table: TextTable
    data: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    extra_tables: List[Tuple[str, TextTable]] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"== {self.name} ==", self.description, "", self.table.render()]
        for title, extra in self.extra_tables:
            lines.extend(["", title, extra.render()])
        if self.notes:
            lines.append("")
            lines.extend(f"note: {n}" for n in self.notes)
        return "\n".join(lines)


# -- campaign + evaluation -----------------------------------------------------


@dataclass(frozen=True)
class TrialOutcome:
    """Metrics of one LIA inference trial."""

    detection: DetectionOutcome
    accuracy: AccuracyReport
    result: LIAResult
    target: Snapshot


def lia_scenario(
    topology: str = "tree",
    params: Optional[ScaleParams] = None,
    congestion_probability: float = 0.10,
    snapshots: int = 50,
    probes: int = 1000,
    model: LossRateModel = LLRD1,
    process: Optional[LossProcess] = None,
    truth_mode: str = "fixed",
    variance_method: str = "wls",
    reduction_strategy: str = "threshold",
    fidelity: str = "packet",
    **scenario_kwargs,
) -> Scenario:
    """The canonical single-LIA scenario most experiments sweep.

    Extra keyword arguments pass through to :class:`repro.api.Scenario`
    (``topology_salt``, ``training_grid``, ``num_targets``, …).
    """
    return Scenario(
        topology=topology,
        params=params,
        prober=ProberConfig(
            probes_per_snapshot=probes,
            congestion_probability=congestion_probability,
            truth_mode=truth_mode,
            fidelity=fidelity,
        ),
        model=model,
        process=process,
        num_training=snapshots,
        estimators=(
            EstimatorSpec(
                "lia",
                {
                    "variance_method": variance_method,
                    "reduction_strategy": reduction_strategy,
                },
            ),
        ),
        **scenario_kwargs,
    )


def run_lia_trial(
    prepared: PreparedTopology,
    seed: Optional[int],
    congestion_probability: float = 0.10,
    snapshots: int = 50,
    probes: int = 1000,
    model: LossRateModel = LLRD1,
    process: Optional[LossProcess] = None,
    truth_mode: str = "fixed",
    variance_method: str = "wls",
    reduction_strategy: str = "threshold",
    fidelity: str = "packet",
) -> TrialOutcome:
    """One full LIA trial: simulate m+1 snapshots, learn, infer, score.

    A thin compatibility shim over :class:`repro.api.Scenario` (the
    topology is pre-built and *seed* feeds the campaign directly).
    Accuracy is scored against the target snapshot's *realized*
    per-column loss fractions (what LIA estimates); detection against
    the assigned congestion marks, both per Section 6.
    """
    scenario = lia_scenario(
        params=None,
        congestion_probability=congestion_probability,
        snapshots=snapshots,
        probes=probes,
        model=model,
        process=process,
        truth_mode=truth_mode,
        variance_method=variance_method,
        reduction_strategy=reduction_strategy,
        fidelity=fidelity,
    )
    outcome = scenario.run(prepared=prepared, campaign_seed=seed)
    evaluation = outcome.evaluations[0]
    return TrialOutcome(
        detection=evaluation.detection,
        accuracy=evaluation.accuracy,
        result=evaluation.result.raw,
        target=outcome.targets[-1],
    )


def mean_and_ci(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and half-width of a normal 95 % confidence interval."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no values to average")
    if arr.size == 1:
        return float(arr[0]), 0.0
    half = 1.96 * arr.std(ddof=1) / np.sqrt(arr.size)
    return float(arr.mean()), float(half)


def repetition_seeds(seed: Optional[int], count: int) -> List[Optional[int]]:
    """Independent derived seeds for experiment repetitions."""
    return [derive_seed(seed, i) if seed is not None else None for i in range(count)]


# -- trial scheduling ----------------------------------------------------------


def execute_trials(
    runner: Optional[ParallelRunner],
    experiment: str,
    trial_fn: Callable[[TrialSpec], dict],
    specs: Sequence[TrialSpec],
) -> ResultView:
    """Run an experiment's trial list through a :class:`ParallelRunner`.

    Every experiment module phrases its Monte-Carlo campaign as a list of
    :class:`TrialSpec` (repetition seeds x parameter grid) plus a pure,
    module-level trial function returning a JSON-serialisable payload.
    When *runner* is ``None`` a throwaway sequential runner (``n_jobs=1``,
    no cache) executes the trials in-process in spec order — exactly the
    behaviour the harness had before it learned to parallelise, seed for
    seed.

    The return value is a lazy, index-ordered
    :class:`~repro.runner.store.ResultView`: aggregators fold it in a
    single pass so a disk-backed (``store_dir``) campaign streams one
    payload at a time instead of materialising the whole grid in RAM.
    """
    active = runner if runner is not None else ParallelRunner(n_jobs=1)
    return active.run(experiment, trial_fn, specs)


def fold_grouped(
    payloads: Sequence[dict],
    groups: Sequence[Tuple[object, int]],
    fold: Callable[[object, dict], None],
) -> None:
    """Single-pass fold of a block-layout payload sequence.

    Experiments that build their spec list group-major (all repetitions
    of one topology kind / grid value / ablation label, then the next)
    aggregate with this: *groups* is ``[(key, count), ...]`` in the same
    order the specs were appended, and *fold* is called as
    ``fold(key, payload)`` exactly once per payload, in trial order.
    One pass over the (possibly disk-backed) view, no index arithmetic
    at the call sites.
    """
    total = sum(count for _, count in groups)
    if len(payloads) != total:
        raise ValueError(
            f"group sizes cover {total} payloads, got {len(payloads)}"
        )
    group_iter = iter(groups)
    key, remaining = None, 0
    for payload in payloads:
        while remaining == 0:
            key, remaining = next(group_iter)
        fold(key, payload)
        remaining -= 1
