"""Shared machinery of the experiment harness.

Every experiment module exposes ``run(scale="small", seed=0) ->
ExperimentResult``.  ``scale="paper"`` uses the paper's parameters
(1000-node topologies, m = 50, S = 1000, 10 repetitions); ``"small"``
shrinks them so the whole suite regenerates in minutes on a laptop, and
``"tiny"`` is for CI/benchmark smoke runs.  Scaling down changes absolute
numbers, never the qualitative shape the experiments check.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lia import LIAResult, LossInferenceAlgorithm
from repro.lossmodel import LLRD1, LossRateModel
from repro.lossmodel.processes import LossProcess
from repro.metrics import (
    AccuracyReport,
    DetectionOutcome,
    evaluate_location,
)
from repro.probing import ProberConfig, ProbingSimulator
from repro.probing.snapshot import Snapshot
from repro.topology import (
    Path,
    RoutingMatrix,
    build_paths,
    find_fluttering_pairs,
    remove_fluttering_paths,
)
from repro.topology.generators import (
    GeneratedTopology,
    barabasi_albert,
    dimes_like,
    hierarchical_bottom_up,
    hierarchical_top_down,
    planetlab_like,
    random_tree,
    waxman,
)
from repro.runner import ParallelRunner, TrialSpec
from repro.utils.rng import derive_seed
from repro.utils.tables import TextTable

SCALES = ("tiny", "small", "paper")


@dataclass(frozen=True)
class ScaleParams:
    """Experiment sizing for one scale preset."""

    tree_nodes: int
    mesh_nodes: int
    num_end_hosts: int
    snapshots: int          # the paper's m
    probes: int             # the paper's S
    repetitions: int

    def sized(self, **overrides) -> "ScaleParams":
        return replace(self, **overrides)


SCALE_PRESETS: Dict[str, ScaleParams] = {
    "tiny": ScaleParams(
        tree_nodes=60, mesh_nodes=80, num_end_hosts=10,
        snapshots=15, probes=300, repetitions=2,
    ),
    "small": ScaleParams(
        tree_nodes=250, mesh_nodes=200, num_end_hosts=20,
        snapshots=30, probes=600, repetitions=3,
    ),
    "paper": ScaleParams(
        tree_nodes=1000, mesh_nodes=1000, num_end_hosts=60,
        snapshots=50, probes=1000, repetitions=10,
    ),
}


def scale_params(scale: str) -> ScaleParams:
    if scale not in SCALE_PRESETS:
        raise ValueError(f"unknown scale {scale!r}, want one of {SCALES}")
    return SCALE_PRESETS[scale]


@dataclass
class ExperimentResult:
    """Rendered output plus raw data of one experiment run."""

    name: str
    description: str
    table: TextTable
    data: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"== {self.name} ==", self.description, "", self.table.render()]
        if self.notes:
            lines.append("")
            lines.extend(f"note: {n}" for n in self.notes)
        return "\n".join(lines)


# -- topology construction ------------------------------------------------------


def make_topology(
    kind: str, params: ScaleParams, seed: Optional[int]
) -> GeneratedTopology:
    """Build one of the paper's evaluation topologies at the given scale."""
    if kind == "tree":
        return random_tree(num_nodes=params.tree_nodes, seed=seed)
    if kind == "waxman":
        return waxman(
            num_nodes=params.mesh_nodes,
            num_end_hosts=params.num_end_hosts,
            seed=seed,
        )
    if kind == "barabasi-albert":
        return barabasi_albert(
            num_nodes=params.mesh_nodes,
            num_end_hosts=params.num_end_hosts,
            seed=seed,
        )
    if kind == "hierarchical-td":
        routers = max(2, params.mesh_nodes // 20)
        return hierarchical_top_down(
            num_ases=20,
            routers_per_as=routers,
            num_end_hosts=params.num_end_hosts,
            seed=seed,
        )
    if kind == "hierarchical-bu":
        return hierarchical_bottom_up(
            num_nodes=params.mesh_nodes,
            num_end_hosts=params.num_end_hosts,
            seed=seed,
        )
    if kind == "planetlab":
        return planetlab_like(
            num_sites=max(4, params.num_end_hosts // 2),
            hosts_per_site=2,
            seed=seed,
        )
    if kind == "dimes":
        return dimes_like(
            num_ases=max(10, params.mesh_nodes // 12),
            num_hosts=params.num_end_hosts,
            seed=seed,
        )
    raise ValueError(f"unknown topology kind {kind!r}")


MESH_TOPOLOGY_KINDS = (
    "barabasi-albert",
    "waxman",
    "hierarchical-td",
    "hierarchical-bu",
    "planetlab",
    "dimes",
)


@dataclass
class PreparedTopology:
    """A topology with fluttering-free paths and its routing matrix."""

    topology: GeneratedTopology
    paths: List[Path]
    routing: RoutingMatrix
    num_removed_fluttering: int


def prepare_topology(
    kind: str, params: ScaleParams, seed: Optional[int]
) -> PreparedTopology:
    """Generate, route, enforce T.2 and reduce — the full Section 3 front end."""
    topology = make_topology(kind, params, seed)
    paths = build_paths(
        topology.network, topology.beacons, topology.destinations
    )
    removed = 0
    if find_fluttering_pairs(paths):
        paths, dropped = remove_fluttering_paths(paths)
        removed = len(dropped)
    routing = RoutingMatrix.from_paths(paths)
    return PreparedTopology(
        topology=topology,
        paths=paths,
        routing=routing,
        num_removed_fluttering=removed,
    )


# -- campaign + evaluation -----------------------------------------------------


@dataclass(frozen=True)
class TrialOutcome:
    """Metrics of one LIA inference trial."""

    detection: DetectionOutcome
    accuracy: AccuracyReport
    result: LIAResult
    target: Snapshot


def run_lia_trial(
    prepared: PreparedTopology,
    seed: Optional[int],
    congestion_probability: float = 0.10,
    snapshots: int = 50,
    probes: int = 1000,
    model: LossRateModel = LLRD1,
    process: Optional[LossProcess] = None,
    truth_mode: str = "fixed",
    variance_method: str = "wls",
    reduction_strategy: str = "threshold",
    fidelity: str = "packet",
) -> TrialOutcome:
    """One full LIA trial: simulate m+1 snapshots, learn, infer, score.

    Accuracy is scored against the target snapshot's *realized* per-column
    loss fractions (what LIA estimates); detection against the assigned
    congestion marks, both per Section 6.
    """
    config = ProberConfig(
        probes_per_snapshot=probes,
        congestion_probability=congestion_probability,
        truth_mode=truth_mode,
        fidelity=fidelity,
    )
    simulator = ProbingSimulator(
        prepared.paths,
        prepared.topology.network.num_links,
        model=model,
        process=process,
        config=config,
    )
    campaign = simulator.run_campaign(snapshots + 1, prepared.routing, seed=seed)
    lia = LossInferenceAlgorithm(
        prepared.routing,
        variance_method=variance_method,
        reduction_strategy=reduction_strategy,
    )
    result = lia.run(campaign)
    target = campaign[-1]
    detection = evaluate_location(
        result.loss_rates,
        target.virtual_congested(prepared.routing),
        prepared.routing,
        model.threshold,
    )
    accuracy = AccuracyReport.compare(
        target.realized_virtual_loss_rates(prepared.routing), result.loss_rates
    )
    return TrialOutcome(
        detection=detection, accuracy=accuracy, result=result, target=target
    )


def mean_and_ci(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and half-width of a normal 95 % confidence interval."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no values to average")
    if arr.size == 1:
        return float(arr[0]), 0.0
    half = 1.96 * arr.std(ddof=1) / np.sqrt(arr.size)
    return float(arr.mean()), float(half)


def repetition_seeds(seed: Optional[int], count: int) -> List[Optional[int]]:
    """Independent derived seeds for experiment repetitions."""
    return [derive_seed(seed, i) if seed is not None else None for i in range(count)]


# -- trial scheduling ----------------------------------------------------------


def execute_trials(
    runner: Optional[ParallelRunner],
    experiment: str,
    trial_fn: Callable[[TrialSpec], dict],
    specs: Sequence[TrialSpec],
) -> List[dict]:
    """Run an experiment's trial list through a :class:`ParallelRunner`.

    Every experiment module phrases its Monte-Carlo campaign as a list of
    :class:`TrialSpec` (repetition seeds x parameter grid) plus a pure,
    module-level trial function returning a JSON-serialisable payload.
    When *runner* is ``None`` a throwaway sequential runner (``n_jobs=1``,
    no cache) executes the trials in-process in spec order — exactly the
    behaviour the harness had before it learned to parallelise, seed for
    seed.
    """
    active = runner if runner is not None else ParallelRunner(n_jobs=1)
    return active.run(experiment, trial_fn, specs)
