"""Figure 3: mean versus variance of end-to-end path loss rates.

The paper measured 17 200 PlanetLab paths for a day (250 loss-rate
samples per path, 1000 probes each) and found variance to be a
monotonically increasing function of the mean — the empirical basis of
Assumption S.3.  We reproduce the measurement over the PlanetLab-like
topology with churning (propensity-mode) congestion, bin paths by mean
loss rate, and report the mean variance per bin plus the rank
correlation.  The expected shape: variance rises with the mean, strongly
positive Spearman correlation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

from repro.api import Scenario
from repro.experiments.base import (
    ExperimentResult,
    execute_trials,
    scale_params,
)
from repro.lossmodel import INTERNET
from repro.probing import ProberConfig
from repro.runner import ParallelRunner, TrialSpec
from repro.utils.tables import TextTable

NUM_BINS = 8


def trial(spec: TrialSpec) -> dict:
    """The (single) measurement campaign: per-path loss means/variances.

    A measurement-only study: only the scenario's topology and probing
    stages run (no estimators), with an explicit campaign length.
    """
    params = scale_params(spec.params["scale"])
    num_samples = spec.params["num_samples"]

    scenario = Scenario(
        topology="planetlab",
        params=params,
        prober=ProberConfig(
            probes_per_snapshot=params.probes,
            congestion_probability=0.08,
            truth_mode="propensity",
            propensity_range=(0.1, 0.7),
        ),
        model=INTERNET,
        topology_salt=1,
        campaign_salt=2,
    )
    prepared = scenario.prepare(spec.seed)
    campaign = scenario.simulate(prepared, spec.seed, length=num_samples)

    loss = np.vstack([s.path_loss_rates() for s in campaign.snapshots])
    return {
        "means": loss.mean(axis=0).tolist(),
        "variances": loss.var(axis=0, ddof=1).tolist(),
    }


def run(
    scale: str = "small",
    seed: Optional[int] = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    # 250 samples per path in the paper; scale the sample count, not S.
    num_samples = {"tiny": 40, "small": 100, "paper": 250}[scale]
    scale_params(scale)  # validate early, before any worker dispatch

    specs = [
        TrialSpec(
            "fig3", 0, seed=seed,
            params={"scale": scale, "num_samples": num_samples},
        )
    ]
    (payload,) = execute_trials(runner, "fig3", trial, specs)
    means = np.asarray(payload["means"])
    variances = np.asarray(payload["variances"])
    rho = float(stats.spearmanr(means, variances).statistic)

    table = TextTable(
        ["mean-loss bin", "paths", "mean of means", "mean variance"],
        float_fmt="{:.6f}",
    )
    edges = np.quantile(means, np.linspace(0.0, 1.0, NUM_BINS + 1))
    edges[-1] += 1e-12
    bin_variances = []
    for b in range(NUM_BINS):
        mask = (means >= edges[b]) & (means < edges[b + 1])
        if not mask.any():
            continue
        bin_mean = float(means[mask].mean())
        bin_var = float(variances[mask].mean())
        bin_variances.append(bin_var)
        table.add_row(
            [f"[{edges[b]:.4f}, {edges[b + 1]:.4f})", int(mask.sum()), bin_mean, bin_var]
        )

    monotone_fraction = float(
        np.mean(np.diff(bin_variances) >= 0) if len(bin_variances) > 1 else 1.0
    )
    result = ExperimentResult(
        name="fig3",
        description=(
            "Mean vs variance of path loss rates "
            f"({means.size} paths x {num_samples} samples)"
        ),
        table=table,
        data={
            "means": means,
            "variances": variances,
            "spearman": rho,
            "monotone_fraction": monotone_fraction,
        },
    )
    result.notes.append(f"Spearman rank correlation (mean, variance) = {rho:.3f}")
    result.notes.append(
        f"fraction of adjacent bins with non-decreasing variance = "
        f"{monotone_fraction:.2f}"
    )
    return result
