"""Figure 6: CDFs of absolute errors and error factors (trees, m = 50).

The paper plots the cumulative distributions of (i) the absolute
difference between inferred and true link loss rates and (ii) the error
factor f_delta, over all links of the tree simulations at m = 50.  Both
distributions are extremely concentrated: the inferred values "match
almost exactly the true values".

We reproduce both CDFs against the realized per-snapshot link loss
fractions and report them at fixed query points.  Expected shape: the
absolute-error CDF reaches ~1 within a few 1e-3; the error-factor CDF
reaches ~1 below ~1.25.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.experiments.base import (
    ExperimentResult,
    execute_trials,
    lia_scenario,
    repetition_seeds,
    scale_params,
)
from repro.metrics import EmpiricalCDF, absolute_error, error_factor
from repro.runner import ParallelRunner, TrialSpec
from repro.utils.tables import TextTable

ABS_POINTS = (0.0005, 0.001, 0.0015, 0.002, 0.0025, 0.005, 0.01)
FACTOR_POINTS = (1.0, 1.05, 1.1, 1.15, 1.2, 1.25, 1.5)


def trial(spec: TrialSpec) -> dict:
    """One repetition: per-link absolute errors and error factors."""
    params = scale_params(spec.params["scale"])
    scenario = lia_scenario(
        topology="tree",
        params=params,
        snapshots=params.snapshots,
        probes=params.probes,
    )
    outcome = scenario.run(seed=spec.seed)
    realized = outcome.targets[-1].realized_virtual_loss_rates(
        outcome.prepared.routing
    )
    loss_rates = outcome.evaluations[0].result.values
    return {
        "abs_errors": absolute_error(realized, loss_rates).tolist(),
        "factors": error_factor(realized, loss_rates).tolist(),
    }


def run(
    scale: str = "small",
    seed: Optional[int] = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    params = scale_params(scale)
    specs = [
        TrialSpec("fig6", rep, seed=rep_seed, params={"scale": scale})
        for rep, rep_seed in enumerate(repetition_seeds(seed, params.repetitions))
    ]
    payloads = execute_trials(runner, "fig6", trial, specs)

    # One streaming pass: pooled error samples accumulate per payload;
    # only the samples themselves (the CDFs' input) stay resident.
    abs_chunks: list = []
    factor_chunks: list = []
    for payload in payloads:
        abs_chunks.append(np.asarray(payload["abs_errors"]))
        factor_chunks.append(np.asarray(payload["factors"]))
    abs_cdf = EmpiricalCDF.of(np.concatenate(abs_chunks))
    factor_cdf = EmpiricalCDF.of(np.concatenate(factor_chunks))

    table = TextTable(
        ["abs err x", "P(err<=x)", "factor x", "P(f<=x)"], float_fmt="{:.4f}"
    )
    for (ax, ay), (fx, fy) in zip(
        abs_cdf.series(ABS_POINTS), factor_cdf.series(FACTOR_POINTS)
    ):
        table.add_row([ax, ay, fx, fy])

    result = ExperimentResult(
        name="fig6",
        description=(
            f"Error CDFs on trees at m={params.snapshots} "
            f"({abs_cdf.num_samples} link estimates pooled over "
            f"{params.repetitions} repetitions)"
        ),
        table=table,
        data={"abs_cdf": abs_cdf, "factor_cdf": factor_cdf},
    )
    result.notes.append(
        f"median abs err = {abs_cdf.quantile(0.5):.5f}, "
        f"p99 = {abs_cdf.quantile(0.99):.5f}"
    )
    result.notes.append(
        f"median error factor = {factor_cdf.quantile(0.5):.4f}, "
        f"p99 = {factor_cdf.quantile(0.99):.4f}"
    )
    return result
