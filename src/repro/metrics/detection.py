"""Congested-link location metrics: detection rate and false positive rate.

Section 6 of the paper:

    DR  = |F ∩ X| / |F|      (fraction of congested links found)
    FPR = |X \\ F| / |X|      (fraction of identified links that are good)

where ``F`` is the set of actually congested links and ``X`` the set a
location algorithm reports.  Inferred loss rates are turned into ``X`` by
comparison against the loss-model threshold ``t_l``.

One subtlety our virtual links introduce: a routing-matrix column can
aggregate several alias physical links, and a chain of, say, three good
links can legitimately lose slightly more than ``t_l`` in total.  The
column-level threshold therefore compounds per member:
``1 - (1 - t_l) ** n_members``, which equals ``t_l`` for singleton
columns and never misgrades an all-good alias chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.routing import RoutingMatrix


def per_column_thresholds(routing: RoutingMatrix, threshold: float) -> np.ndarray:
    """Member-compounded classification threshold for each column."""
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    members = np.array([v.size for v in routing.virtual_links], dtype=np.float64)
    return 1.0 - (1.0 - threshold) ** members


def classify_congested(
    loss_rates: np.ndarray, thresholds: np.ndarray
) -> np.ndarray:
    """Boolean congestion classification, columnwise thresholds allowed."""
    loss = np.asarray(loss_rates, dtype=np.float64)
    thr = np.broadcast_to(np.asarray(thresholds, dtype=np.float64), loss.shape)
    return loss > thr


@dataclass(frozen=True)
class DetectionOutcome:
    """Confusion counts of a congested-link location run."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def num_congested(self) -> int:
        return self.true_positives + self.false_negatives

    @property
    def num_identified(self) -> int:
        return self.true_positives + self.false_positives

    @property
    def detection_rate(self) -> float:
        """DR = |F ∩ X| / |F|; defined as 1 when nothing was congested."""
        if self.num_congested == 0:
            return 1.0
        return self.true_positives / self.num_congested

    @property
    def false_positive_rate(self) -> float:
        """FPR = |X \\ F| / |X|; defined as 0 when nothing was identified."""
        if self.num_identified == 0:
            return 0.0
        return self.false_positives / self.num_identified

    def __add__(self, other: "DetectionOutcome") -> "DetectionOutcome":
        return DetectionOutcome(
            true_positives=self.true_positives + other.true_positives,
            false_positives=self.false_positives + other.false_positives,
            false_negatives=self.false_negatives + other.false_negatives,
            true_negatives=self.true_negatives + other.true_negatives,
        )


def detection_outcome(
    identified: np.ndarray, congested: np.ndarray
) -> DetectionOutcome:
    """Confusion counts from boolean identified/actual masks."""
    identified = np.asarray(identified, dtype=bool)
    congested = np.asarray(congested, dtype=bool)
    if identified.shape != congested.shape:
        raise ValueError("masks must have identical shape")
    return DetectionOutcome(
        true_positives=int((identified & congested).sum()),
        false_positives=int((identified & ~congested).sum()),
        false_negatives=int((~identified & congested).sum()),
        true_negatives=int((~identified & ~congested).sum()),
    )


def evaluate_location(
    inferred_loss_rates: np.ndarray,
    true_congested: np.ndarray,
    routing: RoutingMatrix,
    threshold: float,
) -> DetectionOutcome:
    """One-call DR/FPR evaluation of inferred per-column loss rates."""
    thresholds = per_column_thresholds(routing, threshold)
    identified = classify_congested(inferred_loss_rates, thresholds)
    return detection_outcome(identified, true_congested)
