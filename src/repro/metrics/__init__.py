"""Evaluation metrics: DR/FPR, error factors, CDFs, cross-validation."""

from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.detection import (
    DetectionOutcome,
    classify_congested,
    detection_outcome,
    evaluate_location,
    per_column_thresholds,
)
from repro.metrics.errors import (
    DEFAULT_DELTA,
    AccuracyReport,
    ErrorSummary,
    absolute_error,
    error_factor,
)
from repro.metrics.validation import (
    DEFAULT_EPSILON,
    ConsistencyResult,
    physical_log_rates,
    validate_against_paths,
)

__all__ = [
    "DEFAULT_DELTA",
    "DEFAULT_EPSILON",
    "AccuracyReport",
    "ConsistencyResult",
    "DetectionOutcome",
    "EmpiricalCDF",
    "ErrorSummary",
    "absolute_error",
    "classify_congested",
    "detection_outcome",
    "error_factor",
    "evaluate_location",
    "per_column_thresholds",
    "physical_log_rates",
    "validate_against_paths",
]
