"""Empirical CDFs (for the Figure 6 reproductions)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical distribution function built from samples."""

    sorted_values: np.ndarray

    @classmethod
    def of(cls, samples: np.ndarray) -> "EmpiricalCDF":
        values = np.sort(np.asarray(samples, dtype=np.float64).ravel())
        if values.size == 0:
            raise ValueError("cannot build a CDF from zero samples")
        return cls(sorted_values=values)

    @property
    def num_samples(self) -> int:
        return int(self.sorted_values.shape[0])

    def at(self, points) -> np.ndarray:
        """P(X <= point) for each query point (vectorised)."""
        pts = np.asarray(points, dtype=np.float64)
        ranks = np.searchsorted(self.sorted_values, pts, side="right")
        return ranks / self.num_samples

    def quantile(self, q) -> np.ndarray:
        """Inverse CDF via linear interpolation."""
        return np.quantile(self.sorted_values, q)

    def series(self, points: Sequence[float]) -> "list[tuple[float, float]]":
        """(x, F(x)) pairs ready for table rendering."""
        values = self.at(points)
        return [(float(x), float(y)) for x, y in zip(points, values)]
