"""Loss-rate accuracy metrics: absolute errors and the error factor.

The error factor (Bu et al., adopted in Section 6 of the paper) compares a
true loss probability ``q`` with an inferred ``q*`` after flooring both at
a margin ``delta``::

    f_delta(q, q*) = max{ q(delta) / q*(delta), q*(delta) / q(delta) }

with ``q(delta) = max(delta, q)``.  The default margin is 1e-3 as in the
paper.  Absolute errors are plain ``|q - q*|``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

DEFAULT_DELTA = 1e-3


def error_factor(
    true_loss: np.ndarray,
    inferred_loss: np.ndarray,
    delta: float = DEFAULT_DELTA,
) -> np.ndarray:
    """Vectorised error factor ``f_delta`` (eq. (10) of the paper)."""
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    q = np.maximum(np.asarray(true_loss, dtype=np.float64), delta)
    q_star = np.maximum(np.asarray(inferred_loss, dtype=np.float64), delta)
    if q.shape != q_star.shape:
        raise ValueError("loss vectors must align")
    return np.maximum(q / q_star, q_star / q)


def absolute_error(true_loss: np.ndarray, inferred_loss: np.ndarray) -> np.ndarray:
    q = np.asarray(true_loss, dtype=np.float64)
    q_star = np.asarray(inferred_loss, dtype=np.float64)
    if q.shape != q_star.shape:
        raise ValueError("loss vectors must align")
    return np.abs(q - q_star)


@dataclass(frozen=True)
class ErrorSummary:
    """Max / median / min, the three columns Table 2 reports."""

    maximum: float
    median: float
    minimum: float

    @classmethod
    def of(cls, values: np.ndarray) -> "ErrorSummary":
        v = np.asarray(values, dtype=np.float64)
        if v.size == 0:
            raise ValueError("cannot summarise an empty error vector")
        return cls(
            maximum=float(v.max()),
            median=float(np.median(v)),
            minimum=float(v.min()),
        )

    def as_row(self) -> "tuple[float, float, float]":
        return (self.maximum, self.median, self.minimum)


@dataclass(frozen=True)
class AccuracyReport:
    """Error-factor and absolute-error summaries for one inference run."""

    error_factors: ErrorSummary
    absolute_errors: ErrorSummary

    @classmethod
    def compare(
        cls,
        true_loss: np.ndarray,
        inferred_loss: np.ndarray,
        delta: float = DEFAULT_DELTA,
    ) -> "AccuracyReport":
        return cls(
            error_factors=ErrorSummary.of(
                error_factor(true_loss, inferred_loss, delta)
            ),
            absolute_errors=ErrorSummary.of(
                absolute_error(true_loss, inferred_loss)
            ),
        )
