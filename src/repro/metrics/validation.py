"""Indirect cross-validation of inferred link rates (Section 7.2).

On the real Internet the true link rates are unknown, so the paper
validates indirectly: split the measured paths randomly into an
*inference set* and a *validation set* of equal size, run LIA on the
inference half, and declare a validation path consistent when

    | phi_hat_i  -  prod_{e_k in P_i ∩ E_inf} phi_hat_{e_k} |  <=  epsilon

with ``epsilon = 0.005``.  ``E_inf`` is the set of physical links covered
by the inference topology; links of the validation path outside ``E_inf``
contribute nothing (their factor is treated as 1, exactly as in the
paper's product over ``P_i ∩ E_inf``).

A virtual column groups alias physical links; when a validation path
traverses only part of a group we attribute the column's log rate
uniformly across members — the only consistent disaggregation available
to an end-to-end method, and an explicit modelling choice recorded here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.lia import LIAResult
from repro.topology.graph import Path
from repro.topology.routing import RoutingMatrix

DEFAULT_EPSILON = 0.005


def physical_log_rates(
    result_rates: np.ndarray, inference_routing: RoutingMatrix
) -> Dict[int, float]:
    """Per-physical-link log transmission rates from per-column estimates.

    Column log rates are split uniformly across alias members.
    """
    rates = np.asarray(result_rates, dtype=np.float64)
    if rates.shape != (inference_routing.num_links,):
        raise ValueError("one rate per routing-matrix column required")
    log_rates = np.log(np.clip(rates, 1e-12, 1.0))
    out: Dict[int, float] = {}
    for vlink in inference_routing.virtual_links:
        share = log_rates[vlink.column] / vlink.size
        for member_index in vlink.member_indices():
            out[member_index] = share
    return out


@dataclass(frozen=True)
class ConsistencyResult:
    """Outcome of the Section 7.2 consistency test."""

    num_paths: int
    num_consistent: int
    epsilon: float

    @property
    def consistency_rate(self) -> float:
        if self.num_paths == 0:
            return 1.0
        return self.num_consistent / self.num_paths


def validate_against_paths(
    result: LIAResult,
    inference_routing: RoutingMatrix,
    validation_paths: Sequence[Path],
    validation_transmission: np.ndarray,
    epsilon: float = DEFAULT_EPSILON,
) -> ConsistencyResult:
    """Run the consistency test on withheld paths.

    Parameters
    ----------
    result:
        LIA output on the inference half.
    inference_routing:
        The routing matrix of the inference half (defines ``E_inf``).
    validation_paths, validation_transmission:
        The withheld paths and their measured transmission rates, aligned.
    """
    measured = np.asarray(validation_transmission, dtype=np.float64)
    if measured.shape != (len(validation_paths),):
        raise ValueError("one measured rate per validation path required")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")

    link_log = physical_log_rates(result.transmission_rates, inference_routing)
    consistent = 0
    for path, phi in zip(validation_paths, measured):
        predicted_log = sum(
            link_log.get(link_index, 0.0) for link_index in path.link_indices()
        )
        if abs(phi - float(np.exp(predicted_log))) <= epsilon:
            consistent += 1
    return ConsistencyResult(
        num_paths=len(validation_paths),
        num_consistent=consistent,
        epsilon=epsilon,
    )
