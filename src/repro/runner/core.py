"""The parallel experiment runner.

:class:`ParallelRunner` maps a trial function over a list of
:class:`~repro.runner.spec.TrialSpec`, sharding the list across an
:class:`~repro.runner.backends.ExecutionBackend` and memoizing completed
shards on disk.  Guarantees:

* **Determinism** — every trial's randomness comes from the derived seed
  baked into its spec, and sharding is independent of both the worker
  count and the backend, so ``n_jobs=1`` and ``n_jobs=8``, ``serial``,
  ``process`` and ``thread`` all produce identical payload sequences.
* **Streamed, index-ordered results** — shard payloads are appended to a
  :class:`~repro.runner.store.ResultStore` as workers finish (recorded in
  :attr:`RunnerStats.arrival_order`); :meth:`ParallelRunner.run` returns
  a lazy :class:`~repro.runner.store.ResultView` keyed by each spec's
  ``index``, so callers always see trial order.  With ``store_dir`` the
  store spills to a JSONL file and peak RSS stays flat in trial count.
* **Memoization** — with a ``cache_dir``, completed shards are stored as
  JSON keyed by (experiment, trial identities, code version); re-runs
  and overlapping sweeps skip finished work.  Payloads are forced
  through a JSON round-trip even on a miss, so cached and fresh runs
  return byte-identical structures.  Shards containing ``seed=None``
  trials (fresh random draws by contract) or ``cacheable=False`` trials
  (wall-clock measurements) are executed every time and never stored.
* **Fail-loud workers** — an exception in any trial aborts the run with
  a :class:`ShardExecutionError` naming the backend and the surviving
  cache state, so a crashed distributed run is resumable by re-invoking
  the same command.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import multiprocessing

from repro.runner.backends import (
    ExecutionBackend,
    TrialFunction,
    get_backend,
)
from repro.runner.cache import ShardCache, compute_code_version
from repro.runner.spec import TrialSpec, shard_key, shard_specs
from repro.runner.store import (
    JsonlResultStore,
    MemoryResultStore,
    ResultStore,
    ResultView,
)


class ShardExecutionError(RuntimeError):
    """A trial raised (or its worker died) while executing a shard.

    Carries enough context to make a crashed campaign resumable: the
    backend that ran the shard, the shard cache directory (if any) and
    how many shards had already been persisted when the run aborted.
    With a cache, re-invoking the *same command* skips every completed
    shard and resumes at the failure.
    """

    def __init__(
        self,
        experiment: str,
        shard_index: int,
        specs: Sequence[TrialSpec],
        worker_traceback: str,
        backend: Optional[str] = None,
        cache_dir: Optional[str] = None,
        shards_completed: int = 0,
        shards_total: int = 0,
    ) -> None:
        self.experiment = experiment
        self.shard_index = shard_index
        self.specs = list(specs)
        self.worker_traceback = worker_traceback
        self.backend = backend
        self.cache_dir = cache_dir
        self.shards_completed = shards_completed
        self.shards_total = shards_total
        indices = [spec.index for spec in self.specs]
        backend_note = f" on backend {backend!r}" if backend else ""
        if cache_dir is not None:
            resume = (
                f"cache state: {shards_completed}/{shards_total} shards "
                f"persisted under {cache_dir} — re-invoke the same command "
                "to resume from there."
            )
        else:
            resume = (
                "no shard cache configured: completed shards will re-execute "
                "on retry (pass --cache-dir to make crashes resumable)."
            )
        super().__init__(
            f"shard {shard_index} of experiment {experiment!r} "
            f"(trials {indices}) failed{backend_note}:\n{worker_traceback}\n"
            f"{resume}"
        )


@dataclass
class RunnerStats:
    """What one :meth:`ParallelRunner.run` call actually did."""

    trials_total: int = 0
    shards_total: int = 0
    shards_executed: int = 0
    shards_cached: int = 0
    #: Executed shards actually written to the cache (excludes
    #: ``seed=None``/``cacheable=False`` shards, which never persist).
    shards_stored: int = 0
    trials_executed: int = 0
    trials_cached: int = 0
    #: Shard indices in the order their results arrived (cache hits first,
    #: then executed shards as workers finished them).
    arrival_order: List[int] = field(default_factory=list)


def default_n_jobs() -> int:
    """Worker count for ``n_jobs=-1``: every core, floor 1."""
    return max(1, os.cpu_count() or 1)


class ParallelRunner:
    """Shard a trial list across an execution backend, with memoization.

    Parameters
    ----------
    n_jobs:
        Worker count; ``1`` (default) executes sequentially in this
        process, ``-1`` uses every core.
    cache_dir:
        Directory for the shard cache; ``None`` disables memoization.
    shard_size:
        Trials per shard (default 1: maximal cache granularity).  Part
        of the cache identity — changing it re-keys the cache.
    code_version:
        Override the code-version component of cache keys (defaults to
        a content hash of the ``repro`` sources).
    mp_context:
        ``multiprocessing`` start-method name; defaults to ``fork``
        where available (cheap on Linux) and ``spawn`` elsewhere.
        Trial functions must be module-level (picklable) for the
        ``process`` backend.
    backend:
        Execution backend: a registered name (``"serial"``,
        ``"process"``, ``"thread"``, ``"remote"``, or anything added
        through :func:`~repro.runner.backends.register_backend`) or an
        :class:`~repro.runner.backends.ExecutionBackend` instance.
        ``None`` (default) selects ``serial`` for ``n_jobs=1`` and
        ``process`` otherwise — exactly the historical behaviour.
    backend_options:
        Extra keyword arguments for the backend factory when *backend*
        is a name — e.g. ``{"bind": "0.0.0.0:7787", "workers": 2}`` for
        ``"remote"``.  Backends that take no options reject them.
    store_dir:
        When set, shard payloads stream to a JSONL file under this
        directory as workers finish instead of accumulating in RAM;
        :meth:`run` still returns an index-ordered view.  ``None``
        (default) keeps payloads in memory.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        cache_dir: Optional[os.PathLike] = None,
        shard_size: int = 1,
        code_version: Optional[str] = None,
        mp_context: Optional[str] = None,
        backend: Union[str, ExecutionBackend, None] = None,
        store_dir: Optional[os.PathLike] = None,
        backend_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        if n_jobs == 0 or n_jobs < -1:
            raise ValueError(
                f"n_jobs must be a positive count or -1 (all cores), got {n_jobs}"
            )
        self.n_jobs = default_n_jobs() if n_jobs == -1 else n_jobs
        self.cache = ShardCache(cache_dir) if cache_dir is not None else None
        self.cache_dir = cache_dir
        self.shard_size = shard_size
        self._code_version = code_version
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.mp_context = mp_context
        if backend is None:
            backend = "serial" if self.n_jobs == 1 else "process"
        if isinstance(backend, str):
            backend = get_backend(
                backend,
                n_jobs=self.n_jobs,
                mp_context=self.mp_context,
                **(backend_options or {}),
            )
        elif backend_options:
            raise ValueError(
                "backend_options only apply when backend is a registry "
                "name; configure the instance directly instead"
            )
        self.backend: ExecutionBackend = backend
        self.store_dir = store_dir
        self.last_stats = RunnerStats()

    @property
    def code_version(self) -> str:
        if self._code_version is None:
            self._code_version = compute_code_version()
        return self._code_version

    # -- execution -----------------------------------------------------------

    def _make_store(self, experiment: str, capacity: int) -> ResultStore:
        if self.store_dir is None:
            return MemoryResultStore(capacity)
        return JsonlResultStore.create(self.store_dir, experiment, capacity)

    def run(
        self,
        experiment: str,
        trial_fn: TrialFunction,
        specs: Sequence[TrialSpec],
    ) -> ResultView:
        """Execute (or recall) every trial; view in spec-index order."""
        specs = list(specs)
        indices = sorted(spec.index for spec in specs)
        if indices != list(range(len(specs))):
            raise ValueError(
                "trial indices must be exactly 0..n-1; got "
                f"{indices[:5]}{'...' if len(indices) > 5 else ''}"
            )
        stats = RunnerStats(trials_total=len(specs))
        self.last_stats = stats
        store = self._make_store(experiment, len(specs))
        if not specs:
            store.finalize()
            return ResultView(store)

        shards = shard_specs(specs, self.shard_size)
        stats.shards_total = len(shards)
        if self.cache is not None:
            keys = [
                shard_key(experiment, shard, self.code_version)
                for shard in shards
            ]
            # A seed=None trial is a fresh random draw by contract;
            # replaying a memoized draw would silently correlate
            # "independent" re-runs.  A cacheable=False trial measures
            # wall-clock state; replaying it would report stale numbers.
            # Neither kind of shard is ever stored.
            cacheable = [
                all(
                    spec.seed is not None and spec.cacheable for spec in shard
                )
                for shard in shards
            ]
        else:  # keys are only cache identities; skip source hashing entirely
            keys = [None] * len(shards)
            cacheable = [False] * len(shards)

        pending: List[int] = []
        for shard_index, (shard, key) in enumerate(zip(shards, keys)):
            cached = (
                self.cache.load(experiment, key, shard)
                if cacheable[shard_index]
                else None
            )
            if cached is not None:
                self._merge(store, shard, cached)
                stats.shards_cached += 1
                stats.trials_cached += len(shard)
                stats.arrival_order.append(shard_index)
            else:
                pending.append(shard_index)

        try:
            if pending:
                jobs = [(i, shards[i]) for i in pending]
                for shard_index, outcome in self.backend.run_shards(
                    trial_fn, jobs
                ):
                    if outcome[0] == "error":
                        cause = outcome[2] if len(outcome) > 2 else None
                        raise ShardExecutionError(
                            experiment,
                            shard_index,
                            shards[shard_index],
                            outcome[1],
                            backend=self.backend.name,
                            cache_dir=(
                                os.fspath(self.cache_dir)
                                if self.cache_dir is not None
                                else None
                            ),
                            # Only shards that actually persist count as
                            # resumable: cache hits were already on disk,
                            # stored shards just got there.  Executed but
                            # non-cacheable shards re-run on retry.
                            shards_completed=stats.shards_cached
                            + stats.shards_stored,
                            shards_total=stats.shards_total,
                        ) from cause
                    self._finish_shard(
                        experiment, shards, keys, cacheable, shard_index,
                        outcome[1], store, stats,
                    )
        finally:
            store.finalize()
        return ResultView(store)

    def _finish_shard(
        self,
        experiment: str,
        shards: List[List[TrialSpec]],
        keys: List[Optional[str]],
        cacheable: List[bool],
        shard_index: int,
        payloads: List[Any],
        store: ResultStore,
        stats: RunnerStats,
    ) -> None:
        self._merge(store, shards[shard_index], payloads)
        stats.shards_executed += 1
        stats.trials_executed += len(shards[shard_index])
        stats.arrival_order.append(shard_index)
        if cacheable[shard_index]:
            self.cache.store(
                experiment,
                keys[shard_index],
                shards[shard_index],
                payloads,
                self.code_version,
            )
            stats.shards_stored += 1

    @staticmethod
    def _merge(
        store: ResultStore, shard: Sequence[TrialSpec], payloads: Sequence[Any]
    ) -> None:
        if len(payloads) != len(shard):
            raise ValueError(
                f"shard returned {len(payloads)} payloads for {len(shard)} trials"
            )
        for spec, payload in zip(shard, payloads):
            store.put(spec.index, payload)
