"""The parallel experiment runner.

:class:`ParallelRunner` maps a trial function over a list of
:class:`~repro.runner.spec.TrialSpec`, sharding the list across
``multiprocessing`` workers and memoizing completed shards on disk.
Guarantees:

* **Determinism** — every trial's randomness comes from the derived seed
  baked into its spec, and sharding is independent of the worker count,
  so ``n_jobs=1`` and ``n_jobs=8`` produce identical payload lists.
  ``n_jobs=1`` runs everything in-process (no pool, no pickling): it *is*
  the sequential runner, not an emulation of one.
* **Arrival-order merge** — shard payloads are merged as workers finish
  (recorded in :attr:`RunnerStats.arrival_order`), but the returned list
  is keyed by each spec's ``index``, so callers always see trial order.
* **Memoization** — with a ``cache_dir``, completed shards are stored as
  JSON keyed by (experiment, trial identities, code version); re-runs
  and overlapping sweeps skip finished work.  Payloads are forced
  through a JSON round-trip even on a miss, so cached and fresh runs
  return byte-identical structures.  Shards containing ``seed=None``
  trials (fresh random draws by contract) are executed every time and
  never stored — memoizing them would replay old randomness.
* **Fail-loud workers** — an exception in any trial aborts the run with
  a :class:`ShardExecutionError` carrying the worker's traceback.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import multiprocessing

from repro.runner.cache import ShardCache, compute_code_version
from repro.runner.spec import TrialSpec, json_roundtrip, shard_key, shard_specs

TrialFunction = Callable[[TrialSpec], Any]


class ShardExecutionError(RuntimeError):
    """A trial raised (or its worker died) while executing a shard."""

    def __init__(
        self,
        experiment: str,
        shard_index: int,
        specs: Sequence[TrialSpec],
        worker_traceback: str,
    ) -> None:
        self.experiment = experiment
        self.shard_index = shard_index
        self.specs = list(specs)
        self.worker_traceback = worker_traceback
        indices = [spec.index for spec in self.specs]
        super().__init__(
            f"shard {shard_index} of experiment {experiment!r} "
            f"(trials {indices}) failed:\n{worker_traceback}"
        )


@dataclass
class RunnerStats:
    """What one :meth:`ParallelRunner.run` call actually did."""

    trials_total: int = 0
    shards_total: int = 0
    shards_executed: int = 0
    shards_cached: int = 0
    trials_executed: int = 0
    trials_cached: int = 0
    #: Shard indices in the order their results arrived (cache hits first,
    #: then executed shards as workers finished them).
    arrival_order: List[int] = field(default_factory=list)


def _execute_shard(trial_fn: TrialFunction, shard: List[TrialSpec]) -> List[Any]:
    """Run every trial of a shard; payloads are JSON-normalised."""
    return [json_roundtrip(trial_fn(spec)) for spec in shard]


def _shard_worker(args: "tuple[TrialFunction, List[TrialSpec]]"):
    """Pool entry point: capture the traceback instead of pickling errors."""
    trial_fn, shard = args
    try:
        return ("ok", _execute_shard(trial_fn, shard))
    except BaseException:
        return ("error", traceback.format_exc())


def default_n_jobs() -> int:
    """Worker count for ``n_jobs=-1``: every core, floor 1."""
    return max(1, os.cpu_count() or 1)


class ParallelRunner:
    """Shard a trial list across processes, with optional shard memoization.

    Parameters
    ----------
    n_jobs:
        Worker processes; ``1`` (default) executes sequentially in this
        process, ``-1`` uses every core.
    cache_dir:
        Directory for the shard cache; ``None`` disables memoization.
    shard_size:
        Trials per shard (default 1: maximal cache granularity).  Part
        of the cache identity — changing it re-keys the cache.
    code_version:
        Override the code-version component of cache keys (defaults to
        a content hash of the ``repro`` sources).
    mp_context:
        ``multiprocessing`` start-method name; defaults to ``fork``
        where available (cheap on Linux) and ``spawn`` elsewhere.
        Trial functions must be module-level (picklable) for any
        ``n_jobs != 1``.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        cache_dir: Optional[os.PathLike] = None,
        shard_size: int = 1,
        code_version: Optional[str] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if n_jobs == 0 or n_jobs < -1:
            raise ValueError(
                f"n_jobs must be a positive count or -1 (all cores), got {n_jobs}"
            )
        self.n_jobs = default_n_jobs() if n_jobs == -1 else n_jobs
        self.cache = ShardCache(cache_dir) if cache_dir is not None else None
        self.shard_size = shard_size
        self._code_version = code_version
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.mp_context = mp_context
        self.last_stats = RunnerStats()

    @property
    def code_version(self) -> str:
        if self._code_version is None:
            self._code_version = compute_code_version()
        return self._code_version

    # -- execution -----------------------------------------------------------

    def run(
        self,
        experiment: str,
        trial_fn: TrialFunction,
        specs: Sequence[TrialSpec],
    ) -> List[Any]:
        """Execute (or recall) every trial; payloads in spec-index order."""
        specs = list(specs)
        indices = sorted(spec.index for spec in specs)
        if indices != list(range(len(specs))):
            raise ValueError(
                "trial indices must be exactly 0..n-1; got "
                f"{indices[:5]}{'...' if len(indices) > 5 else ''}"
            )
        stats = RunnerStats(trials_total=len(specs))
        self.last_stats = stats
        if not specs:
            return []

        shards = shard_specs(specs, self.shard_size)
        stats.shards_total = len(shards)
        if self.cache is not None:
            keys = [
                shard_key(experiment, shard, self.code_version)
                for shard in shards
            ]
            # A seed=None trial is a fresh random draw by contract;
            # replaying a memoized draw would silently correlate
            # "independent" re-runs, so such shards are never cached.
            cacheable = [
                all(spec.seed is not None for spec in shard) for shard in shards
            ]
        else:  # keys are only cache identities; skip source hashing entirely
            keys = [None] * len(shards)
            cacheable = [False] * len(shards)

        results: List[Any] = [None] * len(specs)
        pending: List[int] = []
        for shard_index, (shard, key) in enumerate(zip(shards, keys)):
            cached = (
                self.cache.load(experiment, key, shard)
                if cacheable[shard_index]
                else None
            )
            if cached is not None:
                self._merge(results, shard, cached)
                stats.shards_cached += 1
                stats.trials_cached += len(shard)
                stats.arrival_order.append(shard_index)
            else:
                pending.append(shard_index)

        if pending:
            run_pending = (
                self._run_sequential if self.n_jobs == 1 else self._run_parallel
            )
            run_pending(
                experiment, trial_fn, shards, keys, cacheable, pending,
                results, stats,
            )
        return results

    def _finish_shard(
        self,
        experiment: str,
        shards: List[List[TrialSpec]],
        keys: List[Optional[str]],
        cacheable: List[bool],
        shard_index: int,
        payloads: List[Any],
        results: List[Any],
        stats: RunnerStats,
    ) -> None:
        self._merge(results, shards[shard_index], payloads)
        stats.shards_executed += 1
        stats.trials_executed += len(shards[shard_index])
        stats.arrival_order.append(shard_index)
        if cacheable[shard_index]:
            self.cache.store(
                experiment,
                keys[shard_index],
                shards[shard_index],
                payloads,
                self.code_version,
            )

    def _run_sequential(
        self, experiment, trial_fn, shards, keys, cacheable, pending,
        results, stats,
    ) -> None:
        for shard_index in pending:
            try:
                payloads = _execute_shard(trial_fn, shards[shard_index])
            except Exception as error:
                raise ShardExecutionError(
                    experiment, shard_index, shards[shard_index],
                    traceback.format_exc(),
                ) from error
            self._finish_shard(
                experiment, shards, keys, cacheable, shard_index, payloads,
                results, stats,
            )

    def _run_parallel(
        self, experiment, trial_fn, shards, keys, cacheable, pending,
        results, stats,
    ) -> None:
        context = multiprocessing.get_context(self.mp_context)
        workers = min(self.n_jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures: Dict[Any, int] = {
                pool.submit(_shard_worker, (trial_fn, shards[shard_index])):
                    shard_index
                for shard_index in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                # Merge in arrival order within each completion batch.
                for future in sorted(done, key=lambda f: futures[f]):
                    shard_index = futures[future]
                    shard = shards[shard_index]
                    error = future.exception()
                    if error is not None:  # pool breakage, not a trial error
                        raise ShardExecutionError(
                            experiment, shard_index, shard,
                            f"{type(error).__name__}: {error}",
                        ) from error
                    outcome = future.result()
                    if outcome[0] == "error":
                        raise ShardExecutionError(
                            experiment, shard_index, shard, outcome[1]
                        )
                    self._finish_shard(
                        experiment, shards, keys, cacheable, shard_index,
                        outcome[1], results, stats,
                    )

    @staticmethod
    def _merge(
        results: List[Any], shard: Sequence[TrialSpec], payloads: Sequence[Any]
    ) -> None:
        if len(payloads) != len(shard):
            raise ValueError(
                f"shard returned {len(payloads)} payloads for {len(shard)} trials"
            )
        for spec, payload in zip(shard, payloads):
            results[spec.index] = payload
