"""Pluggable execution backends for the sharded runner.

:class:`ParallelRunner` decides *what* to run (sharding, cache lookups,
result merging); an :class:`ExecutionBackend` decides *where and how*
shards execute.  The seam is one generator method::

    run_shards(trial_fn, shards) -> iterator of (shard_index, outcome)

where ``shards`` is a sequence of ``(shard_index, [TrialSpec, ...])``
jobs and each ``outcome`` is either ``("ok", payloads)`` — the shard's
JSON-normalised payload list, one entry per spec, in spec order — or
``("error", traceback_text)`` when any trial raised.  Outcomes may be
yielded in *any* order (the runner merges by ``spec.index``), and must
be yielded **as shards finish** so the runner can stream payloads to its
result store and memoize completed shards before later ones run.

Four backends ship in-tree, selected through a string-keyed registry
mirroring ``repro.api.registry``:

``serial``
    In-process, in-order execution — the ``n_jobs=1`` path.  No pool,
    no pickling: it *is* the sequential runner.
``process``
    A ``ProcessPoolExecutor`` over ``n_jobs`` workers.  Trial functions
    must be module-level (picklable).
``thread``
    A ``ThreadPoolExecutor`` over ``n_jobs`` workers.  Worth choosing
    when trials spend their time in NumPy/SciPy/BLAS kernels that
    release the GIL: threads share the process (no pickling, shared
    read-only caches) at near-process parallelism.
``remote``
    A TCP work-stealing coordinator (:mod:`repro.runner.remote`):
    ``repro worker <host:port>`` processes — on this machine or any
    other — pull shards over length-prefixed JSON frames and stream
    results back.  Killed workers' in-flight shards are re-queued, and
    a code-version handshake refuses workers running different sources.

Writing a remote backend (SSH, cluster scheduler, job queue) means
implementing exactly one class: accept ``(n_jobs, mp_context)`` keyword
arguments in the factory, ship each shard's ``TrialSpec`` list to a
worker (specs are JSON-canonical by construction — see
``TrialSpec.identity``), run ``execute_shard`` remotely, and yield
``(shard_index, ("ok", payloads))`` as results come back.  Register it
with :func:`register_backend` and every experiment, scenario and CLI
verb (``--backend``) can reach it; the shard cache and the streaming
result store keep working unchanged because they live runner-side.
"""

from __future__ import annotations

import threading
import traceback
from abc import ABC, abstractmethod
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import multiprocessing

from repro.runner.spec import TrialSpec, json_roundtrip

TrialFunction = Callable[[TrialSpec], Any]
#: ``("ok", payloads)`` or ``("error", traceback_text)``.  In-process
#: backends may append the live exception — ``("error", text, exc)`` —
#: so the runner can chain it as the ``ShardExecutionError.__cause__``;
#: backends whose errors cross a process/network boundary ship text only.
ShardOutcome = Tuple[str, Any]
#: One unit of backend work: ``(shard_index, specs)``.
ShardJob = Tuple[int, List[TrialSpec]]


def execute_shard(trial_fn: TrialFunction, shard: Sequence[TrialSpec]) -> List[Any]:
    """Run every trial of a shard; payloads are JSON-normalised."""
    return [json_roundtrip(trial_fn(spec)) for spec in shard]


def shard_worker(args: "Tuple[TrialFunction, List[TrialSpec]]") -> ShardOutcome:
    """Worker entry point: capture the traceback instead of pickling errors."""
    trial_fn, shard = args
    try:
        return ("ok", execute_shard(trial_fn, shard))
    except BaseException:
        return ("error", traceback.format_exc())


def shard_worker_inprocess(
    args: "Tuple[TrialFunction, List[TrialSpec]]",
) -> ShardOutcome:
    """Thread-pool entry point: the exception never leaves the process,
    so the live object rides along with its traceback text and the
    runner can chain it as ``ShardExecutionError.__cause__`` — the same
    contract the serial backend honours.  (The process-pool worker above
    cannot: arbitrary exceptions are not guaranteed picklable.)"""
    trial_fn, shard = args
    try:
        return ("ok", execute_shard(trial_fn, shard))
    except BaseException as error:
        return ("error", traceback.format_exc(), error)


class ExecutionBackend(ABC):
    """Where shards run.  Subclass + :func:`register_backend` to extend."""

    #: Registry key and the name failure reports blame.
    name: str = "?"

    @abstractmethod
    def run_shards(
        self, trial_fn: TrialFunction, shards: Sequence[ShardJob]
    ) -> Iterator[Tuple[int, ShardOutcome]]:
        """Yield ``(shard_index, outcome)`` as shards finish."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


class SerialBackend(ExecutionBackend):
    """In-process, in-order execution (the historical ``n_jobs=1`` path)."""

    name = "serial"

    def __init__(self, n_jobs: int = 1, mp_context: Optional[str] = None) -> None:
        # Accepted for factory uniformity; serial execution ignores both.
        del n_jobs, mp_context

    def run_shards(self, trial_fn, shards):
        for shard_index, shard in shards:
            # Unlike pool workers (which must capture everything — the
            # exception cannot cross the process boundary), in-process
            # execution lets KeyboardInterrupt/SystemExit propagate: a
            # Ctrl-C is the user talking to the runner, not a trial crash.
            try:
                yield shard_index, ("ok", execute_shard(trial_fn, shard))
            except Exception as error:
                # In-process, the live exception survives: attach it so
                # the runner's ShardExecutionError chains it as __cause__
                # (parity with the pre-seam sequential path).
                yield shard_index, ("error", traceback.format_exc(), error)


class _PoolBackend(ExecutionBackend):
    """Shared submit/drain loop of the executor-pool backends."""

    #: Pool entry point; in-process pools use the exception-attaching one.
    worker = staticmethod(shard_worker)

    def __init__(self, n_jobs: int = 1, mp_context: Optional[str] = None) -> None:
        self.n_jobs = max(1, n_jobs)
        self.mp_context = mp_context

    def _make_executor(self, max_workers: int) -> Executor:
        raise NotImplementedError

    def run_shards(self, trial_fn, shards):
        if not shards:
            return
        workers = min(self.n_jobs, len(shards))
        with self._make_executor(workers) as pool:
            futures: Dict[Any, int] = {
                pool.submit(self.worker, (trial_fn, shard)): shard_index
                for shard_index, shard in shards
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                # Drain in shard order within each completion batch so
                # arrival bookkeeping is reproducible across runs.
                for future in sorted(done, key=lambda f: futures[f]):
                    # pop: a drained future (and the payload list pinned
                    # by its result) must be GC-able immediately, or the
                    # pool backends would retain every payload until the
                    # run ends and defeat the streaming store's flat RSS.
                    shard_index = futures.pop(future)
                    error = future.exception()
                    if error is not None:  # pool breakage, not a trial error
                        text = "".join(
                            traceback.format_exception(
                                type(error), error, error.__traceback__
                            )
                        )
                        # The exception object lives in this process
                        # (futures surface it locally), so chain it.
                        yield shard_index, ("error", text, error)
                    else:
                        yield shard_index, future.result()


class ProcessBackend(_PoolBackend):
    """``ProcessPoolExecutor`` workers; trial functions must pickle."""

    name = "process"

    def _make_executor(self, max_workers: int) -> Executor:
        context = multiprocessing.get_context(self.mp_context)
        return ProcessPoolExecutor(max_workers=max_workers, mp_context=context)


class ThreadBackend(_PoolBackend):
    """``ThreadPoolExecutor`` workers for GIL-releasing (BLAS-bound) trials."""

    name = "thread"
    # Threads share the process: keep the live exception so the runner
    # can chain it, instead of flattening it to text like `process` must.
    worker = staticmethod(shard_worker_inprocess)

    def _make_executor(self, max_workers: int) -> Executor:
        return ThreadPoolExecutor(max_workers=max_workers)


def _remote_factory(**options: Any) -> ExecutionBackend:
    """Build the ``remote`` backend lazily (sockets stay unimported
    until someone actually asks for distributed execution)."""
    from repro.runner.remote import RemoteBackend

    return RemoteBackend(**options)


# -- registry ------------------------------------------------------------------

_BACKENDS: Dict[str, Callable[..., ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ProcessBackend.name: ProcessBackend,
    ThreadBackend.name: ThreadBackend,
    "remote": _remote_factory,
}
#: Guards registry mutation (same contract as repro.api.registry).
_BACKENDS_LOCK = threading.Lock()


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def get_backend(
    name: str,
    n_jobs: int = 1,
    mp_context: Optional[str] = None,
    **options: Any,
) -> ExecutionBackend:
    """Build the backend registered under *name*.

    Factories are called as ``factory(n_jobs=..., mp_context=...,
    **options)``; custom backends must accept (and may ignore) the two
    standard keywords.  Extra *options* are backend-specific (the
    ``remote`` backend takes ``bind``/``workers``/``spawn_workers``);
    backends that take none reject them with a ``TypeError``.
    """
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; registered: "
            f"{', '.join(available_backends())}"
        ) from None
    return factory(n_jobs=n_jobs, mp_context=mp_context, **options)


def register_backend(
    name: str,
    factory: Callable[..., ExecutionBackend],
    overwrite: bool = False,
) -> None:
    """Add (or, with *overwrite*, replace) an execution backend."""
    if not name:
        raise ValueError("backend name must be non-empty")
    with _BACKENDS_LOCK:
        if name in _BACKENDS and not overwrite:
            raise ValueError(
                f"backend {name!r} already registered (pass overwrite=True)"
            )
        _BACKENDS[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a backend (built-ins included — tests restore them)."""
    with _BACKENDS_LOCK:
        _BACKENDS.pop(name, None)
