"""Trial specifications: the schedulable unit of a Monte-Carlo campaign.

An experiment is a list of independent trials — the cartesian product of
its repetition seeds and its parameter grid.  Each trial is described by
a :class:`TrialSpec` that is (a) fully deterministic (the derived seed is
baked in, never a live RNG) and (b) JSON-canonical, so the same spec can
be hashed into a cache key, shipped to a worker process, and stored next
to its payload on disk.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


def canonical_json(value: Any) -> str:
    """Serialise *value* to a canonical (sorted, compact) JSON string."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def json_roundtrip(value: Any):
    """Force *value* through JSON so fresh and cached payloads are identical.

    Trial payloads are memoized as JSON documents; running every payload
    through a serialise/parse cycle — even on a cache miss — guarantees a
    cached re-run returns exactly what the original run returned (tuples
    become lists, int keys become strings) instead of drifting types.
    """
    return json.loads(canonical_json(value))


@dataclass(frozen=True)
class TrialSpec:
    """One independent trial of an experiment campaign.

    ``params`` must contain only JSON-serialisable values (strings,
    numbers, bools, lists, dicts): it is part of the cache identity.
    ``index`` is the trial's position in the experiment's full trial
    list; results are merged back in index order regardless of the order
    in which shards finish.  The index is deliberately *not* part of the
    cache identity — reordering or widening a sweep's grid shifts trial
    positions, and trials whose (seed, params) are unchanged must still
    hit the cache.  Two specs with equal identity describe the same pure
    computation and are interchangeable by construction.

    ``cacheable=False`` marks a trial whose payload is *not* a pure
    function of its identity — wall-clock timing measurements, probes of
    live state — so memoizing it would replay stale numbers.  Such
    trials are executed on every run and their shards never stored; the
    flag is bookkeeping, not identity, so it stays out of ``identity()``.
    """

    experiment: str
    index: int
    seed: Optional[int] = None
    params: Dict[str, Any] = field(default_factory=dict)
    cacheable: bool = True

    def identity(self) -> Dict[str, Any]:
        """The JSON document that defines this trial's cache identity."""
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "params": json_roundtrip(self.params),
        }

    def key(self) -> str:
        """Stable content hash of the trial identity."""
        digest = hashlib.sha256(canonical_json(self.identity()).encode())
        return digest.hexdigest()

    def to_wire(self) -> Dict[str, Any]:
        """The full JSON form of this spec (identity *plus* bookkeeping).

        Unlike :meth:`identity` this includes ``index`` and ``cacheable``
        so a remote worker can reconstruct the exact spec the coordinator
        holds — trial functions may legitimately read either field.
        """
        return {
            "experiment": self.experiment,
            "index": self.index,
            "seed": self.seed,
            "params": json_roundtrip(self.params),
            "cacheable": self.cacheable,
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "TrialSpec":
        """Rebuild a spec from :meth:`to_wire` output."""
        return cls(
            experiment=str(payload["experiment"]),
            index=int(payload["index"]),
            seed=payload.get("seed"),
            params=dict(payload.get("params", {})),
            cacheable=bool(payload.get("cacheable", True)),
        )


def shard_specs(specs: Sequence[TrialSpec], shard_size: int) -> List[List[TrialSpec]]:
    """Split *specs* into contiguous shards of at most *shard_size* trials.

    Sharding is a pure function of the trial list — never of the worker
    count — so the same campaign always produces the same shards and the
    cache stays valid when ``n_jobs`` changes between runs.
    """
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    return [
        list(specs[start : start + shard_size])
        for start in range(0, len(specs), shard_size)
    ]


def shard_key(experiment: str, shard: Sequence[TrialSpec], code_version: str) -> str:
    """Cache key of one shard: experiment + trial identities + code version."""
    document = {
        "experiment": experiment,
        "code_version": code_version,
        "trials": [spec.identity() for spec in shard],
    }
    return hashlib.sha256(canonical_json(document).encode()).hexdigest()
