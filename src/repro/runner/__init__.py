"""Parallel sharded execution of Monte-Carlo experiment campaigns.

The paper's evaluation is a pile of independent (topology seed x
loss-model x parameter) trials; this package schedules them.  See
:class:`ParallelRunner` for the execution/caching contract,
:class:`~repro.runner.spec.TrialSpec` for the unit of work,
:mod:`repro.runner.backends` for the pluggable execution seam
(serial/process/thread/remote + registry), :mod:`repro.runner.remote`
for the TCP work-stealing scheduler behind the ``remote`` backend
(imported lazily — building it is the only thing that touches sockets)
and :mod:`repro.runner.store` for the streaming result store that
keeps larger-than-memory campaigns on disk.
"""

from repro.runner.backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.runner.cache import ShardCache, compute_code_version
from repro.runner.core import (
    ParallelRunner,
    RunnerStats,
    ShardExecutionError,
    default_n_jobs,
)
from repro.runner.spec import TrialSpec, shard_key, shard_specs
from repro.runner.store import (
    JsonlResultStore,
    MemoryResultStore,
    ResultStore,
    ResultView,
)

__all__ = [
    "ExecutionBackend",
    "JsonlResultStore",
    "MemoryResultStore",
    "ParallelRunner",
    "ProcessBackend",
    "ResultStore",
    "ResultView",
    "RunnerStats",
    "SerialBackend",
    "ShardCache",
    "ShardExecutionError",
    "ThreadBackend",
    "TrialSpec",
    "available_backends",
    "compute_code_version",
    "default_n_jobs",
    "get_backend",
    "register_backend",
    "shard_key",
    "shard_specs",
    "unregister_backend",
]
