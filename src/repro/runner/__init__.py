"""Parallel sharded execution of Monte-Carlo experiment campaigns.

The paper's evaluation is a pile of independent (topology seed x
loss-model x parameter) trials; this package schedules them.  See
:class:`ParallelRunner` for the execution/caching contract and
:class:`~repro.runner.spec.TrialSpec` for the unit of work.
"""

from repro.runner.cache import ShardCache, compute_code_version
from repro.runner.core import (
    ParallelRunner,
    RunnerStats,
    ShardExecutionError,
    default_n_jobs,
)
from repro.runner.spec import TrialSpec, shard_key, shard_specs

__all__ = [
    "ParallelRunner",
    "RunnerStats",
    "ShardCache",
    "ShardExecutionError",
    "TrialSpec",
    "compute_code_version",
    "default_n_jobs",
    "shard_key",
    "shard_specs",
]
