"""The ``remote`` execution backend: a TCP work-stealing scheduler.

The runner's other backends fan shards across pools inside one machine;
this module crosses the machine boundary with nothing heavier than a
TCP socket and JSON.  Two roles:

:class:`RemoteCoordinator`
    Binds a socket and hands out shards.  Workers *pull*: after the
    handshake each worker announces ``ready`` and receives one shard at
    a time, so a fast machine naturally steals more work than a slow
    one.  A worker that disconnects, times out, or sends a corrupt
    frame is dropped and its in-flight shard goes back on the queue —
    a killed worker loses time, never results.
``repro worker <host:port>``
    The worker loop (:func:`run_worker`): connect (retrying until the
    coordinator is up), handshake, then pull shards, run the trial
    function, and stream results back, pinging while a shard executes
    so slow trials are distinguishable from dead workers.

Wire format — length-prefixed JSON frames: a 4-byte big-endian length
followed by that many bytes of UTF-8 JSON (one object per frame).
Frames above :data:`MAX_FRAME_BYTES` and frames that do not parse are
protocol violations (:class:`FrameError`), treated like a disconnect.

Handshake — the worker opens with ``hello`` carrying its protocol tag
and the :func:`~repro.runner.cache.compute_code_version` hash of its
``repro`` sources; the coordinator rejects any worker whose hash
differs from its own.  Trial functions are shipped *by reference*
(``module:qualname``, mirroring what pickling does for the ``process``
backend), so identical sources on both ends are a correctness
requirement, not a nicety.

Everything stateful — shard cache, result store, payload merging —
stays coordinator-side in :class:`~repro.runner.core.ParallelRunner`,
so crashed remote campaigns resume from the shard cache exactly as
``process`` campaigns do, and payloads are seed-for-seed identical
across ``serial``/``process``/``thread``/``remote``.
"""

from __future__ import annotations

import importlib
import json
import os
import selectors
import socket
import struct
import subprocess
import sys
import threading
import time
import traceback
from collections import deque
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.runner.backends import (
    ExecutionBackend,
    ShardJob,
    ShardOutcome,
    TrialFunction,
    execute_shard,
)
from repro.runner.cache import compute_code_version
from repro.runner.spec import TrialSpec, canonical_json

PROTOCOL = "repro-remote/1"
#: Default coordinator port for multi-machine runs (workers on other
#: hosts need a knowable address; single-machine runs bind ephemeral).
DEFAULT_PORT = 7787
#: Hard ceiling on one frame.  Shard payloads beyond this indicate a
#: runaway trial function (or a corrupt length prefix), not real work.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class FrameError(ConnectionError):
    """A frame violated the protocol: oversized, truncated, or not JSON."""


class WorkerRejected(RuntimeError):
    """The coordinator refused this worker's handshake."""


# -- framing -------------------------------------------------------------------


def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one length-prefixed JSON frame."""
    body = canonical_json(message).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"refusing to send a {len(body)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise FrameError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean close at a frame boundary."""
    header = b""
    while len(header) < _LENGTH.size:
        chunk = sock.recv(_LENGTH.size - len(header))
        if not chunk:
            if header:
                raise FrameError("connection closed mid-length-prefix")
            return None
        header += chunk
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"oversized frame announced ({length} bytes, "
            f"limit {MAX_FRAME_BYTES})"
        )
    body = _recv_exactly(sock, length)
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise FrameError(f"frame is not valid JSON: {error}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise FrameError("frame is not a typed message object")
    return message


def trial_fn_reference(trial_fn: TrialFunction) -> str:
    """``module:qualname`` reference a worker can import (pickle's rule)."""
    module = getattr(trial_fn, "__module__", None)
    qualname = getattr(trial_fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname or "." in qualname:
        raise ValueError(
            f"trial function {trial_fn!r} is not a module-level function; "
            "the remote backend ships functions by module:name reference"
        )
    return f"{module}:{qualname}"


def resolve_trial_fn(reference: str) -> TrialFunction:
    """Import the trial function a coordinator named."""
    module_name, _, qualname = reference.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, qualname)


def parse_address(address: str) -> Tuple[str, int]:
    """``host:port`` (or bare ``host``, implying :data:`DEFAULT_PORT`)."""
    host, _, port_text = address.rpartition(":")
    if not host:
        host, port_text = port_text, ""
    port = int(port_text) if port_text else DEFAULT_PORT
    if not 0 <= port <= 65535:
        raise ValueError(f"port {port} out of range in address {address!r}")
    return host, port


# -- coordinator ---------------------------------------------------------------


class _WorkerConnection:
    """Coordinator-side state of one connected worker."""

    __slots__ = ("sock", "peer", "name", "ready", "shard_index", "last_seen")

    def __init__(self, sock: socket.socket, peer: str) -> None:
        self.sock = sock
        self.peer = peer
        self.name: Optional[str] = None  # None until the handshake lands
        self.ready = False
        self.shard_index: Optional[int] = None  # in-flight shard, if any
        self.last_seen = time.monotonic()

    @property
    def label(self) -> str:
        return self.name or self.peer


class RemoteCoordinator:
    """Bind a socket, admit workers, hand out shards, collect results.

    Parameters
    ----------
    bind:
        ``host:port`` to listen on.  Port ``0`` binds an ephemeral port;
        the resolved address is :attr:`address`.
    expected_workers:
        How many workers must complete the handshake before the first
        shard is dispatched.  Late joiners are admitted mid-run (work
        stealing); early leavers only lose their in-flight shard.
    connect_timeout:
        Seconds to wait for the expected workers; fewer than expected by
        the deadline aborts the run loudly (a silently half-sized fleet
        would just look slow).
    worker_timeout:
        Seconds of silence from a worker *holding a shard* before it is
        declared dead and its shard re-queued.  Workers ping every few
        seconds while executing, so this bounds failure detection for
        hung machines; killed ones are caught immediately via EOF.
    code_version:
        Source hash workers must match (default: this process's own
        :func:`compute_code_version`).
    """

    def __init__(
        self,
        bind: str = "127.0.0.1:0",
        expected_workers: int = 1,
        connect_timeout: float = 30.0,
        worker_timeout: float = 60.0,
        code_version: Optional[str] = None,
    ) -> None:
        if expected_workers < 1:
            raise ValueError("expected_workers must be at least 1")
        self.expected_workers = expected_workers
        self.connect_timeout = connect_timeout
        self.worker_timeout = worker_timeout
        self.code_version = (
            code_version if code_version is not None else compute_code_version()
        )
        host, port = parse_address(bind)
        self._listener = socket.create_server(
            (host, port), reuse_port=False, backlog=16
        )
        self._listener.setblocking(False)
        self.address = "%s:%d" % self._listener.getsockname()[:2]
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ)
        self._workers: Dict[socket.socket, _WorkerConnection] = {}
        self._reference: Optional[str] = None
        self._jobs: Dict[int, ShardJob] = {}
        self._results: "deque[Tuple[int, ShardOutcome]]" = deque()
        self.workers_seen = 0
        self.workers_rejected = 0
        self.workers_lost = 0
        #: shard indices that were re-queued after a worker loss.
        self.requeued: List[int] = []

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut down every worker connection and the listener."""
        for connection in list(self._workers.values()):
            self._drop(connection, requeue=None)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        self._selector.close()

    def __enter__(self) -> "RemoteCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- serving -------------------------------------------------------------

    def serve(
        self, trial_fn: TrialFunction, shards: Sequence[ShardJob]
    ) -> Iterator[Tuple[int, ShardOutcome]]:
        """Yield ``(shard_index, outcome)`` as workers finish shards."""
        self._reference = trial_fn_reference(trial_fn)
        queue: "deque[ShardJob]" = deque(shards)
        self._jobs = {job[0]: job for job in shards}
        self._results.clear()
        remaining = set(self._jobs)
        self._await_fleet()
        last_progress = time.monotonic()
        try:
            while remaining:
                self._pump(queue, dispatch=True)
                progressed = bool(self._results)
                while self._results:
                    shard_index, outcome = self._results.popleft()
                    remaining.discard(shard_index)
                    yield shard_index, outcome
                now = time.monotonic()
                if progressed or self._workers:
                    last_progress = now
                elif now - last_progress > self.connect_timeout:
                    # Every worker is gone and none came back: fail loud
                    # instead of spinning forever on an empty fleet.
                    raise RuntimeError(
                        f"remote backend: all workers lost with "
                        f"{len(remaining)} shard(s) outstanding and none "
                        f"reconnected to {self.address} within "
                        f"{self.connect_timeout:.0f}s"
                    )
        finally:
            self._shutdown_workers()

    def _await_fleet(self) -> None:
        """Block until the expected workers have handshaked."""
        deadline = time.monotonic() + self.connect_timeout
        while self.workers_seen < self.expected_workers:
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"remote backend: only {self.workers_seen} of "
                    f"{self.expected_workers} workers connected to "
                    f"{self.address} within {self.connect_timeout:.0f}s "
                    f"({self.workers_rejected} rejected by the code-version "
                    "handshake); start workers with "
                    f"`repro worker {self.address}`"
                )
            self._pump(queue=None, dispatch=False)

    # -- event loop ----------------------------------------------------------

    def _pump(
        self, queue: "Optional[deque[ShardJob]]", dispatch: bool
    ) -> None:
        """One select round: accept, read frames, reap the dead, dispatch."""
        for key, _ in self._selector.select(timeout=0.1):
            if key.fileobj is self._listener:
                self._accept()
            else:
                self._read(self._workers[key.fileobj], queue)
        now = time.monotonic()
        for connection in list(self._workers.values()):
            if (
                connection.shard_index is not None
                and now - connection.last_seen > self.worker_timeout
            ):
                self._drop(connection, requeue=queue, reason="timed out")
        if dispatch and queue:
            self._dispatch(queue)

    def _accept(self) -> None:
        try:
            sock, peer = self._listener.accept()
        except OSError:
            return
        sock.setblocking(True)
        sock.settimeout(self.worker_timeout)
        connection = _WorkerConnection(sock, "%s:%d" % peer[:2])
        self._workers[sock] = connection
        self._selector.register(sock, selectors.EVENT_READ)

    def _read(
        self, connection: _WorkerConnection, queue: "Optional[deque[ShardJob]]"
    ) -> None:
        """Consume one frame from *connection*; drop it on any violation."""
        try:
            message = recv_frame(connection.sock)
        except (FrameError, OSError) as error:
            self._drop(connection, requeue=queue, reason=str(error))
            return
        if message is None:  # clean EOF
            self._drop(connection, requeue=queue, reason="disconnected")
            return
        connection.last_seen = time.monotonic()
        kind = message.get("type")
        if connection.name is None:
            if kind != "hello":
                self._drop(connection, requeue=queue, reason="no handshake")
                return
            self._handshake(connection, message, queue)
        elif kind == "ready":
            connection.ready = True
        elif kind == "ping":
            pass  # last_seen already refreshed
        elif kind == "result":
            self._store_result(connection, message, queue)
        else:
            self._drop(
                connection, requeue=queue, reason=f"unknown frame {kind!r}"
            )

    def _handshake(
        self,
        connection: _WorkerConnection,
        hello: Dict[str, Any],
        queue: "Optional[deque[ShardJob]]",
    ) -> None:
        protocol = hello.get("protocol")
        version = hello.get("code_version")
        if protocol != PROTOCOL or version != self.code_version:
            reason = (
                f"protocol mismatch: worker speaks {protocol!r}, "
                f"coordinator {PROTOCOL!r}"
                if protocol != PROTOCOL
                else (
                    f"code-version mismatch: worker runs {version!r}, "
                    f"coordinator {self.code_version!r} — deploy identical "
                    "repro sources on every machine"
                )
            )
            try:
                send_frame(connection.sock, {"type": "reject", "reason": reason})
            except OSError:
                pass
            self.workers_rejected += 1
            self._drop(connection, requeue=queue, reason=reason)
            return
        connection.name = str(hello.get("worker", connection.peer))
        self.workers_seen += 1
        # The welcome carries everything a worker needs to start pulling.
        send_frame(
            connection.sock,
            {"type": "welcome", "trial_fn": self._reference},
        )

    def _dispatch(self, queue: "deque[ShardJob]") -> None:
        for connection in self._workers.values():
            if not queue:
                return
            if connection.name is None or not connection.ready:
                continue
            if connection.shard_index is not None:
                continue
            shard_index, shard = queue.popleft()
            try:
                send_frame(
                    connection.sock,
                    {
                        "type": "shard",
                        "shard_index": shard_index,
                        "trials": [spec.to_wire() for spec in shard],
                    },
                )
            except OSError as error:
                queue.appendleft((shard_index, shard))
                self._drop(connection, requeue=queue, reason=str(error))
                continue
            connection.ready = False
            connection.shard_index = shard_index
            self._jobs[shard_index] = (shard_index, shard)

    def _store_result(
        self,
        connection: _WorkerConnection,
        message: Dict[str, Any],
        queue: "Optional[deque[ShardJob]]",
    ) -> None:
        shard_index = message.get("shard_index")
        outcome = message.get("outcome")
        if (
            shard_index != connection.shard_index
            or not isinstance(outcome, list)
            or len(outcome) != 2
            or outcome[0] not in ("ok", "error")
        ):
            self._drop(connection, requeue=queue, reason="malformed result")
            return
        connection.shard_index = None
        self._results.append((int(shard_index), (outcome[0], outcome[1])))

    def _drop(
        self,
        connection: _WorkerConnection,
        requeue: "Optional[deque[ShardJob]]",
        reason: str = "closing",
    ) -> None:
        """Disconnect a worker; its in-flight shard goes back on the queue."""
        if connection.sock not in self._workers:
            return
        del self._workers[connection.sock]
        try:
            self._selector.unregister(connection.sock)
        except (KeyError, ValueError):
            pass
        try:
            connection.sock.close()
        except OSError:
            pass
        if connection.shard_index is not None:
            self.workers_lost += 1
            if requeue is not None:
                job = self._jobs[connection.shard_index]
                requeue.append(job)
                self.requeued.append(connection.shard_index)
            connection.shard_index = None

    def _shutdown_workers(self) -> None:
        for connection in list(self._workers.values()):
            try:
                send_frame(connection.sock, {"type": "shutdown"})
            except OSError:
                pass
            self._drop(connection, requeue=None)


class RemoteBackend(ExecutionBackend):
    """The ``remote`` :class:`ExecutionBackend`: shards over TCP workers.

    Options (all reachable through ``ParallelRunner(backend="remote",
    backend_options={...})`` and the CLI flags in parentheses):

    ``bind`` (``--bind``)
        Coordinator listen address; defaults to ``127.0.0.1:0`` when
        workers are auto-spawned and ``0.0.0.0:7787`` otherwise.
    ``workers`` (``--workers``)
        Expected externally-started fleet: an int count or a
        comma-separated list of worker names (the *length* sets the
        count — the coordinator cannot dial out, workers dial in).
    ``spawn_workers`` (``--remote-workers``)
        Auto-spawn this many ``repro worker`` subprocesses on localhost,
        pointed at the coordinator.  The turnkey single-machine mode.

    With neither ``workers`` nor ``spawn_workers``, ``n_jobs`` localhost
    workers are spawned — ``--backend remote --jobs 4`` just works.
    """

    name = "remote"

    def __init__(
        self,
        n_jobs: int = 1,
        mp_context: Optional[str] = None,
        bind: Optional[str] = None,
        workers: Union[int, str, Sequence[str], None] = None,
        spawn_workers: int = 0,
        connect_timeout: float = 30.0,
        worker_timeout: float = 60.0,
        code_version: Optional[str] = None,
    ) -> None:
        del mp_context  # remote workers are their own processes
        expected = 0
        if workers is not None:
            if isinstance(workers, str) and workers.strip().isdigit():
                workers = int(workers)
            if isinstance(workers, int):
                expected = workers
            else:
                names = (
                    [w.strip() for w in workers.split(",") if w.strip()]
                    if isinstance(workers, str)
                    else list(workers)
                )
                expected = len(names)
            if expected < 1:
                raise ValueError(f"workers={workers!r} names no workers")
        self.spawn_workers = int(spawn_workers)
        if self.spawn_workers < 0:
            raise ValueError("spawn_workers must be non-negative")
        if expected == 0 and self.spawn_workers == 0:
            self.spawn_workers = max(1, n_jobs)
        self.expected_workers = expected + self.spawn_workers
        if bind is None:
            bind = (
                "127.0.0.1:0" if expected == 0 else f"0.0.0.0:{DEFAULT_PORT}"
            )
        self.bind = bind
        self.connect_timeout = connect_timeout
        self.worker_timeout = worker_timeout
        self.code_version = code_version

    def _spawn(
        self, address: str, trial_fn: TrialFunction
    ) -> List[subprocess.Popen]:
        # Localhost workers must import the same repro tree *and* the
        # trial function's module; external workers are on their own
        # (the code-version handshake catches a mismatched tree).
        paths = [str(_repro_src_root())]
        module = sys.modules.get(getattr(trial_fn, "__module__", ""))
        module_file = getattr(module, "__file__", None)
        if module_file:
            paths.append(os.path.dirname(os.path.abspath(module_file)))
        paths.append(os.environ.get("PYTHONPATH", ""))
        command = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            address,
            "--retry-seconds",
            str(max(5.0, self.connect_timeout)),
            "--max-runs",
            "1",
        ]
        env = {**os.environ, "PYTHONPATH": os.pathsep.join(p for p in paths if p)}
        return [
            subprocess.Popen(command, env=env)
            for _ in range(self.spawn_workers)
        ]

    def run_shards(self, trial_fn, shards):
        if not shards:
            return
        coordinator = RemoteCoordinator(
            bind=self.bind,
            expected_workers=self.expected_workers,
            connect_timeout=self.connect_timeout,
            worker_timeout=self.worker_timeout,
            code_version=self.code_version,
        )
        spawned: List[subprocess.Popen] = []
        try:
            with coordinator:
                spawned = self._spawn(coordinator.address, trial_fn)
                yield from coordinator.serve(trial_fn, shards)
        finally:
            for process in spawned:
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    process.terminate()
                    try:
                        process.wait(timeout=5)
                    except subprocess.TimeoutExpired:
                        process.kill()


def _repro_src_root():
    """Directory to put on a spawned worker's PYTHONPATH."""
    import repro

    from pathlib import Path

    return Path(repro.__file__).resolve().parent.parent


# -- worker --------------------------------------------------------------------


class _Heartbeat:
    """Daemon thread pinging the coordinator while a shard executes."""

    def __init__(
        self, sock: socket.socket, lock: threading.Lock, interval: float
    ) -> None:
        self._sock = sock
        self._lock = lock
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                with self._lock:
                    send_frame(self._sock, {"type": "ping"})
            except OSError:
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


def _connect_with_retry(
    address: str, retry_seconds: float
) -> Optional[socket.socket]:
    """Dial the coordinator, retrying until the window closes."""
    host, port = parse_address(address)
    deadline = time.monotonic() + retry_seconds
    while True:
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError:
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.2)


def _serve_one_run(
    sock: socket.socket,
    worker_name: str,
    code_version: str,
    heartbeat_interval: float,
    die_after: Optional[int],
) -> None:
    """Handshake and pull shards until the coordinator says shutdown."""
    sock.settimeout(None)
    send_lock = threading.Lock()
    send_frame(
        sock,
        {
            "type": "hello",
            "protocol": PROTOCOL,
            "code_version": code_version,
            "worker": worker_name,
        },
    )
    welcome = recv_frame(sock)
    if welcome is None:
        raise FrameError("coordinator closed during handshake")
    if welcome["type"] == "reject":
        raise WorkerRejected(welcome.get("reason", "rejected"))
    if welcome["type"] != "welcome":
        raise FrameError(f"expected welcome, got {welcome['type']!r}")
    trial_fn = resolve_trial_fn(welcome["trial_fn"])

    shards_received = 0
    while True:
        with send_lock:
            send_frame(sock, {"type": "ready"})
        message = recv_frame(sock)
        if message is None or message["type"] == "shutdown":
            return
        if message["type"] != "shard":
            raise FrameError(f"expected shard, got {message['type']!r}")
        shards_received += 1
        if die_after is not None and shards_received > die_after:
            # Fault injection for the re-queue path: die *holding* the
            # shard, exactly like a machine lost mid-run.  os._exit skips
            # every atexit/finally so nothing polite reaches the socket.
            os._exit(3)
        shard = [TrialSpec.from_wire(entry) for entry in message["trials"]]
        with _Heartbeat(sock, send_lock, heartbeat_interval):
            try:
                outcome: List[Any] = ["ok", execute_shard(trial_fn, shard)]
            except BaseException:
                outcome = ["error", traceback.format_exc()]
        with send_lock:
            send_frame(
                sock,
                {
                    "type": "result",
                    "shard_index": message["shard_index"],
                    "outcome": outcome,
                },
            )


def run_worker(
    address: str,
    retry_seconds: float = 30.0,
    max_runs: Optional[int] = None,
    heartbeat_interval: float = 2.0,
    die_after: Optional[int] = None,
    worker_name: Optional[str] = None,
    log: Callable[[str], None] = lambda line: print(line, flush=True),
) -> int:
    """The ``repro worker`` verb: serve campaigns from *address*.

    Connects (retrying for *retry_seconds* so workers can be launched
    before the coordinator), serves one campaign, and loops — a worker
    outlives coordinators and picks up the next campaign on the same
    address.  Exit codes: ``0`` after a clean shutdown (or an idle
    retry window with at least one campaign served), ``1`` when no
    coordinator ever appeared, ``2`` when the handshake was rejected.
    """
    name = worker_name or f"{socket.gethostname()}:{os.getpid()}"
    runs_served = 0
    while max_runs is None or runs_served < max_runs:
        sock = _connect_with_retry(address, retry_seconds)
        if sock is None:
            if runs_served:
                log(f"worker {name}: no coordinator at {address}; done")
                return 0
            log(f"worker {name}: no coordinator at {address} "
                f"within {retry_seconds:.0f}s")
            return 1
        try:
            with sock:
                log(f"worker {name}: serving {address}")
                _serve_one_run(
                    sock, name, compute_code_version(),
                    heartbeat_interval, die_after,
                )
                runs_served += 1
        except WorkerRejected as error:
            log(f"worker {name}: rejected by coordinator: {error}")
            return 2
        except (FrameError, OSError) as error:
            # Coordinator crashed or the link broke: reconnect and serve
            # whatever campaign comes next (its shard was re-queued).
            log(f"worker {name}: connection lost ({error}); reconnecting")
    log(f"worker {name}: served {runs_served} campaign(s); done")
    return 0
