"""Argparse glue for the runner knobs.

Shared by ``python -m repro.experiments`` and the ``repro experiments``
verb so both expose identical ``--jobs``/``--backend``/``--cache-dir``/
``--shard-size``/``--store-dir`` flags with parse-time validation.
:class:`RunnerArgs` is the typed form of those flags — the one record a
caller (CLI, notebook, service config) needs to hold to rebuild the
same :class:`ParallelRunner`.  Lives in ``repro.runner`` (not the
experiments package) so building a parser never has to import the
experiment modules and their scipy/netsim dependency stack.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass
from typing import Optional

from repro.runner.backends import available_backends
from repro.runner.core import ParallelRunner

#: Static mirror of the built-in ``repro.runner.backends._BACKENDS``
#: registry, kept literal so help text and docs can cite the choices
#: without importing executor machinery.  The ``registry-sync`` lint
#: rule verifies it matches the registry; runtime parsing still uses
#: :func:`available_backends` so plugins appear automatically.
BACKEND_CHOICES = ("process", "remote", "serial", "thread")


def _jobs(value: str) -> int:
    jobs = int(value)
    if jobs == 0 or jobs < -1:
        raise argparse.ArgumentTypeError(
            "must be a positive count or -1 (all cores)"
        )
    return jobs


def _shard_size(value: str) -> int:
    size = int(value)
    if size <= 0:
        raise argparse.ArgumentTypeError("must be a positive trial count")
    return size


def _dir_path(value: str) -> str:
    if os.path.exists(value) and not os.path.isdir(value):
        raise argparse.ArgumentTypeError(f"{value!r} exists and is not a directory")
    return value


def _workers_spec(value: str) -> str:
    if not value.strip():
        raise argparse.ArgumentTypeError("must name at least one worker")
    return value


def _positive(value: str) -> int:
    count = int(value)
    if count <= 0:
        raise argparse.ArgumentTypeError("must be a positive count")
    return count


@dataclass(frozen=True)
class RunnerArgs:
    """The runner configuration one command line (or service) carries.

    ``backend=None`` defers to the runner's default: ``serial`` for
    ``jobs=1``, ``process`` otherwise.  ``store_dir=None`` keeps
    payloads in RAM; a directory streams them to a JSONL spill file as
    workers finish (larger-than-memory campaigns).  ``workers``/
    ``remote_workers``/``bind`` configure the ``remote`` backend only:
    an expected externally-started fleet (count or comma-separated
    names), an auto-spawned localhost fleet, and the coordinator's
    listen address.
    """

    jobs: int = 1
    backend: Optional[str] = None
    cache_dir: Optional[str] = None
    shard_size: int = 1
    store_dir: Optional[str] = None
    workers: Optional[str] = None
    remote_workers: Optional[int] = None
    bind: Optional[str] = None

    @classmethod
    def from_namespace(cls, args: argparse.Namespace) -> "RunnerArgs":
        return cls(
            jobs=args.jobs,
            backend=args.backend,
            cache_dir=args.cache_dir,
            shard_size=args.shard_size,
            store_dir=args.store_dir,
            workers=getattr(args, "workers", None),
            remote_workers=getattr(args, "remote_workers", None),
            bind=getattr(args, "bind", None),
        )

    def backend_options(self) -> dict:
        """The remote-backend factory options these flags imply."""
        options: dict = {}
        if self.workers is not None:
            options["workers"] = self.workers
        if self.remote_workers is not None:
            options["spawn_workers"] = self.remote_workers
        if self.bind is not None:
            options["bind"] = self.bind
        if options and self.backend != "remote":
            raise ValueError(
                "--workers/--remote-workers/--bind require --backend remote"
            )
        return options

    def build(self) -> ParallelRunner:
        return ParallelRunner(
            n_jobs=self.jobs,
            backend=self.backend,
            cache_dir=self.cache_dir,
            shard_size=self.shard_size,
            store_dir=self.store_dir,
            backend_options=self.backend_options() or None,
        )


def add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the runner knobs to *parser*."""
    parser.add_argument(
        "--jobs",
        type=_jobs,
        default=1,
        help="worker count (1 = sequential, -1 = all cores)",
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help=(
            "execution backend (default: serial for --jobs 1, process "
            "otherwise; thread suits BLAS-bound trials that release the GIL)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=_dir_path,
        default=None,
        help="directory for the shard result cache (default: no caching)",
    )
    parser.add_argument(
        "--shard-size",
        type=_shard_size,
        default=1,
        help="trials per shard / cache entry (default 1)",
    )
    parser.add_argument(
        "--store-dir",
        type=_dir_path,
        default=None,
        help=(
            "stream shard payloads to a JSONL file under this directory as "
            "workers finish instead of holding them in RAM (default: in-RAM)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=_workers_spec,
        default=None,
        help=(
            "[remote backend] expected externally-started `repro worker` "
            "fleet: a count or comma-separated worker names; the run waits "
            "for that many handshakes before dispatching"
        ),
    )
    parser.add_argument(
        "--remote-workers",
        type=_positive,
        default=None,
        help=(
            "[remote backend] auto-spawn this many `repro worker` "
            "subprocesses on localhost (turnkey single-machine mode)"
        ),
    )
    parser.add_argument(
        "--bind",
        default=None,
        help=(
            "[remote backend] coordinator listen address host:port "
            "(default: 127.0.0.1:0 when auto-spawning, 0.0.0.0:7787 when "
            "waiting for an external fleet)"
        ),
    )


def runner_from_args(args: argparse.Namespace) -> ParallelRunner:
    return RunnerArgs.from_namespace(args).build()
