"""Argparse glue for the runner knobs.

Shared by ``python -m repro.experiments`` and the ``repro experiments``
verb so both expose identical ``--jobs``/``--cache-dir``/``--shard-size``
flags with parse-time validation.  Lives in ``repro.runner`` (not the
experiments package) so building a parser never has to import the
experiment modules and their scipy/netsim dependency stack.
"""

from __future__ import annotations

import argparse
import os

from repro.runner.core import ParallelRunner


def _jobs(value: str) -> int:
    jobs = int(value)
    if jobs == 0 or jobs < -1:
        raise argparse.ArgumentTypeError(
            "must be a positive count or -1 (all cores)"
        )
    return jobs


def _shard_size(value: str) -> int:
    size = int(value)
    if size <= 0:
        raise argparse.ArgumentTypeError("must be a positive trial count")
    return size


def _cache_dir(value: str) -> str:
    if os.path.exists(value) and not os.path.isdir(value):
        raise argparse.ArgumentTypeError(f"{value!r} exists and is not a directory")
    return value


def add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the runner knobs to *parser*."""
    parser.add_argument(
        "--jobs",
        type=_jobs,
        default=1,
        help="worker processes (1 = sequential, -1 = all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        type=_cache_dir,
        default=None,
        help="directory for the shard result cache (default: no caching)",
    )
    parser.add_argument(
        "--shard-size",
        type=_shard_size,
        default=1,
        help="trials per shard / cache entry (default 1)",
    )


def runner_from_args(args: argparse.Namespace) -> ParallelRunner:
    return ParallelRunner(
        n_jobs=args.jobs,
        cache_dir=args.cache_dir,
        shard_size=args.shard_size,
    )
