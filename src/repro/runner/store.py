"""Result stores: where finished trial payloads live during a campaign.

The historical runner merged every shard's payloads into one in-RAM
list, so a campaign's memory footprint grew linearly with its trial
count times payload size — the blocker for paper-scale grids.  A
:class:`ResultStore` makes that policy pluggable:

* :class:`MemoryResultStore` — the in-RAM list, still the default.
* :class:`JsonlResultStore` — spill-to-disk: each payload is appended
  to a JSONL file the moment its shard finishes, and only an
  ``index -> byte offset`` table (8 bytes per trial) stays resident.
  Peak RSS is flat in the trial count; reading back is one seek per
  payload.

:meth:`ParallelRunner.run` returns a :class:`ResultView` over whichever
store it used: a lazy, index-ordered, read-only sequence.  Iterating it
streams one payload at a time (experiment aggregators fold it in a
single pass); ``materialize()`` snaps the whole campaign into a list
for small grids.  Payloads are JSON-normalised before they reach a
store, so memory-backed and disk-backed runs return byte-identical
structures.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections.abc import Sequence as SequenceABC
from pathlib import Path
from typing import Any, Iterator, List, Optional

from repro.runner.spec import canonical_json

_MISSING = object()


class ResultStore:
    """Index-addressed storage for one campaign's trial payloads."""

    def put(self, index: int, payload: Any) -> None:
        raise NotImplementedError

    def get(self, index: int) -> Any:
        raise NotImplementedError

    def finalize(self) -> None:
        """Flush/close write-side resources; the store stays readable."""

    @property
    def capacity(self) -> int:
        raise NotImplementedError


class MemoryResultStore(ResultStore):
    """Everything in one RAM list — the historical merge behaviour."""

    def __init__(self, capacity: int) -> None:
        self._payloads: List[Any] = [_MISSING] * capacity

    @property
    def capacity(self) -> int:
        return len(self._payloads)

    def put(self, index: int, payload: Any) -> None:
        self._payloads[index] = payload

    def get(self, index: int) -> Any:
        payload = self._payloads[index]
        if payload is _MISSING:
            raise KeyError(f"trial {index} has no stored payload")
        return payload


class JsonlResultStore(ResultStore):
    """Append payloads to a JSONL file as shards finish.

    One line per trial — ``{"index": i, "payload": ...}`` in *arrival*
    order — plus an in-memory offset table for index-ordered reads.
    Writes are flushed per shard batch boundary (every ``put``), so a
    reader opened on the same path sees every stored payload.
    """

    def __init__(self, path: os.PathLike, capacity: int) -> None:
        self.path = Path(path)
        self._offsets: List[Optional[int]] = [None] * capacity
        self._write = open(self.path, "a", encoding="utf-8")
        self._read = None

    @classmethod
    def create(
        cls, store_dir: os.PathLike, experiment: str, capacity: int
    ) -> "JsonlResultStore":
        """A fresh store file under *store_dir* for one ``run()`` call.

        Each ``run()`` gets its own spill file — it *is* that run's
        result set, and the returned view stays valid however many runs
        follow.  Spill files are never reused or cleaned up by the
        runner (delete them freely once the view is done); replays and
        crash resume go through the shard *cache*, which stores shards
        by identity, not through the store.
        """
        root = Path(store_dir)
        root.mkdir(parents=True, exist_ok=True)
        fd, name = tempfile.mkstemp(
            dir=root, prefix=f"{experiment}-", suffix=".jsonl"
        )
        os.close(fd)
        return cls(name, capacity)

    @property
    def capacity(self) -> int:
        return len(self._offsets)

    def put(self, index: int, payload: Any) -> None:
        # This re-serializes a payload the shard path already JSON
        # round-tripped (its byte-identity guarantee).  Deliberate: the
        # backend seam ships Python objects, not encoded text — remote
        # and process backends transport them their own way — so the
        # store owns its encoding at the cost of one extra dumps per
        # payload on the spill path.
        if self._write is None:
            raise ValueError("store is finalized; no further writes")
        offset = self._write.tell()
        self._write.write(
            canonical_json({"index": index, "payload": payload}) + "\n"
        )
        self._write.flush()
        self._offsets[index] = offset

    def get(self, index: int) -> Any:
        offset = self._offsets[index]
        if offset is None:
            raise KeyError(f"trial {index} has no stored payload")
        if self._read is None:
            self._read = open(self.path, "r", encoding="utf-8")
        self._read.seek(offset)
        record = json.loads(self._read.readline())
        return record["payload"]

    def finalize(self) -> None:
        if self._write is not None:
            self._write.close()
            self._write = None

    def close(self) -> None:
        """Release both handles; reads after close reopen the file."""
        self.finalize()
        if self._read is not None:
            self._read.close()
            self._read = None


class ResultView(SequenceABC):
    """Lazy, index-ordered, read-only view over a :class:`ResultStore`.

    Behaves like the payload list the runner used to return — indexing,
    slicing, iteration, ``len``, equality against any sequence — but
    reads each payload from the backing store on demand, so a
    disk-backed campaign never has to fit in RAM.  ``materialize()``
    snaps it into a real list when the grid is small enough to hold.
    """

    def __init__(self, store: ResultStore) -> None:
        self._store = store

    @property
    def store(self) -> ResultStore:
        return self._store

    def __len__(self) -> int:
        return self._store.capacity

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._store.get(i) for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"trial index {index} out of range")
        return self._store.get(index)

    def __iter__(self) -> Iterator[Any]:
        for i in range(len(self)):
            yield self._store.get(i)

    def materialize(self) -> List[Any]:
        """The whole campaign as one in-RAM list (small grids only)."""
        return list(self)

    def close(self) -> None:
        """Release the store's file handles (disk-backed stores only).

        Reading again after close transparently reopens the spill file;
        long-lived processes juggling many campaigns call this to keep
        their fd count flat instead of waiting on garbage collection.
        """
        close = getattr(self._store, "close", None)
        if close is not None:
            close()

    def __eq__(self, other) -> bool:
        # Pairwise streaming comparison: neither side is materialized,
        # so two disk-backed campaigns compare in O(1) memory.
        if not isinstance(other, (ResultView, list, tuple)):
            return NotImplemented
        return len(self) == len(other) and all(
            a == b for a, b in zip(self, other)
        )

    __hash__ = None  # mutable-ish view; never a dict key

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ResultView of {len(self)} payloads "
            f"via {type(self._store).__name__}>"
        )
