"""On-disk JSON memoization of completed shards.

A shard's cache entry is one JSON document under
``<cache_dir>/<experiment>/<shard_key>.json`` holding the trial
identities it answers for plus their payloads.  The key mixes in a
*code version* — by default a content hash of the installed ``repro``
sources — so editing the library invalidates every cached result
without any bookkeeping.

Writes are atomic (write to a temp file, then ``os.replace``) so a
killed run never leaves a torn entry behind; a corrupt or unreadable
entry is treated as a miss, never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, List, Optional, Sequence

from repro.runner.spec import TrialSpec, canonical_json

CACHE_FORMAT = "repro-shard/1"

_code_version_cache: Optional[str] = None


def _hash_tree(root: Path) -> str:
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def compute_code_version(root: "Optional[os.PathLike]" = None) -> str:
    """Content hash of every ``.py`` file under *root*.

    *root* defaults to the installed ``repro`` package, and that default
    is cached per process: the sources cannot change under a running
    campaign, and hashing ~100 files per shard lookup would dominate
    small trials.  An explicit *root* is hashed fresh every call (tests
    pin the invalidation contract against a scratch tree).
    """
    global _code_version_cache
    if root is not None:
        return _hash_tree(Path(root).resolve())
    if _code_version_cache is None:
        import repro

        # reprolint: disable=unlocked-global -- idempotent: racing writers compute the same hash
        _code_version_cache = _hash_tree(Path(repro.__file__).resolve().parent)
    return _code_version_cache


class ShardCache:
    """Load/store shard payload lists keyed by their shard key."""

    def __init__(self, cache_dir: os.PathLike) -> None:
        self.root = Path(cache_dir)

    def _path(self, experiment: str, key: str) -> Path:
        return self.root / experiment / f"{key}.json"

    def load(
        self, experiment: str, key: str, shard: Sequence[TrialSpec]
    ) -> Optional[List[Any]]:
        """Payloads of *shard* if cached and consistent, else ``None``."""
        path = self._path(experiment, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if entry.get("format") != CACHE_FORMAT:
            return None
        payloads = entry.get("payloads")
        trials = entry.get("trials")
        if not isinstance(payloads, list) or len(payloads) != len(shard):
            return None
        if trials != [spec.identity() for spec in shard]:
            return None
        return payloads

    def store(
        self,
        experiment: str,
        key: str,
        shard: Sequence[TrialSpec],
        payloads: Sequence[Any],
        code_version: str,
    ) -> Path:
        """Atomically persist one completed shard; returns the entry path."""
        path = self._path(experiment, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT,
            "experiment": experiment,
            "code_version": code_version,
            # reprolint: disable=wall-clock -- cache-entry metadata, never read back into payloads
            "created_unix": time.time(),
            "trials": [spec.identity() for spec in shard],
            "payloads": list(payloads),
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(canonical_json(entry))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path
