"""Online monitoring and anomaly detection — the paper's second extension.

"A second extension is the detection of anomalies in the network, from a
few vantage points.  The inference method is fast and so could have
potential for such problems."  This module packages LIA as the long-
running service that sentence implies:

* a **rolling window** of the last ``window`` snapshots feeds phase 1
  through **running sufficient statistics**: per-path and per-equation
  sums maintained in O(pairs) per snapshot (:class:`_RollingMoments`),
  so a variance refresh — every ``refresh_interval`` snapshots — hands
  :func:`~repro.core.variance.estimate_link_variances_from_moments`
  ready-made moments instead of re-reading the whole window, and skips
  the solve outright when no covariance equation went dirty;
* the expensive intersecting-pairs structure is built once, and the
  :class:`~repro.core.engine.InferenceEngine` underneath memoizes the
  phase-2 reduction per estimate and the ``R*`` factorization per
  kept-column set, so between variance refreshes each localisation is a
  pair of triangular solves.  A refresh that *shrinks* the kept set by
  at most ``downdate_limit`` columns — a watched link clearing —
  Givens-downdates the cached factorization
  (:meth:`~repro.core.linalg.QRFactorization.remove_column`); one that
  *grows* it by at most ``update_limit`` columns — congestion churn
  re-flagging links — CGS2-updates it
  (:meth:`~repro.core.linalg.QRFactorization.add_column`) and reuses
  the phase-2 basis sweep, so neither direction refactorizes from
  scratch (see :meth:`OnlineLossMonitor.cache_info`);
* every arriving snapshot is screened by a cheap **path-level z-score**
  against the window's running statistics; snapshots with anomalous
  paths trigger full LIA localisation;
* per-link congestion state is tracked across snapshots, emitting
  ``onset`` / ``cleared`` events with durations — the Section 7.2.2
  run-length analysis as a live signal;
* ``max_cache_bytes`` byte-bounds the engine caches so monitor state
  stays bounded over days of traffic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.core.engine import CacheInfo
from repro.core.lia import LossInferenceAlgorithm
from repro.core.variance import (
    VarianceEstimate,
    estimate_link_variances_from_moments,
)
from repro.probing.snapshot import MeasurementCampaign, Snapshot
from repro.topology.routing import RoutingMatrix


#: Rebuild :class:`_RollingMoments` sums from the stored window every
#: this many pushes: rolling add/subtract accumulates float drift, and a
#: periodic O(window * pairs) rebase bounds it without showing up in the
#: per-snapshot cost.
MOMENTS_REBASE_INTERVAL = 64


class _RollingMoments:
    """Running per-path and per-equation sufficient statistics.

    Over the rolling window of log-rate vectors ``y_t`` it maintains
    ``sum_t y``, ``sum_t y^2`` and ``sum_t y_i y_j`` for every
    intersecting path pair — enough to emit the exact sample covariances
    and path variances phase 1 consumes, in O(pairs) per snapshot
    instead of O(window x pairs) per refresh:

    ``cov_ij = (sum y_i y_j - m ybar_i ybar_j) / (m - 1)``

    which is algebraically the batch
    :func:`~repro.core.covariance.sample_covariance_pairs` formula (the
    batch path centers first, so the two agree to rounding, not to the
    byte — one reason the incremental path is monitor-only).
    """

    def __init__(self, pair_i: np.ndarray, pair_j: np.ndarray, num_paths: int):
        self._pair_i = pair_i
        self._pair_j = pair_j
        self.sum_y = np.zeros(num_paths, dtype=np.float64)
        self.sum_sq = np.zeros(num_paths, dtype=np.float64)
        self.sum_pair = np.zeros(len(pair_i), dtype=np.float64)
        self.count = 0
        self._pushes_since_rebase = 0

    def push(
        self, y: np.ndarray, evicted: Optional[np.ndarray] = None
    ) -> None:
        """Add one window row; subtract the one that fell out, if any."""
        self.sum_y += y
        self.sum_sq += y * y
        self.sum_pair += y[self._pair_i] * y[self._pair_j]
        self.count += 1
        if evicted is not None:
            self.sum_y -= evicted
            self.sum_sq -= evicted * evicted
            self.sum_pair -= evicted[self._pair_i] * evicted[self._pair_j]
            self.count -= 1
        self._pushes_since_rebase += 1

    @property
    def needs_rebase(self) -> bool:
        return self._pushes_since_rebase >= MOMENTS_REBASE_INTERVAL

    def rebase(self, window_rows: List[np.ndarray]) -> None:
        """Recompute the sums from scratch (bounds rolling float drift)."""
        Y = np.vstack(window_rows)
        self.sum_y = Y.sum(axis=0)
        self.sum_sq = (Y * Y).sum(axis=0)
        self.sum_pair = (Y[:, self._pair_i] * Y[:, self._pair_j]).sum(axis=0)
        self.count = Y.shape[0]
        self._pushes_since_rebase = 0

    def path_means(self) -> np.ndarray:
        return self.sum_y / self.count

    def path_variances(self) -> np.ndarray:
        m = self.count
        var = (self.sum_sq - self.sum_y * self.sum_y / m) / (m - 1)
        # Rolling subtraction can push an exactly-constant path a few
        # ulps negative; variances are non-negative by definition.
        return np.maximum(var, 0.0)

    def pair_covariances(self) -> np.ndarray:
        m = self.count
        mean = self.sum_y / m
        return (
            self.sum_pair - m * mean[self._pair_i] * mean[self._pair_j]
        ) / (m - 1)


@dataclass(frozen=True)
class AnomalyEvent:
    """A state change of one link's congestion status."""

    time_index: int
    column: int
    kind: str  # "onset" | "cleared"
    inferred_loss_rate: float
    duration_snapshots: Optional[int] = None  # set on "cleared"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = (
            f" after {self.duration_snapshots} snapshots"
            if self.duration_snapshots is not None
            else ""
        )
        return (
            f"t={self.time_index}: link {self.column} {self.kind}"
            f" (loss {self.inferred_loss_rate:.4f}){extra}"
        )


@dataclass
class MonitorReport:
    """Outcome of feeding one snapshot to the monitor."""

    time_index: int
    screened_anomalous: bool
    anomalous_paths: np.ndarray
    events: List[AnomalyEvent] = field(default_factory=list)
    loss_rates: Optional[np.ndarray] = None


class OnlineLossMonitor:
    """Streaming LIA with path screening and link-state tracking.

    Parameters
    ----------
    routing:
        The (fixed) reduced routing matrix of the deployment.
    window:
        Rolling training-window length (the paper's m).
    refresh_interval:
        Re-learn variances every this many snapshots once warm.
    congestion_threshold:
        Loss rate above which a link counts as congested (``t_l``).
    z_threshold:
        Path screening sensitivity: a path is anomalous when its log
        rate sits more than this many rolling standard deviations below
        its rolling mean.
    localize_always:
        Run LIA on every snapshot instead of only on screened ones
        (costlier, catches sub-threshold drift).
    downdate_limit, update_limit:
        How many kept-set columns a variance refresh may remove / add
        while still reusing the cached ``R*`` factorization (Givens
        downdates / CGS2 column adds) and, for updates, the phase-2
        basis sweep.  Larger limits absorb heavier congestion churn at
        the cost of longer update chains; 0 disables that direction.
    max_cache_bytes:
        Byte bound on each engine cache's resident arrays (``None``:
        entry-count bounds only) so monitor state stays bounded over
        days of traffic.
    incremental_variance:
        Maintain rolling sufficient statistics so a variance refresh
        re-solves from O(pairs) running moments instead of re-reading
        the whole window (and skips the solve when no equation went
        dirty).  The moments match the batch path to rounding, not to
        the byte; disable to reproduce batch arithmetic exactly.
    """

    def __init__(
        self,
        routing: RoutingMatrix,
        window: int = 50,
        refresh_interval: int = 10,
        congestion_threshold: float = 0.002,
        z_threshold: float = 4.0,
        localize_always: bool = False,
        downdate_limit: int = 2,
        update_limit: int = 2,
        max_cache_bytes: Optional[int] = None,
        incremental_variance: bool = True,
    ) -> None:
        if window < 2:
            raise ValueError("window must be at least 2")
        if refresh_interval < 1:
            raise ValueError("refresh_interval must be at least 1")
        if z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        if downdate_limit < 0 or update_limit < 0:
            raise ValueError("cache update limits must be non-negative")
        self.routing = routing
        self.window = window
        self.refresh_interval = refresh_interval
        self.congestion_threshold = congestion_threshold
        self.z_threshold = z_threshold
        self.localize_always = localize_always
        self.incremental_variance = incremental_variance

        # Long-lived monitors opt into the incremental cache paths: a
        # refresh that exonerates or re-flags a link or two reuses the
        # cached R* factorization (and the phase-2 basis sweep) instead
        # of refactorizing.  (Off by default in the engine so batch
        # pipelines stay bit-identical.)
        self._lia = LossInferenceAlgorithm(
            routing,
            congestion_threshold=congestion_threshold,
            downdate_limit=downdate_limit,
            update_limit=update_limit,
            reduction_reuse_limit=max(downdate_limit, update_limit),
            max_cache_bytes=max_cache_bytes,
        )
        self._history: Deque[Snapshot] = deque(maxlen=window)
        self._log_history: Deque[np.ndarray] = deque(maxlen=window)
        self._moments: Optional[_RollingMoments] = None
        self._estimate: Optional[VarianceEstimate] = None
        self._last_sigma: Optional[np.ndarray] = None
        self.variance_refreshes = 0
        self.variance_solves_skipped = 0
        self._since_refresh = 0
        self._time = -1
        self._congested_since: Dict[int, int] = {}
        self._last_rates: Dict[int, float] = {}

    # -- state queries -------------------------------------------------------

    @property
    def engine(self):
        """The underlying :class:`~repro.core.engine.InferenceEngine`."""
        return self._lia.engine

    @property
    def is_warm(self) -> bool:
        """True once the training window is full."""
        return len(self._history) >= self.window

    @property
    def factorization_downdates(self) -> int:
        """Refreshes absorbed by a Givens downdate instead of a fresh QR.

        Incremented when a variance refresh shrank the kept-column set
        within ``downdate_limit`` and the engine reused the previous
        ``R*`` factorization via column-removal downdates.  (One counter
        of the fuller :meth:`cache_info` picture.)
        """
        return self.engine.factorization_cache.downdates

    @property
    def factorization_updates(self) -> int:
        """Refreshes absorbed by CGS2 column adds instead of a fresh QR."""
        return self.engine.factorization_cache.updates

    def cache_info(self) -> Dict[str, CacheInfo]:
        """Hit/miss/update/downdate/eviction counters of both engine caches."""
        return self.engine.cache_info()

    def currently_congested(self) -> List[int]:
        return sorted(self._congested_since)

    def congestion_age(self, column: int) -> Optional[int]:
        """Snapshots since this link's current congestion onset."""
        onset = self._congested_since.get(column)
        if onset is None:
            return None
        return self._time - onset + 1

    # -- ingestion -------------------------------------------------------------

    def observe(self, snapshot: Snapshot) -> MonitorReport:
        """Feed one snapshot; returns screening + localisation outcome."""
        if snapshot.num_paths != self.routing.num_paths:
            raise ValueError("snapshot does not match routing matrix")
        self._time += 1
        anomalous = self._screen(snapshot)
        report = MonitorReport(
            time_index=self._time,
            screened_anomalous=bool(anomalous.any()),
            anomalous_paths=np.flatnonzero(anomalous),
        )

        log_rates = snapshot.path_log_rates()
        evicted = (
            self._log_history[0]
            if len(self._log_history) == self.window
            else None
        )
        self._history.append(snapshot)
        self._log_history.append(log_rates)
        if self.incremental_variance:
            if self._moments is None:
                self._moments = _RollingMoments(
                    self.engine.pairs.pair_i,
                    self.engine.pairs.pair_j,
                    self.routing.num_paths,
                )
            self._moments.push(log_rates, evicted)
            if self._moments.needs_rebase:
                self._moments.rebase(list(self._log_history))
        if not self.is_warm:
            return report

        if self._estimate is None or self._since_refresh >= self.refresh_interval:
            self._refresh_estimate()
            self._since_refresh = 0
        else:
            self._since_refresh += 1

        if self.localize_always or report.screened_anomalous or self._congested_since:
            # The engine's reduction memo and factorization cache make
            # this a pair of triangular solves between variance refreshes.
            result = self.engine.infer(snapshot, self._estimate)
            report.loss_rates = result.loss_rates
            report.events = self._update_states(result.loss_rates)
        return report

    def _refresh_estimate(self) -> None:
        """Re-learn link variances from the current window."""
        self.variance_refreshes += 1
        if self.incremental_variance and self._moments is not None:
            sigma = self._moments.pair_covariances()
            if (
                self._estimate is not None
                and self._last_sigma is not None
                and np.array_equal(sigma, self._last_sigma)
            ):
                # No covariance equation went dirty since the last
                # solve; the estimate is still exact.
                self.variance_solves_skipped += 1
                return
            self._estimate = estimate_link_variances_from_moments(
                self.engine.pairs,
                sigma,
                self._moments.path_variances(),
                self._moments.count,
                method=self._lia.variance_method,
                drop_negative=self._lia.drop_negative,
            )
            self._last_sigma = sigma
            return
        training = MeasurementCampaign(
            routing=self.routing, snapshots=list(self._history)
        )
        self._estimate = self._lia.learn_variances(training)

    def _screen(self, snapshot: Snapshot) -> np.ndarray:
        """Cheap per-path z-score against the rolling window."""
        if len(self._log_history) < 2:
            return np.zeros(snapshot.num_paths, dtype=bool)
        if self.incremental_variance and self._moments is not None:
            mean = self._moments.path_means()
            std = np.maximum(np.sqrt(self._moments.path_variances()), 1e-6)
        else:
            Y = np.vstack(list(self._log_history))
            mean = Y.mean(axis=0)
            std = np.maximum(Y.std(axis=0, ddof=1), 1e-6)
        z = (snapshot.path_log_rates() - mean) / std
        return z < -self.z_threshold

    def _update_states(self, loss_rates: np.ndarray) -> List[AnomalyEvent]:
        events: List[AnomalyEvent] = []
        congested_now = set(
            int(c) for c in np.flatnonzero(loss_rates > self.congestion_threshold)
        )
        for column in sorted(congested_now - set(self._congested_since)):
            self._congested_since[column] = self._time
            events.append(
                AnomalyEvent(
                    time_index=self._time,
                    column=column,
                    kind="onset",
                    inferred_loss_rate=float(loss_rates[column]),
                )
            )
        for column in sorted(set(self._congested_since) - congested_now):
            onset = self._congested_since.pop(column)
            events.append(
                AnomalyEvent(
                    time_index=self._time,
                    column=column,
                    kind="cleared",
                    inferred_loss_rate=float(loss_rates[column]),
                    duration_snapshots=self._time - onset,
                )
            )
        for column in congested_now:
            self._last_rates[column] = float(loss_rates[column])
        return events
