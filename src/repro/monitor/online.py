"""Online monitoring and anomaly detection — the paper's second extension.

"A second extension is the detection of anomalies in the network, from a
few vantage points.  The inference method is fast and so could have
potential for such problems."  This module packages LIA as the long-
running service that sentence implies:

* a **rolling window** of the last ``window`` snapshots feeds phase 1;
  the variance estimate refreshes every ``refresh_interval`` snapshots
  (the expensive intersecting-pairs structure is built once, and the
  :class:`~repro.core.engine.InferenceEngine` underneath memoizes the
  phase-2 reduction per estimate and the ``R*`` factorization per
  kept-column set, so between refreshes each localisation is a pair of
  triangular solves; when a refresh *shrinks* the kept set by one or two
  columns — a watched link clearing — the cached factorization is
  Givens-downdated via
  :meth:`~repro.core.linalg.QRFactorization.remove_column` instead of
  refactorized, see :attr:`OnlineLossMonitor.factorization_downdates`);
* every arriving snapshot is screened by a cheap **path-level z-score**
  against the window's running statistics; snapshots with anomalous
  paths trigger full LIA localisation;
* per-link congestion state is tracked across snapshots, emitting
  ``onset`` / ``cleared`` events with durations — the Section 7.2.2
  run-length analysis as a live signal.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.core.lia import LossInferenceAlgorithm
from repro.core.variance import VarianceEstimate
from repro.probing.snapshot import MeasurementCampaign, Snapshot
from repro.topology.routing import RoutingMatrix


@dataclass(frozen=True)
class AnomalyEvent:
    """A state change of one link's congestion status."""

    time_index: int
    column: int
    kind: str  # "onset" | "cleared"
    inferred_loss_rate: float
    duration_snapshots: Optional[int] = None  # set on "cleared"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = (
            f" after {self.duration_snapshots} snapshots"
            if self.duration_snapshots is not None
            else ""
        )
        return (
            f"t={self.time_index}: link {self.column} {self.kind}"
            f" (loss {self.inferred_loss_rate:.4f}){extra}"
        )


@dataclass
class MonitorReport:
    """Outcome of feeding one snapshot to the monitor."""

    time_index: int
    screened_anomalous: bool
    anomalous_paths: np.ndarray
    events: List[AnomalyEvent] = field(default_factory=list)
    loss_rates: Optional[np.ndarray] = None


class OnlineLossMonitor:
    """Streaming LIA with path screening and link-state tracking.

    Parameters
    ----------
    routing:
        The (fixed) reduced routing matrix of the deployment.
    window:
        Rolling training-window length (the paper's m).
    refresh_interval:
        Re-learn variances every this many snapshots once warm.
    congestion_threshold:
        Loss rate above which a link counts as congested (``t_l``).
    z_threshold:
        Path screening sensitivity: a path is anomalous when its log
        rate sits more than this many rolling standard deviations below
        its rolling mean.
    localize_always:
        Run LIA on every snapshot instead of only on screened ones
        (costlier, catches sub-threshold drift).
    """

    def __init__(
        self,
        routing: RoutingMatrix,
        window: int = 50,
        refresh_interval: int = 10,
        congestion_threshold: float = 0.002,
        z_threshold: float = 4.0,
        localize_always: bool = False,
    ) -> None:
        if window < 2:
            raise ValueError("window must be at least 2")
        if refresh_interval < 1:
            raise ValueError("refresh_interval must be at least 1")
        if z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        self.routing = routing
        self.window = window
        self.refresh_interval = refresh_interval
        self.congestion_threshold = congestion_threshold
        self.z_threshold = z_threshold
        self.localize_always = localize_always

        self._lia = LossInferenceAlgorithm(
            routing, congestion_threshold=congestion_threshold
        )
        # Long-lived monitors opt into QR downdating: a refresh that
        # exonerates a link or two reuses the cached R* factorization
        # via Givens column removals instead of refactorizing.  (Off by
        # default in the engine so batch pipelines stay bit-identical.)
        self._lia.engine.factorization_cache.downdate_limit = 2
        self._history: Deque[Snapshot] = deque(maxlen=window)
        self._log_history: Deque[np.ndarray] = deque(maxlen=window)
        self._estimate: Optional[VarianceEstimate] = None
        self._since_refresh = 0
        self._time = -1
        self._congested_since: Dict[int, int] = {}
        self._last_rates: Dict[int, float] = {}

    # -- state queries -------------------------------------------------------

    @property
    def engine(self):
        """The underlying :class:`~repro.core.engine.InferenceEngine`."""
        return self._lia.engine

    @property
    def is_warm(self) -> bool:
        """True once the training window is full."""
        return len(self._history) >= self.window

    @property
    def factorization_downdates(self) -> int:
        """Refreshes absorbed by a Givens downdate instead of a fresh QR.

        Incremented when a variance refresh shrank the kept-column set by
        at most two columns and the engine reused the previous ``R*``
        factorization via column-removal downdates.
        """
        return self.engine.factorization_cache.downdates

    def currently_congested(self) -> List[int]:
        return sorted(self._congested_since)

    def congestion_age(self, column: int) -> Optional[int]:
        """Snapshots since this link's current congestion onset."""
        onset = self._congested_since.get(column)
        if onset is None:
            return None
        return self._time - onset + 1

    # -- ingestion -------------------------------------------------------------

    def observe(self, snapshot: Snapshot) -> MonitorReport:
        """Feed one snapshot; returns screening + localisation outcome."""
        if snapshot.num_paths != self.routing.num_paths:
            raise ValueError("snapshot does not match routing matrix")
        self._time += 1
        anomalous = self._screen(snapshot)
        report = MonitorReport(
            time_index=self._time,
            screened_anomalous=bool(anomalous.any()),
            anomalous_paths=np.flatnonzero(anomalous),
        )

        self._history.append(snapshot)
        self._log_history.append(snapshot.path_log_rates())
        if not self.is_warm:
            return report

        if self._estimate is None or self._since_refresh >= self.refresh_interval:
            training = MeasurementCampaign(
                routing=self.routing, snapshots=list(self._history)
            )
            self._estimate = self._lia.learn_variances(training)
            self._since_refresh = 0
        else:
            self._since_refresh += 1

        if self.localize_always or report.screened_anomalous or self._congested_since:
            # The engine's reduction memo and factorization cache make
            # this a pair of triangular solves between variance refreshes.
            result = self.engine.infer(snapshot, self._estimate)
            report.loss_rates = result.loss_rates
            report.events = self._update_states(result.loss_rates)
        return report

    def _screen(self, snapshot: Snapshot) -> np.ndarray:
        """Cheap per-path z-score against the rolling window."""
        if len(self._log_history) < 2:
            return np.zeros(snapshot.num_paths, dtype=bool)
        Y = np.vstack(list(self._log_history))
        mean = Y.mean(axis=0)
        std = np.maximum(Y.std(axis=0, ddof=1), 1e-6)
        z = (snapshot.path_log_rates() - mean) / std
        return z < -self.z_threshold

    def _update_states(self, loss_rates: np.ndarray) -> List[AnomalyEvent]:
        events: List[AnomalyEvent] = []
        congested_now = set(
            int(c) for c in np.flatnonzero(loss_rates > self.congestion_threshold)
        )
        for column in sorted(congested_now - set(self._congested_since)):
            self._congested_since[column] = self._time
            events.append(
                AnomalyEvent(
                    time_index=self._time,
                    column=column,
                    kind="onset",
                    inferred_loss_rate=float(loss_rates[column]),
                )
            )
        for column in sorted(set(self._congested_since) - congested_now):
            onset = self._congested_since.pop(column)
            events.append(
                AnomalyEvent(
                    time_index=self._time,
                    column=column,
                    kind="cleared",
                    inferred_loss_rate=float(loss_rates[column]),
                    duration_snapshots=self._time - onset,
                )
            )
        for column in congested_now:
            self._last_rates[column] = float(loss_rates[column])
        return events
