"""Online monitoring / anomaly detection built on LIA."""

from repro.monitor.online import AnomalyEvent, MonitorReport, OnlineLossMonitor

__all__ = ["AnomalyEvent", "MonitorReport", "OnlineLossMonitor"]
