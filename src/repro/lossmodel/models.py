"""Link loss-rate models LLRD1 and LLRD2 (Section 6 of the paper).

Both models, taken from Padmanabhan et al., split links into *good* and
*congested* classes separated by the threshold ``t_l = 0.002``:

* **LLRD1** — congested links draw a loss rate uniformly from
  ``[0.05, 0.2]``; good links from ``[0, 0.002]``;
* **LLRD2** — congested links draw from the much wider ``[0.002, 1]``.

The threshold is also what the evaluation uses to decide whether an
*inferred* rate counts as a detection, so it lives here with the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class LossRateModel:
    """A two-class link loss-rate distribution."""

    name: str
    threshold: float
    good_range: Tuple[float, float]
    congested_range: Tuple[float, float]

    def __post_init__(self) -> None:
        lo_g, hi_g = self.good_range
        lo_c, hi_c = self.congested_range
        if not 0 <= lo_g <= hi_g <= 1:
            raise ValueError(f"bad good_range {self.good_range}")
        if not 0 <= lo_c <= hi_c <= 1:
            raise ValueError(f"bad congested_range {self.congested_range}")
        if not 0 < self.threshold < 1:
            raise ValueError(f"bad threshold {self.threshold}")

    def draw_rates(
        self, congested: np.ndarray, seed: SeedLike = None
    ) -> np.ndarray:
        """Draw one loss rate per link given the boolean congestion mask."""
        rng = as_rng(seed)
        congested = np.asarray(congested, dtype=bool)
        n = congested.shape[0]
        rates = rng.uniform(self.good_range[0], self.good_range[1], size=n)
        count = int(congested.sum())
        if count:
            rates[congested] = rng.uniform(
                self.congested_range[0], self.congested_range[1], size=count
            )
        return rates

    def classify(self, loss_rates: np.ndarray) -> np.ndarray:
        """Boolean congestion classification by the model threshold."""
        return np.asarray(loss_rates, dtype=np.float64) > self.threshold


#: LLRD1: congested in [0.05, 0.2], good in [0, 0.002], t_l = 0.002.
LLRD1 = LossRateModel(
    name="LLRD1",
    threshold=0.002,
    good_range=(0.0, 0.002),
    congested_range=(0.05, 0.2),
)

#: LLRD2: congested loss rates span [0.002, 1].
LLRD2 = LossRateModel(
    name="LLRD2",
    threshold=0.002,
    good_range=(0.0, 0.002),
    congested_range=(0.002, 1.0),
)

#: Internet-calibrated model for the Section 7 experiment reproductions:
#: un-congested Internet links lose essentially nothing (<= 1e-4, versus
#: LLRD1's generous 2e-3), which is what makes the paper's 95 %+
#: cross-validation consistency at epsilon = 0.005 reachable over long
#: paths.  Congested links match LLRD1's range.
INTERNET = LossRateModel(
    name="internet",
    threshold=0.002,
    good_range=(0.0, 1e-4),
    congested_range=(0.05, 0.2),
)
