"""Packet-loss processes: the common interface.

A loss process turns a vector of per-link *average* loss rates into a
realisation of per-probe link states for one snapshot.  Two realisations
matter to the paper:

* :class:`~repro.lossmodel.gilbert.GilbertProcess` — bursty on/off losses
  (the paper's default; "losses due to congestion occur in bursts");
* :class:`~repro.lossmodel.bernoulli.BernoulliProcess` — memoryless drops
  (the paper's control; "differences are insignificant").

The interface exposes two granularities so the probing simulator can trade
fidelity for speed:

``sample_states(loss_rates, num_probes, seed)``
    ``(num_links, num_probes)`` boolean array, True where the link drops
    the probe sent at that index.  All paths crossing a link observe the
    same realisation, which is exactly Assumption S.1.

``sample_loss_fractions(loss_rates, num_probes, seed)``
    Per-link fraction of dropped probes for the snapshot (the flow-level
    shortcut; defaults to the row means of ``sample_states``).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.rng import SeedLike


class LossProcess(abc.ABC):
    """Base class for per-link packet-loss processes."""

    @abc.abstractmethod
    def sample_states(
        self,
        loss_rates: np.ndarray,
        num_probes: int,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Boolean drop matrix of shape ``(num_links, num_probes)``."""

    def sample_loss_fractions(
        self,
        loss_rates: np.ndarray,
        num_probes: int,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Per-link empirical loss fraction over one snapshot."""
        states = self.sample_states(loss_rates, num_probes, seed=seed)
        return states.mean(axis=1)

    @staticmethod
    def _validated_rates(loss_rates: np.ndarray) -> np.ndarray:
        rates = np.asarray(loss_rates, dtype=np.float64)
        if rates.ndim != 1:
            raise ValueError("loss_rates must be one-dimensional")
        if np.any((rates < 0) | (rates > 1)):
            raise ValueError("loss rates must lie in [0, 1]")
        return rates
