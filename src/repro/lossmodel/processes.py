"""Packet-loss processes: the common interface.

A loss process turns a vector of per-link *average* loss rates into a
realisation of per-probe link states for one snapshot.  Two realisations
matter to the paper:

* :class:`~repro.lossmodel.gilbert.GilbertProcess` — bursty on/off losses
  (the paper's default; "losses due to congestion occur in bursts");
* :class:`~repro.lossmodel.bernoulli.BernoulliProcess` — memoryless drops
  (the paper's control; "differences are insignificant").

The interface exposes two granularities so the probing simulator can trade
fidelity for speed:

``sample_states(loss_rates, num_probes, seed)``
    ``(num_links, num_probes)`` boolean array, True where the link drops
    the probe sent at that index.  All paths crossing a link observe the
    same realisation, which is exactly Assumption S.1.

``sample_loss_fractions(loss_rates, num_probes, seed)``
    Per-link fraction of dropped probes for the snapshot (the flow-level
    shortcut; defaults to the row means of ``sample_states``).

For long snapshots the fraction path *streams*: above
``STREAMING_PROBE_THRESHOLD`` probes the mean is accumulated over
``iter_state_chunks`` blocks instead of materialising the full
``(num_links, num_probes)`` boolean matrix — a 1M-probe snapshot over
10k links would otherwise allocate ~10 GB to compute a 10k-vector.
The default chunk iterator yields one full block (always correct);
processes whose draw order permits it override with true fixed-size
chunks, and the override must keep the result bit-identical to the
unchunked path.
"""

from __future__ import annotations

import abc
from typing import Iterator

import numpy as np

from repro.utils.rng import SeedLike

#: ``sample_loss_fractions`` materialises the full drop matrix up to this
#: many probes; beyond it the mean is streamed chunk by chunk.
STREAMING_PROBE_THRESHOLD = 4096

#: Probe-columns per streamed block.
STREAMING_CHUNK = 2048


class LossProcess(abc.ABC):
    """Base class for per-link packet-loss processes."""

    @abc.abstractmethod
    def sample_states(
        self,
        loss_rates: np.ndarray,
        num_probes: int,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Boolean drop matrix of shape ``(num_links, num_probes)``."""

    def iter_state_chunks(
        self,
        loss_rates: np.ndarray,
        num_probes: int,
        seed: SeedLike = None,
        chunk_size: int = STREAMING_CHUNK,
    ) -> Iterator[np.ndarray]:
        """Yield the drop matrix as ``(num_links, <=chunk_size)`` blocks.

        Concatenating the blocks along axis 1 must reproduce
        ``sample_states`` bit for bit.  The default yields one full
        block, which is trivially correct for any process (including
        those, like the congestion simulator, whose realisation cannot
        be split without changing it); subclasses with a
        time-major draw order override this with true chunking.
        """
        return iter((self.sample_states(loss_rates, num_probes, seed=seed),))

    def sample_loss_fractions(
        self,
        loss_rates: np.ndarray,
        num_probes: int,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Per-link empirical loss fraction over one snapshot.

        Streams the mean through ``iter_state_chunks`` above
        ``STREAMING_PROBE_THRESHOLD`` probes; a drop count is an exact
        int64, so ``count / num_probes`` equals the materialised row
        mean bit for bit.
        """
        if num_probes <= STREAMING_PROBE_THRESHOLD:
            states = self.sample_states(loss_rates, num_probes, seed=seed)
            return states.mean(axis=1)
        counts = None
        seen = 0
        for chunk in self.iter_state_chunks(loss_rates, num_probes, seed=seed):
            block = chunk.sum(axis=1, dtype=np.int64)
            counts = block if counts is None else counts + block
            seen += chunk.shape[1]
        if counts is None or seen != num_probes:
            raise RuntimeError(
                f"iter_state_chunks covered {seen} of {num_probes} probes"
            )
        return counts / float(num_probes)

    @staticmethod
    def _validated_rates(loss_rates: np.ndarray) -> np.ndarray:
        rates = np.asarray(loss_rates, dtype=np.float64)
        if rates.ndim != 1:
            raise ValueError("loss_rates must be one-dimensional")
        if np.any((rates < 0) | (rates > 1)):
            raise ValueError("loss rates must lie in [0, 1]")
        return rates
