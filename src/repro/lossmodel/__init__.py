"""Link loss models: rate distributions, congestion marks, packet processes."""

from repro.lossmodel.assignment import (
    SnapshotGroundTruth,
    draw_link_propensities,
    draw_snapshot_truth,
    persistent_congestion_truth,
    truth_from_propensities,
)
from repro.lossmodel.bernoulli import BernoulliProcess
from repro.lossmodel.congestion import CongestionLossProcess
from repro.lossmodel.gilbert import GilbertProcess
from repro.lossmodel.models import INTERNET, LLRD1, LLRD2, LossRateModel
from repro.lossmodel.processes import (
    STREAMING_CHUNK,
    STREAMING_PROBE_THRESHOLD,
    LossProcess,
)

__all__ = [
    "INTERNET",
    "LLRD1",
    "LLRD2",
    "BernoulliProcess",
    "CongestionLossProcess",
    "GilbertProcess",
    "LossProcess",
    "LossRateModel",
    "STREAMING_CHUNK",
    "STREAMING_PROBE_THRESHOLD",
    "SnapshotGroundTruth",
    "draw_link_propensities",
    "draw_snapshot_truth",
    "persistent_congestion_truth",
    "truth_from_propensities",
]
