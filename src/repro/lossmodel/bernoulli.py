"""Memoryless (Bernoulli) packet-loss process.

The paper's control experiment: "we also run simulations with Bernoulli
losses, where packets are dropped on a link with a fixed probability, but
the differences are insignificant."  Useful both as that control and as a
fast baseline in tests, since its snapshot loss fraction is a plain
binomial proportion.
"""

from __future__ import annotations

import numpy as np

from repro.lossmodel.processes import LossProcess
from repro.utils.rng import SeedLike, as_rng


class BernoulliProcess(LossProcess):
    """Independent per-probe drops at each link's average loss rate."""

    def sample_states(
        self,
        loss_rates: np.ndarray,
        num_probes: int,
        seed: SeedLike = None,
    ) -> np.ndarray:
        rates = self._validated_rates(loss_rates)
        if num_probes <= 0:
            raise ValueError(f"num_probes must be positive, got {num_probes}")
        rng = as_rng(seed)
        return rng.random((rates.shape[0], num_probes)) < rates[:, None]

    def sample_loss_fractions(
        self,
        loss_rates: np.ndarray,
        num_probes: int,
        seed: SeedLike = None,
    ) -> np.ndarray:
        # Binomial shortcut: no need to materialise the state matrix.
        rates = self._validated_rates(loss_rates)
        if num_probes <= 0:
            raise ValueError(f"num_probes must be positive, got {num_probes}")
        rng = as_rng(seed)
        drops = rng.binomial(num_probes, rates)
        return drops / float(num_probes)
