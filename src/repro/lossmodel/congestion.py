"""Congestion-induced loss: the discrete-event simulator behind the seam.

:class:`CongestionLossProcess` plugs the packet-level simulator of
:mod:`repro.netsim.sim` into the same :class:`~repro.lossmodel.
processes.LossProcess` interface the analytic Gilbert/Bernoulli
processes implement, so the probing simulator, the Scenario pipeline,
and every estimator run unchanged on *emergent* losses: drops happen
because a finite FIFO overflowed under calibrated background traffic,
not because a chain said so.  Assumption S.1 (all paths crossing a link
see one loss realisation) holds structurally — there is exactly one
queue per link.

Links that no probing path traverses are not simulated (they carry no
realised traffic and are unobservable to every estimator); their rows
fall back to an analytic Bernoulli realisation from a dedicated
substream so the returned matrix still honours the assigned rates
link for link.

Determinism: the ``seed`` argument (an outer RNG in campaign use) is
collapsed into a single root integer, from which the simulator spawns
one stream per flow — the drop matrix is a pure function of
``(paths, traffic, loss_rates, num_probes, root seed)`` regardless of
backend or job count.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.lossmodel.processes import LossProcess
from repro.netsim.sim.config import TrafficConfig
from repro.netsim.sim.simulator import CongestionSimulator, SnapshotTrace
from repro.utils.rng import SeedLike, as_rng

#: Substream tag for the Bernoulli fallback rows of unprobed links.
_FALLBACK_TAG = 0x0FA11BAC


class CongestionLossProcess(LossProcess):
    """Loss realisations produced by queue overflow in a packet simulator."""

    def __init__(
        self,
        paths: Sequence[object],
        num_links: int,
        traffic: Optional[TrafficConfig] = None,
    ) -> None:
        if traffic is None:
            traffic = TrafficConfig(kind="congestion")
        if not traffic.is_congestion:
            raise ValueError(
                f"CongestionLossProcess needs kind='congestion', "
                f"got {traffic.kind!r}"
            )
        self.traffic = traffic
        self.simulator = CongestionSimulator(paths, num_links, traffic)
        self.num_links = int(num_links)
        #: Trace of the most recent snapshot — the delay byproducts the
        #: congestion experiments feed into the delay estimator.
        self.last_trace: Optional[SnapshotTrace] = None
        #: With ``collect_traces`` on, every snapshot's trace is kept in
        #: order, so a campaign's loss realisations and its queueing-delay
        #: byproducts come from the *same* simulated packets.
        self.collect_traces = False
        self.traces: List[SnapshotTrace] = []

    def sample_states(
        self,
        loss_rates: np.ndarray,
        num_probes: int,
        seed: SeedLike = None,
    ) -> np.ndarray:
        rates = self._validated_rates(loss_rates)
        if rates.shape[0] != self.num_links:
            raise ValueError(
                f"process built for {self.num_links} links, "
                f"got {rates.shape[0]} rates"
            )
        if num_probes <= 0:
            raise ValueError(f"num_probes must be positive, got {num_probes}")
        root = int(as_rng(seed).integers(0, 2**63 - 1))
        trace = self.simulator.run_snapshot(rates, num_probes, seed=root)
        states = self.simulator.expand_drops(trace)
        inactive = np.setdiff1d(
            np.arange(self.num_links), trace.active_links, assume_unique=True
        )
        if inactive.size:
            fallback = np.random.default_rng(
                np.random.SeedSequence([root, _FALLBACK_TAG])
            )
            states[inactive] = (
                fallback.random((inactive.size, num_probes))
                < rates[inactive, None]
            )
        self.last_trace = trace
        if self.collect_traces:
            self.traces.append(trace)
        return states
