"""Per-snapshot congestion assignment (Section 6).

"In each snapshot, each link is then randomly selected to be congested
with probability p."  This module draws those marks and the matching loss
rates, producing the :class:`SnapshotGroundTruth` that both the simulator
and the accuracy metrics consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lossmodel.models import LossRateModel
from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class SnapshotGroundTruth:
    """Ground truth for one snapshot: which links are congested and how lossy.

    ``loss_rates`` are *average* loss rates; the packet process (Gilbert or
    Bernoulli) realises them stochastically during probing.
    """

    congested: np.ndarray  # (num_links,) bool
    loss_rates: np.ndarray  # (num_links,) float in [0, 1]

    def __post_init__(self) -> None:
        if self.congested.shape != self.loss_rates.shape:
            raise ValueError("congested and loss_rates must align")
        if np.any((self.loss_rates < 0) | (self.loss_rates > 1)):
            raise ValueError("loss rates must lie in [0, 1]")

    @property
    def num_links(self) -> int:
        return int(self.congested.shape[0])

    def transmission_rates(self) -> np.ndarray:
        return 1.0 - self.loss_rates


def draw_snapshot_truth(
    num_links: int,
    congestion_probability: float,
    model: LossRateModel,
    seed: SeedLike = None,
) -> SnapshotGroundTruth:
    """Draw one snapshot's congestion marks and loss rates.

    Each link is congested independently with probability ``p``; loss
    rates then follow the model's class-conditional uniforms.
    """
    if not 0 <= congestion_probability <= 1:
        raise ValueError(
            f"congestion probability must be in [0, 1], got {congestion_probability}"
        )
    if num_links <= 0:
        raise ValueError(f"num_links must be positive, got {num_links}")
    rng = as_rng(seed)
    congested = rng.random(num_links) < congestion_probability
    loss_rates = model.draw_rates(congested, seed=rng)
    return SnapshotGroundTruth(congested=congested, loss_rates=loss_rates)


def draw_link_propensities(
    num_links: int,
    trouble_fraction: float,
    propensity_range: "tuple[float, float]" = (0.3, 0.9),
    seed: SeedLike = None,
) -> np.ndarray:
    """Per-link probabilities of being congested in any given snapshot.

    Models the Internet's heterogeneity: a fraction of *trouble-prone*
    links (under-provisioned access/peering links) congest frequently,
    the rest essentially never.  This is the regime of the paper's
    Internet experiments, where congestion churns per snapshot
    (Section 7.2.2) yet multi-snapshot variance learning still ranks
    links usefully — because propensity, unlike a single snapshot's
    state, is a stable per-link property.
    """
    if not 0 <= trouble_fraction <= 1:
        raise ValueError("trouble_fraction must be in [0, 1]")
    lo, hi = propensity_range
    if not 0 <= lo <= hi <= 1:
        raise ValueError(f"bad propensity_range {propensity_range}")
    rng = as_rng(seed)
    propensities = np.zeros(num_links, dtype=np.float64)
    trouble = rng.random(num_links) < trouble_fraction
    count = int(trouble.sum())
    if count:
        propensities[trouble] = rng.uniform(lo, hi, size=count)
    return propensities


def truth_from_propensities(
    propensities: np.ndarray,
    model: LossRateModel,
    seed: SeedLike = None,
) -> SnapshotGroundTruth:
    """Draw one snapshot's truth given per-link congestion propensities."""
    rng = as_rng(seed)
    p = np.asarray(propensities, dtype=np.float64)
    if np.any((p < 0) | (p > 1)):
        raise ValueError("propensities must lie in [0, 1]")
    congested = rng.random(p.shape[0]) < p
    loss_rates = model.draw_rates(congested, seed=rng)
    return SnapshotGroundTruth(congested=congested, loss_rates=loss_rates)


def persistent_congestion_truth(
    base: SnapshotGroundTruth,
    model: LossRateModel,
    redraw_fraction: float,
    seed: SeedLike = None,
) -> SnapshotGroundTruth:
    """Evolve ground truth keeping most congestion marks from *base*.

    Used by the congestion-duration study (Section 7.2.2 analogue): a
    fraction of links re-draw their congestion state, the rest keep their
    class but re-draw a rate within it (short-term variation).
    """
    if not 0 <= redraw_fraction <= 1:
        raise ValueError("redraw_fraction must be in [0, 1]")
    rng = as_rng(seed)
    n = base.num_links
    p_hat = float(base.congested.mean())
    redraw = rng.random(n) < redraw_fraction
    congested = base.congested.copy()
    congested[redraw] = rng.random(int(redraw.sum())) < p_hat
    loss_rates = model.draw_rates(congested, seed=rng)
    return SnapshotGroundTruth(congested=congested, loss_rates=loss_rates)
