"""The Gilbert burst-loss process (Section 6 of the paper).

Each link fluctuates between a *good* state (no drops) and a *bad* state
(drops everything).  Following the paper (and Paxson's measurements), the
probability of remaining in the bad state is fixed at 0.35; the remaining
transition probabilities are chosen so the chain's stationary bad-state
probability equals the link's assigned average loss rate ``l``:

    P(bad -> good) = 1 - P(bad -> bad) = 0.65
    P(good -> bad) = 0.65 * l / (1 - l)

so that ``pi_bad = P(g->b) / (P(g->b) + P(b->g)) = l``.  Chains start in
their stationary distribution, making every snapshot's expected loss
fraction exactly ``l`` while consecutive probes see bursty correlations —
the variance signal LIA exploits.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.lossmodel.processes import STREAMING_CHUNK, LossProcess
from repro.utils.rng import SeedLike, as_rng


class GilbertProcess(LossProcess):
    """Two-state on/off loss chains, vectorised across links."""

    def __init__(self, stay_bad: float = 0.35):
        if not 0 <= stay_bad < 1:
            raise ValueError(f"stay_bad must be in [0, 1), got {stay_bad}")
        self.stay_bad = float(stay_bad)

    def good_to_bad(self, loss_rates: np.ndarray) -> np.ndarray:
        """P(good -> bad) per link for target average loss rates.

        Valid for targets below the chain's reachable ceiling
        ``1 / (2 - stay_bad)``; :meth:`effective_parameters` handles the
        full [0, 1] range.
        """
        rates = np.minimum(np.asarray(loss_rates, dtype=np.float64), 1.0 - 1e-9)
        leave_bad = 1.0 - self.stay_bad
        return leave_bad * rates / (1.0 - rates)

    def effective_parameters(
        self, loss_rates: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Per-link ``(P(good->bad), P(bad->bad))`` hitting any target rate.

        With ``P(bad->bad)`` fixed the stationary loss tops out at
        ``1 / (1 + (1 - stay_bad))`` (~0.61 at the paper's 0.35) — below
        LLRD2's upper range.  Beyond the ceiling we pin ``P(good->bad)``
        at 1 and lengthen bursts instead: ``P(bad->good) = (1-l)/l`` gives
        stationary loss exactly ``l`` all the way to the absorbing case
        ``l = 1``.
        """
        rates = np.asarray(loss_rates, dtype=np.float64)
        leave_bad = 1.0 - self.stay_bad
        ceiling = 1.0 / (1.0 + leave_bad)
        g2b = np.minimum(self.good_to_bad(rates), 1.0)
        stay = np.full_like(rates, self.stay_bad)
        high = rates > ceiling
        if high.any():
            g2b = np.where(high, 1.0, g2b)
            with np.errstate(divide="ignore", invalid="ignore"):
                leave = np.where(
                    rates > 0, (1.0 - rates) / np.maximum(rates, 1e-12), 1.0
                )
            stay = np.where(high, 1.0 - np.minimum(leave, 1.0), stay)
        return g2b, stay

    def iter_state_chunks(
        self,
        loss_rates: np.ndarray,
        num_probes: int,
        seed: SeedLike = None,
        chunk_size: int = STREAMING_CHUNK,
    ) -> Iterator[np.ndarray]:
        """True chunked realisation, bit-identical to the unchunked one.

        The chain draws its uniforms time-major (one ``num_links`` row
        per transition), so splitting ``rng.random((num_probes - 1,
        num_links))`` into consecutive ``(block, num_links)`` draws
        consumes the identical bitstream — only the chain state crosses
        chunk boundaries.
        """
        rates = self._validated_rates(loss_rates)
        if num_probes <= 0:
            raise ValueError(f"num_probes must be positive, got {num_probes}")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        rng = as_rng(seed)
        g2b, stay = self.effective_parameters(rates)

        def chunks() -> Iterator[np.ndarray]:
            num_links = rates.shape[0]
            current = rng.random(num_links) < rates  # stationary start
            emitted = 0
            first = True
            while emitted < num_probes:
                block = min(chunk_size, num_probes - emitted)
                states = np.empty((num_links, block), dtype=bool)
                start = 0
                if first:
                    states[:, 0] = current
                    start = 1
                    first = False
                uniforms = rng.random((block - start, num_links))
                for t in range(block - start):
                    u = uniforms[t]
                    current_next = np.where(current, u < stay, u < g2b)
                    states[:, start + t] = current_next
                    current = current_next
                yield states
                emitted += block

        return chunks()

    def sample_states(
        self,
        loss_rates: np.ndarray,
        num_probes: int,
        seed: SeedLike = None,
    ) -> np.ndarray:
        return next(
            self.iter_state_chunks(
                loss_rates, num_probes, seed=seed, chunk_size=num_probes
            )
        )

    def burst_length_mean(self) -> float:
        """Expected bad-state sojourn (in probes): 1 / P(bad -> good)."""
        return 1.0 / (1.0 - self.stay_bad)
