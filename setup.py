"""Shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-build-isolation` works through this legacy path;
all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
