"""Online-monitor benchmarks: warm observe latency and update-vs-refactor.

The tentpole claim of the incremental-cache work is that a warm
``OnlineLossMonitor.observe`` whose variance refresh *grows* the kept
column set rides the CGS2 column-add path (plus the reused phase-2 basis
sweep) instead of refactorizing ``R*`` from scratch — O(changed), not
O(rebuild).  These benchmarks measure exactly that, on a synthetic
deployment sized so the factorization dominates:

* congested columns vary with zero-mean mutually *orthogonal* Hadamard
  patterns over the rolling window, so the sample covariance system is
  exactly consistent, phase-1 recovery is exact, and the kept set is a
  deterministic function of the stream — no statistical flakiness;
* phase A streams one full window with ``kept`` congested columns (the
  first warm refresh caches that factorization), phase B activates one
  more column and streams another full window, so the next refresh sees
  a kept set grown by exactly one column;
* the timed observe is that growth refresh: variance solve + reduction +
  factorization + localisation.  The update monitor (default limits)
  absorbs it with one CGS2 offer against the cached basis and one
  ``add_column``; the refactor monitor (limits 0) re-runs the basis
  sweep and a fresh Householder QR.

``test_monitor_observe_update_path`` asserts the >= 10x acceptance ratio
against inline refactor timings; the separate ``*_refactor_path``
benchmark gives the slow path its own baseline entry so CI's regression
gate and the kernel-tier comparison see both.  The steady-state tests
record warm per-snapshot latency percentiles (p50/p99) at 1k and 4k
paths in ``extra_info``; the CI bench-smoke job runs this file under
both ``REPRO_KERNEL_TIER`` settings.
"""

from __future__ import annotations

import copy
import time

import numpy as np
import pytest
from scipy.linalg import hadamard

from benchmarks.conftest import run_once
from repro.monitor.online import OnlineLossMonitor
from repro.probing.snapshot import Snapshot
from repro.topology.graph import Link, Path
from repro.topology.routing import RoutingMatrix


def _synthetic_routing(
    num_paths: int, num_links: int, links_per_path: int, seed: int
) -> RoutingMatrix:
    """A deployment-scale routing matrix without simulating a topology.

    Each path traverses ``links_per_path`` distinct physical links chosen
    uniformly; the fabricated per-path node chains satisfy the ``Path``
    continuity checks while leaving column structure fully random.
    """
    rng = np.random.default_rng(seed)
    paths = []
    node = 0
    for p in range(num_paths):
        columns = np.sort(
            rng.choice(num_links, size=links_per_path, replace=False)
        )
        links = tuple(
            Link(index=int(j), tail=node + i, head=node + i + 1)
            for i, j in enumerate(columns)
        )
        paths.append(
            Path(
                index=p,
                source=links[0].tail,
                dest=links[-1].head,
                links=links,
            )
        )
        node += links_per_path + 1
    return RoutingMatrix.from_paths(paths)


class _Scenario:
    """A warm monitor pair plus the deterministic snapshot stream."""

    def __init__(
        self,
        num_paths: int,
        num_links: int,
        links_per_path: int,
        kept: int,
        window: int,
        seed: int,
        warm_refactor: bool = True,
    ):
        self.routing = _synthetic_routing(
            num_paths, num_links, links_per_path, seed
        )
        if self.routing.num_links <= kept + 1:
            raise AssertionError("alias reduction collapsed too many columns")
        self.window = window
        self.kept = kept
        self._dense = self.routing.to_dense()
        # Zero-mean rows 1..n-1 of the Hadamard matrix are mutually
        # orthogonal over any full window, so distinct congested columns
        # have exactly zero sample covariance and phase 1 recovers their
        # variances exactly: the kept set is deterministic.
        self._hadamard = hadamard(window).astype(np.float64)
        self._amplitudes = {
            c: 0.04 + 0.002 * (c % 5) for c in range(kept)
        }
        self._grown = dict(self._amplitudes)
        self._grown[kept] = 0.05

        # Phase A (one full window, `kept` congested columns), then phase
        # B (one more window, kept + 1).  refresh_interval == window puts
        # the second variance refresh exactly at t == 2 * window, where
        # the rolling window holds one full period of phase B.
        def build(**limits):
            monitor = OnlineLossMonitor(
                self.routing,
                window=window,
                refresh_interval=window,
                localize_always=True,
                **limits,
            )
            for t in range(2 * window):
                monitor.observe(self.snapshot(t))
            return monitor

        self.update_monitor = build()
        self.refactor_monitor = (
            build(downdate_limit=0, update_limit=0) if warm_refactor else None
        )
        self.growth_snapshot = self.snapshot(2 * window)

    def snapshot(self, t: int) -> Snapshot:
        active = self._amplitudes if t < self.window else self._grown
        x = np.zeros(self.routing.num_links)
        for column, amplitude in active.items():
            row = (column % (self.window - 1)) + 1
            sign = self._hadamard[row, t % self.window]
            x[column] = -amplitude * (3.0 + sign) / 2.0
        return Snapshot(
            path_transmission=np.exp(self._dense @ x), num_probes=1000
        )

    def time_observe(self, monitor: OnlineLossMonitor, rounds: int = 3):
        """Best-of-*rounds* timing of the growth observe on a state copy."""
        best = np.inf
        last = None
        for _ in range(rounds):
            state = copy.deepcopy(monitor)
            start = time.perf_counter()
            state.observe(self.growth_snapshot)
            best = min(best, time.perf_counter() - start)
            last = state
        return best, last


@pytest.fixture(scope="session")
def growth_scenario():
    """4096 paths, 254 kept columns growing to 255 at the timed refresh."""
    return _Scenario(
        num_paths=4096,
        num_links=400,
        links_per_path=2,
        kept=254,
        window=256,
        seed=42,
    )


@pytest.fixture(scope="session")
def steady_scenario():
    """1024-path steady-state deployment (no refactor twin needed)."""
    return _Scenario(
        num_paths=1024,
        num_links=300,
        links_per_path=3,
        kept=64,
        window=128,
        seed=7,
        warm_refactor=False,
    )


def _observe_growth(scenario, monitor):
    state = copy.deepcopy(monitor)
    return state, state.observe(scenario.growth_snapshot)


def test_monitor_observe_update_path(benchmark, growth_scenario):
    """Warm observe whose refresh grows the kept set by one column.

    The acceptance ratio of the incremental-factorization work: with the
    update paths on (monitor defaults) this observe must be >= 10x
    faster than the refactor-from-scratch monitor fed the identical
    stream.
    """
    scenario = growth_scenario

    def setup():
        return (copy.deepcopy(scenario.update_monitor),), {}

    benchmark.pedantic(
        lambda m: m.observe(scenario.growth_snapshot),
        setup=setup,
        rounds=3,
        iterations=1,
    )

    t_update, updated = scenario.time_observe(scenario.update_monitor)
    t_refactor, refactored = scenario.time_observe(
        scenario.refactor_monitor, rounds=2
    )
    # The growth refresh rode the incremental paths, not a rebuild.
    assert updated.factorization_updates >= 1
    assert updated.cache_info()["reduction"].updates >= 1
    assert refactored.factorization_updates == 0
    assert refactored.cache_info()["factorization"].misses >= 2
    benchmark.extra_info["update_seconds"] = t_update
    benchmark.extra_info["refactor_seconds"] = t_refactor
    benchmark.extra_info["speedup"] = t_refactor / t_update
    assert t_refactor >= 10.0 * t_update, (
        f"update path {t_update:.4f}s vs refactor {t_refactor:.4f}s: "
        f"only {t_refactor / t_update:.1f}x"
    )


def test_monitor_observe_refactor_path(benchmark, growth_scenario):
    """The same growth observe with the incremental paths disabled.

    Exists as its own benchmark so the baseline gate tracks the slow
    path and ``compare_kernel_tiers.py`` can print the update-vs-
    refactor speedup from the two entries.
    """
    scenario = growth_scenario

    def setup():
        return (copy.deepcopy(scenario.refactor_monitor),), {}

    benchmark.pedantic(
        lambda m: m.observe(scenario.growth_snapshot),
        setup=setup,
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("scale", ["1k", "4k"])
def test_monitor_steady_state_latency(
    benchmark, scale, steady_scenario, growth_scenario
):
    """Warm per-snapshot latency percentiles at 1k/4k-path scale.

    Streams 16 further snapshots into a copy of the warm monitor and
    records p50/p99 observe latency in ``extra_info`` — the
    "sub-millisecond online monitoring" number of the README, per
    kernel tier (CI runs this file under both tiers).
    """
    scenario = steady_scenario if scale == "1k" else growth_scenario
    monitor = copy.deepcopy(scenario.update_monitor)
    start_t = 2 * scenario.window
    snapshots = [scenario.snapshot(start_t + i) for i in range(16)]

    def stream():
        latencies = []
        for snap in snapshots:
            t0 = time.perf_counter()
            monitor.observe(snap)
            latencies.append(time.perf_counter() - t0)
        return np.asarray(latencies)

    latencies = run_once(benchmark, stream)
    benchmark.extra_info["p50_ms"] = float(np.percentile(latencies, 50) * 1e3)
    benchmark.extra_info["p99_ms"] = float(np.percentile(latencies, 99) * 1e3)
    benchmark.extra_info["num_paths"] = scenario.routing.num_paths
    benchmark.extra_info["kept_columns"] = scenario.kept
    assert monitor.is_warm
