"""Shared benchmark fixtures.

Experiment benchmarks run one round by design: each experiment is itself
a repetition-averaged measurement, and regenerating a figure twice adds
time without adding information.  The micro-benchmarks (core kernels)
use pytest-benchmark's normal calibration.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import prepare_topology, scale_params
from repro.probing import ProberConfig, ProbingSimulator


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark *func* with a single round/iteration."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


@pytest.fixture(scope="session")
def bench_tree():
    """A small tree topology with a pre-simulated campaign."""
    params = scale_params("tiny")
    prepared = prepare_topology("tree", params.sized(tree_nodes=150), 7)
    config = ProberConfig(probes_per_snapshot=400, congestion_probability=0.1)
    simulator = ProbingSimulator(
        prepared.paths, prepared.topology.network.num_links, config=config
    )
    campaign = simulator.run_campaign(21, prepared.routing, seed=8)
    return prepared, simulator, campaign


@pytest.fixture(scope="session")
def bench_mesh():
    """A mesh topology at the scale where the blocked kernels matter.

    ~1.5k paths x ~400 virtual links: large enough that phase-2
    reduction and the reduced solve are LAPACK-bound rather than
    fixture-noise-bound, small enough to simulate once per session.
    """
    params = scale_params("small")
    prepared = prepare_topology(
        "barabasi-albert", params.sized(mesh_nodes=400, num_end_hosts=40), 11
    )
    config = ProberConfig(probes_per_snapshot=600, congestion_probability=0.1)
    simulator = ProbingSimulator(
        prepared.paths, prepared.topology.network.num_links, config=config
    )
    campaign = simulator.run_campaign(33, prepared.routing, seed=5)
    return prepared, simulator, campaign
