"""Ablation benchmarks over the design choices DESIGN.md calls out.

Accuracy ablations live in ``repro.experiments.ablations`` (and are
exercised here through the harness); these benchmarks additionally time
the alternatives so the speed side of each trade-off is on record:

* packet vs flow simulator fidelity;
* Gilbert vs Bernoulli loss processes;
* negative-covariance equations dropped vs kept.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.variance import estimate_link_variances
from repro.experiments import EXPERIMENTS
from repro.lossmodel import BernoulliProcess, GilbertProcess
from repro.probing import ProberConfig, ProbingSimulator


def test_accuracy_ablation_table(benchmark):
    result = run_once(benchmark, EXPERIMENTS["ablations"], scale="tiny", seed=0)
    assert len(result.table) >= 8


@pytest.mark.parametrize("fidelity", ["packet", "flow"])
def test_simulator_fidelity(benchmark, bench_tree, fidelity):
    prepared, _, _ = bench_tree
    config = ProberConfig(probes_per_snapshot=400, fidelity=fidelity)
    simulator = ProbingSimulator(
        prepared.paths,
        prepared.topology.network.num_links,
        config=config,
    )
    snapshot = benchmark(simulator.run_snapshot, seed=3)
    assert snapshot.num_paths == prepared.routing.num_paths


@pytest.mark.parametrize(
    "process", [GilbertProcess(), BernoulliProcess()], ids=["gilbert", "bernoulli"]
)
def test_loss_process_speed(benchmark, process):
    rates = np.full(300, 0.05)
    states = benchmark(process.sample_states, rates, 500, 42)
    assert states.shape == (300, 500)


@pytest.mark.parametrize("drop", [True, False], ids=["drop-neg", "keep-neg"])
def test_negative_covariance_handling(benchmark, bench_tree, drop):
    prepared, _, campaign = bench_tree
    training, _ = campaign.split_training_target()
    estimate = benchmark(
        estimate_link_variances, training, drop_negative=drop
    )
    assert np.isfinite(estimate.variances).all()
