"""Benchmarks of the parallel sharded runner itself.

Times the fig8 sweep (the widest trial grid at tiny scale) through the
sequential backend, and the cache-hit path that production sweeps lean
on: a warmed cache must make a re-run dramatically cheaper than
executing, because sweep iteration is exactly re-running with overlap.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import EXPERIMENTS
from repro.runner import ParallelRunner


def test_runner_sequential_fig8(benchmark):
    runner = ParallelRunner(n_jobs=1)
    result = run_once(
        benchmark, EXPERIMENTS["fig8"], scale="tiny", seed=0, runner=runner
    )
    assert runner.last_stats.trials_executed == runner.last_stats.trials_total
    assert result.data["p_sweep"]


def test_runner_cache_hit_replay(benchmark, tmp_path):
    warm = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
    EXPERIMENTS["fig8"](scale="tiny", seed=0, runner=warm)
    assert warm.last_stats.trials_executed > 0

    replay = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
    run_once(
        benchmark, EXPERIMENTS["fig8"], scale="tiny", seed=0, runner=replay
    )
    assert replay.last_stats.trials_executed == 0
    assert replay.last_stats.trials_cached == replay.last_stats.trials_total
