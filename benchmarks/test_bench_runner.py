"""Benchmarks of the parallel sharded runner itself.

Times the fig8 sweep (the widest trial grid at tiny scale) through the
sequential backend, the cache-hit path that production sweeps lean on
(a warmed cache must make a re-run dramatically cheaper than executing,
because sweep iteration is exactly re-running with overlap), the thread
backend (BLAS-bound trials release the GIL), and the streaming JSONL
store (the spill-to-disk overhead buys flat peak RSS — see
``scripts/bench_store_memory.py`` for the RSS side of the trade).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import EXPERIMENTS
from repro.runner import ParallelRunner


def test_runner_sequential_fig8(benchmark):
    runner = ParallelRunner(n_jobs=1)
    result = run_once(
        benchmark, EXPERIMENTS["fig8"], scale="tiny", seed=0, runner=runner
    )
    assert runner.last_stats.trials_executed == runner.last_stats.trials_total
    assert result.data["p_sweep"]


def test_runner_thread_backend_fig8(benchmark):
    runner = ParallelRunner(n_jobs=2, backend="thread")
    result = run_once(
        benchmark, EXPERIMENTS["fig8"], scale="tiny", seed=0, runner=runner
    )
    assert runner.last_stats.trials_executed == runner.last_stats.trials_total
    assert result.data["p_sweep"]


def test_runner_streamed_store_fig8(benchmark, tmp_path):
    runner = ParallelRunner(n_jobs=1, store_dir=tmp_path)
    result = run_once(
        benchmark, EXPERIMENTS["fig8"], scale="tiny", seed=0, runner=runner
    )
    assert runner.last_stats.trials_executed == runner.last_stats.trials_total
    assert result.data["p_sweep"]
    assert list(tmp_path.glob("fig8-*.jsonl"))


def test_runner_cache_hit_replay(benchmark, tmp_path):
    warm = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
    EXPERIMENTS["fig8"](scale="tiny", seed=0, runner=warm)
    assert warm.last_stats.trials_executed > 0

    replay = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
    run_once(
        benchmark, EXPERIMENTS["fig8"], scale="tiny", seed=0, runner=replay
    )
    assert replay.last_stats.trials_executed == 0
    assert replay.last_stats.trials_cached == replay.last_stats.trials_total
