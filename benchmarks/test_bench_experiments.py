"""One benchmark per paper table/figure: regenerate it, time it.

Each benchmark calls the corresponding experiment runner at tiny scale
(the harness itself already averages over repetitions) and asserts the
qualitative shape the paper reports, so `pytest benchmarks/
--benchmark-only` both times and *checks* every artefact:

=========  ======================================================
fig3       variance monotone in mean loss (Assumption S.3)
fig5       LIA beats SCFS on trees, improves with m
fig6       error CDFs concentrated near zero
fig7       congested links never outnumber R* columns
fig8       graceful degradation in p; mild in S
fig9       cross-validation consistency high
table2     DR high / FPR low across the six mesh topologies
table3     congested links lean inter-AS under boosted peering
duration   congestion runs are short
timing     A built once; per-snapshot inference fast
=========  ======================================================
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import EXPERIMENTS


def test_fig3_mean_variance(benchmark):
    result = run_once(benchmark, EXPERIMENTS["fig3"], scale="tiny", seed=0)
    assert result.data["spearman"] > 0.5


def test_fig5_tree_accuracy(benchmark):
    result = run_once(benchmark, EXPERIMENTS["fig5"], scale="tiny", seed=0)
    best_m = max(result.data["grid"])
    assert np.mean(result.data["lia_dr"][best_m]) >= np.mean(
        result.data["scfs_dr"]
    )
    assert np.mean(result.data["lia_fpr"][best_m]) <= np.mean(
        result.data["scfs_fpr"]
    )


def test_fig6_error_cdfs(benchmark):
    result = run_once(benchmark, EXPERIMENTS["fig6"], scale="tiny", seed=0)
    assert result.data["abs_cdf"].at(0.05) > 0.9


def test_fig7_rank_ratio(benchmark):
    result = run_once(benchmark, EXPERIMENTS["fig7"], scale="tiny", seed=0)
    ratios = [r for entry in result.data.values() for r in entry["ratios"]]
    assert np.mean(ratios) < 1.2


def test_fig8_sweeps(benchmark):
    result = run_once(benchmark, EXPERIMENTS["fig8"], scale="tiny", seed=0)
    p_sweep = result.data["p_sweep"]
    assert all(np.mean(v["dr"]) > 0.5 for v in p_sweep.values())


def test_fig9_cross_validation(benchmark):
    result = run_once(benchmark, EXPERIMENTS["fig9"], scale="tiny", seed=0)
    best = max(result.data["rates"])
    assert np.mean(result.data["rates"][best]) > 0.7


def test_table2_mesh_accuracy(benchmark):
    result = run_once(benchmark, EXPERIMENTS["table2"], scale="tiny", seed=0)
    for kind, entry in result.data.items():
        assert np.mean(entry["dr"]) > 0.5, kind


def test_table3_as_location(benchmark):
    result = run_once(benchmark, EXPERIMENTS["table3"], scale="tiny", seed=0)
    fractions = result.data["inter_fractions"]
    observed = [np.mean(v) for v in fractions.values() if v]
    assert observed, "no congested links located at any threshold"


def test_duration(benchmark):
    result = run_once(benchmark, EXPERIMENTS["duration"], scale="tiny", seed=0)
    lengths = result.data["inferred_lengths"]
    if lengths:
        assert np.mean(np.asarray(lengths) <= 2) > 0.5


def test_timing(benchmark):
    result = run_once(benchmark, EXPERIMENTS["timing"], scale="tiny", seed=0)
    assert result.data["infer"] < 5.0  # per-snapshot inference stays fast
