"""Benchmarks of the discrete-event packet simulator (repro.netsim.sim).

Two granularities: the raw event-loop throughput of one simulated
snapshot (packets/sec and events/sec, recorded in ``extra_info``), and
the end-to-end cost of a congestion-traffic campaign through the
Scenario pipeline — the number the congestion-vs-analytic experiment's
wall-clock budget is made of.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.api import EstimatorSpec, Scenario
from repro.experiments.base import scale_params
from repro.lossmodel import CongestionLossProcess
from repro.netsim.sim import CongestionSimulator, TrafficConfig

#: A 12-link chain-and-branch layout: 8 paths, every link active.
PATHS = [
    (0, 1, 2),
    (0, 1, 3),
    (0, 4, 5),
    (0, 4, 6),
    (7, 8),
    (7, 9),
    (10, 11),
    (10, 2),
]
NUM_LINKS = 12


@pytest.fixture(scope="module")
def simulator():
    return CongestionSimulator(
        PATHS, NUM_LINKS, TrafficConfig(kind="congestion")
    )


@pytest.fixture(scope="module")
def rates():
    values = np.zeros(NUM_LINKS)
    values[[1, 5, 8]] = (0.05, 0.1, 0.03)
    return values


def test_netsim_snapshot_throughput(benchmark, simulator, rates):
    """One 600-probe snapshot: the simulator's core event-loop cost."""
    trace = benchmark(simulator.run_snapshot, rates, 600, 17)
    assert trace.drops.shape == (NUM_LINKS, 600)
    assert trace.probe_drops > 0
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["events_per_sec"] = trace.events / elapsed
    benchmark.extra_info["packets_per_sec"] = (
        trace.packets_forwarded / elapsed
    )


def test_netsim_loss_process_snapshot(benchmark, rates):
    """The LossProcess seam: sample_states including the fallback rows."""
    process = CongestionLossProcess(PATHS, NUM_LINKS)
    states = benchmark(process.sample_states, rates, 400, 23)
    assert states.shape == (NUM_LINKS, 400)


def test_congestion_campaign_end_to_end(benchmark):
    """A full congestion-traffic Scenario run (tiny sizing), one round."""
    scenario = Scenario(
        topology="tree",
        params=scale_params("tiny").sized(
            tree_nodes=25, num_end_hosts=6, snapshots=5, probes=150
        ),
        num_training=5,
        traffic=TrafficConfig(kind="congestion"),
        estimators=(EstimatorSpec("lia"),),
    )
    outcome = run_once(benchmark, scenario.run, seed=0)
    assert outcome.evaluation("lia").detection.detection_rate > 0
