"""Micro-benchmarks of the core kernels (Section 6.4 analogue).

These time the stages the paper discusses: building the augmented matrix
(once per network), phase-1 variance learning, phase-2 reduction and the
reduced solve.  pytest-benchmark's calibration applies (they are fast).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.augmented import intersecting_pairs
from repro.core.lia import LossInferenceAlgorithm
from repro.core.reduction import reduce_to_full_rank, solve_reduced_system
from repro.core.variance import estimate_link_variances


def test_build_intersecting_pairs(benchmark, bench_tree):
    prepared, _, _ = bench_tree
    pairs = benchmark(intersecting_pairs, prepared.routing.matrix)
    assert pairs.num_links == prepared.routing.num_links


@pytest.mark.parametrize("method", ["wls", "lsmr", "normal"])
def test_variance_learning(benchmark, bench_tree, method):
    prepared, _, campaign = bench_tree
    training, _ = campaign.split_training_target()
    pairs = intersecting_pairs(prepared.routing.matrix)
    estimate = benchmark(
        estimate_link_variances, training, method=method, pairs=pairs
    )
    assert estimate.num_links == prepared.routing.num_links


@pytest.mark.parametrize("strategy", ["threshold", "gap", "paper", "greedy"])
def test_reduction_strategies(benchmark, bench_tree, strategy):
    prepared, _, campaign = bench_tree
    training, _ = campaign.split_training_target()
    estimate = estimate_link_variances(training)
    kwargs = {}
    if strategy == "threshold":
        kwargs["variance_cutoff"] = 16 * 0.002 / 400
    result = benchmark(
        reduce_to_full_rank,
        prepared.routing.matrix,
        estimate.variances,
        strategy,
        **kwargs,
    )
    sub = prepared.routing.to_dense()[:, result.kept_columns]
    if result.num_kept:
        assert np.linalg.matrix_rank(sub) == result.num_kept


def test_reduced_solve(benchmark, bench_tree):
    prepared, _, campaign = bench_tree
    training, target = campaign.split_training_target()
    estimate = estimate_link_variances(training)
    reduction = reduce_to_full_rank(
        prepared.routing.matrix,
        estimate.variances,
        "threshold",
        variance_cutoff=16 * 0.002 / 400,
    )
    y = target.path_log_rates()
    x = benchmark(
        solve_reduced_system, prepared.routing.matrix, y, reduction
    )
    assert (x <= 0).all()


def test_per_snapshot_inference(benchmark, bench_tree):
    """The paper's headline: after A is built, inference is sub-second."""
    prepared, _, campaign = bench_tree
    training, target = campaign.split_training_target()
    lia = LossInferenceAlgorithm(prepared.routing)
    estimate = lia.learn_variances(training)  # warm: A cached
    result = benchmark(lia.infer, target, estimate)
    assert result.num_links == prepared.routing.num_links
