"""Micro-benchmarks of the core kernels (Section 6.4 analogue).

These time the stages the paper discusses: building the augmented matrix
(once per network), phase-1 variance learning, phase-2 reduction and the
reduced solve.  pytest-benchmark's calibration applies (they are fast).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.augmented import intersecting_pairs
from repro.core.lia import LossInferenceAlgorithm
from repro.core.linalg import greedy_independent_columns, householder_qr
from repro.core.reduction import reduce_to_full_rank, solve_reduced_system
from repro.core.variance import estimate_link_variances


def test_build_intersecting_pairs(benchmark, bench_tree):
    prepared, _, _ = bench_tree
    pairs = benchmark(intersecting_pairs, prepared.routing.matrix)
    assert pairs.num_links == prepared.routing.num_links


@pytest.mark.parametrize("method", ["wls", "lsmr", "normal", "sparse", "cg"])
def test_variance_learning(benchmark, bench_tree, method):
    prepared, _, campaign = bench_tree
    training, _ = campaign.split_training_target()
    pairs = intersecting_pairs(prepared.routing.matrix)
    estimate = benchmark(
        estimate_link_variances, training, method=method, pairs=pairs
    )
    assert estimate.num_links == prepared.routing.num_links


@pytest.mark.parametrize("strategy", ["threshold", "gap", "paper", "greedy"])
def test_reduction_strategies(benchmark, bench_tree, strategy):
    prepared, _, campaign = bench_tree
    training, _ = campaign.split_training_target()
    estimate = estimate_link_variances(training)
    kwargs = {}
    if strategy == "threshold":
        kwargs["variance_cutoff"] = 16 * 0.002 / 400
    result = benchmark(
        reduce_to_full_rank,
        prepared.routing.matrix,
        estimate.variances,
        strategy,
        **kwargs,
    )
    sub = prepared.routing.to_dense()[:, result.kept_columns]
    if result.num_kept:
        assert np.linalg.matrix_rank(sub) == result.num_kept


def test_reduced_solve(benchmark, bench_tree):
    prepared, _, campaign = bench_tree
    training, target = campaign.split_training_target()
    estimate = estimate_link_variances(training)
    reduction = reduce_to_full_rank(
        prepared.routing.matrix,
        estimate.variances,
        "threshold",
        variance_cutoff=16 * 0.002 / 400,
    )
    y = target.path_log_rates()
    x = benchmark(
        solve_reduced_system, prepared.routing.matrix, y, reduction
    )
    assert (x <= 0).all()


def test_per_snapshot_inference(benchmark, bench_tree):
    """The paper's headline: after A is built, inference is sub-second."""
    prepared, _, campaign = bench_tree
    training, target = campaign.split_training_target()
    lia = LossInferenceAlgorithm(prepared.routing)
    estimate = lia.learn_variances(training)  # warm: A cached
    result = benchmark(lia.infer, target, estimate)
    assert result.num_links == prepared.routing.num_links


# -- mesh-scale kernels (the blocked/reuse-aware hot path) ----------------------


@pytest.fixture(scope="module")
def mesh_estimate(bench_mesh):
    prepared, _, campaign = bench_mesh
    training, _ = campaign.split_training_target()
    return estimate_link_variances(training)


def test_mesh_reduction_paper(benchmark, bench_mesh, mesh_estimate):
    """Phase-2 paper reduction: one basis sweep vs the seed's SVD search."""
    prepared, _, _ = bench_mesh
    result = benchmark(
        reduce_to_full_rank,
        prepared.routing.matrix,
        mesh_estimate.variances,
        "paper",
    )
    sub = prepared.routing.to_dense()[:, result.kept_columns]
    assert np.linalg.matrix_rank(sub) == result.num_kept


def test_mesh_reduced_solve_warm(benchmark, bench_mesh, mesh_estimate):
    """Reduced solve with a warm engine: two triangular-cost operations.

    The seed re-ran ``np.linalg.lstsq`` per snapshot; the engine pays one
    factorization per kept-column set and this bench measures the
    marginal (cached) per-snapshot solve.
    """
    prepared, _, campaign = bench_mesh
    _, target = campaign.split_training_target()
    lia = LossInferenceAlgorithm(prepared.routing)
    lia.infer(target, mesh_estimate)  # warm: reduction memo + factorization
    result = benchmark(lia.infer, target, mesh_estimate)
    assert result.num_links == prepared.routing.num_links


def test_mesh_infer_batch(benchmark, bench_mesh, mesh_estimate):
    """A 16-snapshot window as one multi-RHS solve."""
    prepared, _, campaign = bench_mesh
    tail = campaign.snapshots[-16:]
    lia = LossInferenceAlgorithm(prepared.routing)
    lia.infer(tail[0], mesh_estimate)  # warm
    results = benchmark(lia.infer_batch, tail, mesh_estimate)
    assert len(results) == len(tail)


def test_mesh_infer_loop_warm(benchmark, bench_mesh, mesh_estimate):
    """The same 16 snapshots as per-snapshot calls (infer_batch's foil)."""
    prepared, _, campaign = bench_mesh
    tail = campaign.snapshots[-16:]
    lia = LossInferenceAlgorithm(prepared.routing)
    lia.infer(tail[0], mesh_estimate)  # warm

    def loop():
        return [lia.infer(snapshot, mesh_estimate) for snapshot in tail]

    results = benchmark(loop)
    assert len(results) == len(tail)


def test_mesh_householder_qr(benchmark, bench_mesh, mesh_estimate):
    """Blocked Householder QR on the mesh's kept-column block."""
    prepared, _, _ = bench_mesh
    reduction = reduce_to_full_rank(
        prepared.routing.matrix, mesh_estimate.variances, "paper"
    )
    R_star = prepared.routing.to_dense()[:, reduction.kept_columns]
    Q, R = benchmark(householder_qr, R_star)
    assert np.allclose(Q @ R, R_star, atol=1e-8)


def test_mesh_greedy_independent_columns(benchmark, bench_mesh, mesh_estimate):
    """Batched-MGS greedy column scan over the full mesh matrix."""
    prepared, _, _ = bench_mesh
    descending = np.argsort(mesh_estimate.variances)[::-1]
    kept = benchmark(
        greedy_independent_columns, prepared.routing.to_sparse(), descending
    )
    assert len(kept) > 0
