"""Micro-benchmarks of the core kernels (Section 6.4 analogue).

These time the stages the paper discusses: building the augmented matrix
(once per network), phase-1 variance learning, phase-2 reduction and the
reduced solve.  pytest-benchmark's calibration applies (they are fast).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.augmented import intersecting_pairs
from repro.core.lia import LossInferenceAlgorithm
from repro.core.linalg import greedy_independent_columns, householder_qr
from repro.core.reduction import reduce_to_full_rank, solve_reduced_system
from repro.core.variance import estimate_link_variances


def test_build_intersecting_pairs(benchmark, bench_tree):
    prepared, _, _ = bench_tree
    pairs = benchmark(intersecting_pairs, prepared.routing.matrix)
    assert pairs.num_links == prepared.routing.num_links


@pytest.mark.parametrize("method", ["wls", "lsmr", "normal", "sparse", "cg"])
def test_variance_learning(benchmark, bench_tree, method):
    prepared, _, campaign = bench_tree
    training, _ = campaign.split_training_target()
    pairs = intersecting_pairs(prepared.routing.matrix)
    estimate = benchmark(
        estimate_link_variances, training, method=method, pairs=pairs
    )
    assert estimate.num_links == prepared.routing.num_links


@pytest.mark.parametrize("strategy", ["threshold", "gap", "paper", "greedy"])
def test_reduction_strategies(benchmark, bench_tree, strategy):
    prepared, _, campaign = bench_tree
    training, _ = campaign.split_training_target()
    estimate = estimate_link_variances(training)
    kwargs = {}
    if strategy == "threshold":
        kwargs["variance_cutoff"] = 16 * 0.002 / 400
    result = benchmark(
        reduce_to_full_rank,
        prepared.routing.matrix,
        estimate.variances,
        strategy,
        **kwargs,
    )
    sub = prepared.routing.to_dense()[:, result.kept_columns]
    if result.num_kept:
        assert np.linalg.matrix_rank(sub) == result.num_kept


def test_reduced_solve(benchmark, bench_tree):
    prepared, _, campaign = bench_tree
    training, target = campaign.split_training_target()
    estimate = estimate_link_variances(training)
    reduction = reduce_to_full_rank(
        prepared.routing.matrix,
        estimate.variances,
        "threshold",
        variance_cutoff=16 * 0.002 / 400,
    )
    y = target.path_log_rates()
    x = benchmark(
        solve_reduced_system, prepared.routing.matrix, y, reduction
    )
    assert (x <= 0).all()


def test_per_snapshot_inference(benchmark, bench_tree):
    """The paper's headline: after A is built, inference is sub-second."""
    prepared, _, campaign = bench_tree
    training, target = campaign.split_training_target()
    lia = LossInferenceAlgorithm(prepared.routing)
    estimate = lia.learn_variances(training)  # warm: A cached
    result = benchmark(lia.infer, target, estimate)
    assert result.num_links == prepared.routing.num_links


# -- mesh-scale kernels (the blocked/reuse-aware hot path) ----------------------


@pytest.fixture(scope="module")
def mesh_estimate(bench_mesh):
    prepared, _, campaign = bench_mesh
    training, _ = campaign.split_training_target()
    return estimate_link_variances(training)


def test_mesh_reduction_paper(benchmark, bench_mesh, mesh_estimate):
    """Phase-2 paper reduction: one basis sweep vs the seed's SVD search."""
    prepared, _, _ = bench_mesh
    result = benchmark(
        reduce_to_full_rank,
        prepared.routing.matrix,
        mesh_estimate.variances,
        "paper",
    )
    sub = prepared.routing.to_dense()[:, result.kept_columns]
    assert np.linalg.matrix_rank(sub) == result.num_kept


def test_mesh_reduced_solve_warm(benchmark, bench_mesh, mesh_estimate):
    """Reduced solve with a warm engine: two triangular-cost operations.

    The seed re-ran ``np.linalg.lstsq`` per snapshot; the engine pays one
    factorization per kept-column set and this bench measures the
    marginal (cached) per-snapshot solve.
    """
    prepared, _, campaign = bench_mesh
    _, target = campaign.split_training_target()
    lia = LossInferenceAlgorithm(prepared.routing)
    lia.infer(target, mesh_estimate)  # warm: reduction memo + factorization
    result = benchmark(lia.infer, target, mesh_estimate)
    assert result.num_links == prepared.routing.num_links


def test_mesh_infer_batch(benchmark, bench_mesh, mesh_estimate):
    """A 16-snapshot window as one multi-RHS solve."""
    prepared, _, campaign = bench_mesh
    tail = campaign.snapshots[-16:]
    lia = LossInferenceAlgorithm(prepared.routing)
    lia.infer(tail[0], mesh_estimate)  # warm
    results = benchmark(lia.infer_batch, tail, mesh_estimate)
    assert len(results) == len(tail)


def test_mesh_infer_loop_warm(benchmark, bench_mesh, mesh_estimate):
    """The same 16 snapshots as per-snapshot calls (infer_batch's foil)."""
    prepared, _, campaign = bench_mesh
    tail = campaign.snapshots[-16:]
    lia = LossInferenceAlgorithm(prepared.routing)
    lia.infer(tail[0], mesh_estimate)  # warm

    def loop():
        return [lia.infer(snapshot, mesh_estimate) for snapshot in tail]

    results = benchmark(loop)
    assert len(results) == len(tail)


def test_mesh_householder_qr(benchmark, bench_mesh, mesh_estimate):
    """Blocked Householder QR on the mesh's kept-column block."""
    prepared, _, _ = bench_mesh
    reduction = reduce_to_full_rank(
        prepared.routing.matrix, mesh_estimate.variances, "paper"
    )
    R_star = prepared.routing.to_dense()[:, reduction.kept_columns]
    Q, R = benchmark(householder_qr, R_star)
    assert np.allclose(Q @ R, R_star, atol=1e-8)


def test_mesh_greedy_independent_columns(benchmark, bench_mesh, mesh_estimate):
    """Batched-MGS greedy column scan over the full mesh matrix."""
    prepared, _, _ = bench_mesh
    descending = np.argsort(mesh_estimate.variances)[::-1]
    kept = benchmark(
        greedy_independent_columns, prepared.routing.to_sparse(), descending
    )
    assert len(kept) > 0


# -- campaign-scale forest: block-diagonal batched phase-2 ----------------------


@pytest.fixture(scope="module")
def bench_forest():
    """512 independent 31-node trees, fitted and ready for phase-2.

    The campaign-scale shape: thousands of trees whose individual solves
    are far too small to saturate BLAS, so the Python dispatch around
    each one dominates a loop.  Fitting (phase 1) happens here, once;
    the benches below time only the phase-2 inference dispatch.
    """
    from repro.core.lia import infer_many
    from repro.experiments.base import prepare_topology, scale_params
    from repro.probing import MeasurementCampaign, ProberConfig, ProbingSimulator
    from repro.utils.rng import derive_seed

    params = scale_params("tiny").sized(tree_nodes=31)
    runs = []
    for i in range(512):
        prepared = prepare_topology("tree", params, derive_seed(7, 100 + i))
        simulator = ProbingSimulator(
            prepared.paths,
            prepared.topology.network.num_links,
            config=ProberConfig(
                probes_per_snapshot=200, congestion_probability=0.15
            ),
        )
        campaign = simulator.run_campaign(
            9, prepared.routing, seed=derive_seed(7, 1000 + i)
        )
        training = MeasurementCampaign(
            routing=campaign.routing, snapshots=campaign.snapshots[:-1]
        )
        lia = LossInferenceAlgorithm(prepared.routing)
        estimate = lia.learn_variances(training)
        runs.append((lia, campaign.snapshots[-1], estimate))
    infer_many(runs, mode="loop")  # warm: per-tree factorizations
    infer_many(runs, mode="packed")  # warm: the packed forest plan
    return runs


def test_forest_infer_loop_warm(benchmark, bench_forest):
    """512 per-tree engine solves, the batched mode's foil."""
    from repro.core.lia import infer_many

    results = benchmark(infer_many, bench_forest, mode="loop")
    assert len(results) == 512


def test_forest_infer_batched(benchmark, bench_forest):
    """The same 512 trees as one block-diagonal packed solve."""
    from repro.core.lia import infer_many

    results = benchmark(infer_many, bench_forest, mode="packed")
    assert len(results) == 512


# -- kernel-tier microbenches (REPRO_KERNEL_TIER picks numpy vs numba) ----------
#
# Each sweep repeats one registry kernel over many campaign-scale-small
# inputs, so per-iteration interpreter overhead — exactly what the numba
# tier removes — dominates the numpy tier's time.  CI runs this file once
# per tier and scripts/compare_kernel_tiers.py reports the speedups.


@pytest.fixture(scope="module")
def kernel_inputs():
    from repro.core.kernels import get_kernels

    rng = np.random.default_rng(17)
    triangulars = [
        (np.triu(rng.standard_normal((48, 48))) + 8.0 * np.eye(48),
         rng.standard_normal(48))
        for _ in range(256)
    ]
    basis = np.linalg.qr(rng.standard_normal((300, 24)))[0].copy(order="F")
    offers = [rng.standard_normal(300) for _ in range(256)]
    q, r = np.linalg.qr(rng.standard_normal((200, 40)))
    panels = [rng.standard_normal((128, 16)) for _ in range(128)]
    # one call per kernel up front so a numba tier pays its JIT cost
    # outside the timed region
    kern = get_kernels()
    kern.back_substitution(*triangulars[0], 1e-12)
    kern.cgs2_project(basis, 24, offers[0].copy())
    kern.givens_downdate(r.copy(), q.copy(), 0)
    panel = panels[0].copy()
    kern.householder_panel(panel, np.zeros_like(panel), np.zeros(16), 0, 16)
    return triangulars, basis, offers, (q, r), panels


def test_kernel_back_substitution_sweep(benchmark, kernel_inputs):
    from repro.core.kernels import get_kernels

    triangulars = kernel_inputs[0]
    kern = get_kernels()

    def sweep():
        return sum(kern.back_substitution(U, b, 1e-12)[0] for U, b in triangulars)

    assert np.isfinite(benchmark(sweep))


def test_kernel_cgs2_sweep(benchmark, kernel_inputs):
    from repro.core.kernels import get_kernels

    _, basis, offers, _, _ = kernel_inputs
    kern = get_kernels()

    def sweep():
        return sum(
            kern.cgs2_project(basis, 24, v.copy())[0] for v in offers
        )

    assert np.isfinite(benchmark(sweep))


def test_kernel_givens_downdate_sweep(benchmark, kernel_inputs):
    from repro.core.kernels import get_kernels

    q, r = kernel_inputs[3]
    kern = get_kernels()

    def sweep():
        for _ in range(64):
            kern.givens_downdate(r.copy(), q.copy(), 0)

    benchmark(sweep)


def test_kernel_householder_panel_sweep(benchmark, kernel_inputs):
    from repro.core.kernels import get_kernels

    panels = kernel_inputs[4]
    kern = get_kernels()

    def sweep():
        acc = 0.0
        for panel in panels:
            work = panel.copy()
            V = np.zeros_like(work)
            betas = np.zeros(work.shape[1])
            T = kern.householder_panel(work, V, betas, 0, work.shape[1])
            acc += T[0, 0]
        return acc

    assert np.isfinite(benchmark(sweep))
