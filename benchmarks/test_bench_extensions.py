"""Benchmarks of the extension subsystems (delay tomography, monitor)."""

from __future__ import annotations

import pytest

from repro.delay import DelayInferenceAlgorithm, DelayProbingSimulator
from repro.monitor import OnlineLossMonitor
from repro.probing import ProbingSimulator


@pytest.fixture(scope="module")
def delay_campaign(bench_tree):
    prepared, _, _ = bench_tree
    simulator = DelayProbingSimulator(
        prepared.paths, prepared.topology.network.num_links, seed=2
    )
    campaign = simulator.run_campaign(21, prepared.routing, seed=3)
    return prepared, campaign


def test_delay_variance_learning(benchmark, delay_campaign):
    prepared, campaign = delay_campaign
    training, _ = campaign.split_training_target()
    algorithm = DelayInferenceAlgorithm(prepared.routing)
    algorithm.pairs  # warm the cache, as a service would
    estimate = benchmark(algorithm.learn_variances, training)
    assert estimate.num_links == prepared.routing.num_links


def test_delay_inference(benchmark, delay_campaign):
    prepared, campaign = delay_campaign
    training, target = campaign.split_training_target()
    algorithm = DelayInferenceAlgorithm(prepared.routing)
    estimate = algorithm.learn_variances(training)
    result = benchmark(algorithm.infer, target, estimate)
    assert result.delay_deviations.shape == (prepared.routing.num_links,)


def test_monitor_steady_state_throughput(benchmark, bench_tree):
    """Per-snapshot cost of a warm monitor (screen + localise)."""
    prepared, simulator, campaign = bench_tree
    monitor = OnlineLossMonitor(
        prepared.routing, window=10, refresh_interval=5, localize_always=True
    )
    for snapshot in campaign.snapshots[:15]:
        monitor.observe(snapshot)
    remaining = iter(campaign.snapshots[15:] * 50)

    def feed_one():
        return monitor.observe(next(remaining))

    report = benchmark.pedantic(feed_one, rounds=20, iterations=1)
    assert report.time_index > 0
