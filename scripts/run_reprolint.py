#!/usr/bin/env python
"""Run the repro.analysis lint engine — the CI entry point.

Equivalent to ``repro lint`` but importable straight from a checkout
(the script prepends ``src/`` to ``sys.path`` when repro is not
installed), so the CI lint job and pre-commit hooks do not depend on an
editable install.

Usage::

    python scripts/run_reprolint.py src
    python scripts/run_reprolint.py --format json src scripts examples
    python scripts/run_reprolint.py --summary-file "$GITHUB_STEP_SUMMARY" src

Exit status: 0 when every finding is suppressed or absent, 1 when
unsuppressed findings remain, 2 on usage errors (missing paths,
unknown rules).
"""

from __future__ import annotations

import sys
from pathlib import Path


def main(argv=None) -> int:
    try:
        from repro.analysis.cli import main as lint_main
    except ImportError:
        src = Path(__file__).resolve().parents[1] / "src"
        sys.path.insert(0, str(src))
        from repro.analysis.cli import main as lint_main
    return lint_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
