#!/usr/bin/env python
"""Compare two JSONL result stores trial by trial.

The runner's determinism contract says payloads are seed-for-seed
identical across execution backends; this script checks it on disk.
Each argument is a ``--store-dir`` spill file (or a directory holding
exactly one, or one per ``--experiment`` prefix).  Records are matched
by trial ``index`` — *arrival* order legitimately differs between
backends, so the files are compared as maps, not byte streams — and
each payload must match byte for byte after canonical re-encoding.

Usage::

    python scripts/diff_result_stores.py /tmp/serial /tmp/remote \
        [--experiment fig5]

Exit status: 0 when every trial payload matches, 1 on any difference,
2 on bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def resolve_store(path_text: str, experiment: "str | None") -> Path:
    path = Path(path_text)
    if path.is_file():
        return path
    if path.is_dir():
        pattern = f"{experiment}-*.jsonl" if experiment else "*.jsonl"
        matches = sorted(path.glob(pattern))
        if len(matches) == 1:
            return matches[0]
        reason = "no" if not matches else f"{len(matches)}"
        print(
            f"error: {path} holds {reason} stores matching {pattern!r}; "
            "pass the file directly or use --experiment",
            file=sys.stderr,
        )
        raise SystemExit(2)
    print(f"error: {path} does not exist", file=sys.stderr)
    raise SystemExit(2)


def load_store(path: Path) -> "dict[int, str]":
    payloads: "dict[int, str]" = {}
    line_number = 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                record = json.loads(line)
                payloads[int(record["index"])] = canonical(record["payload"])
    except (OSError, ValueError, KeyError) as error:
        print(
            f"error: {path}:{line_number}: not a result store ({error})",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return payloads


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("left", help="store file or --store-dir directory")
    parser.add_argument("right", help="store file or --store-dir directory")
    parser.add_argument(
        "--experiment",
        default=None,
        help="experiment prefix selecting the store inside a directory",
    )
    args = parser.parse_args(argv)

    left_path = resolve_store(args.left, args.experiment)
    right_path = resolve_store(args.right, args.experiment)
    left = load_store(left_path)
    right = load_store(right_path)

    failures = 0
    for index in sorted(set(left) | set(right)):
        if index not in left:
            print(f"trial {index}: only in {right_path}")
        elif index not in right:
            print(f"trial {index}: only in {left_path}")
        elif left[index] != right[index]:
            print(f"trial {index}: payloads differ")
            print(f"  {left_path}: {left[index][:200]}")
            print(f"  {right_path}: {right[index][:200]}")
        else:
            continue
        failures += 1

    if failures:
        print(f"FAIL: {failures} of {len(set(left) | set(right))} trials differ")
        return 1
    print(
        f"OK: {len(left)} trial payloads identical "
        f"({left_path.name} vs {right_path.name})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
