#!/usr/bin/env python
"""Peak-RSS benchmark: merged (in-RAM) versus streamed (JSONL) results.

Runs the same synthetic large-grid campaign twice, each in a fresh
subprocess so ``ru_maxrss`` is an honest high-water mark:

* **merged** — the historical behaviour: every payload accumulates in
  one RAM list and the aggregator folds the materialized list;
* **streamed** — ``ParallelRunner(store_dir=...)``: payloads spill to a
  JSONL file as shards finish and the aggregator folds the lazy
  ``ResultView`` one payload at a time.

Both modes fold the payloads to the same checksum (so the streamed run
cannot cheat by never reading results back).  The report prints peak
RSS and wall-clock per mode; under GitHub Actions it also appends a
markdown table to ``$GITHUB_STEP_SUMMARY``.  The streamed mode's peak
RSS should stay near-flat as ``--trials`` grows while the merged mode
grows linearly — the acceptance demonstration for the streaming store.

Usage::

    python scripts/bench_store_memory.py [--trials 1500] [--floats 512]
    python scripts/bench_store_memory.py --mode merged   # child entry
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time


def payload_trial(spec) -> dict:
    """A synthetic trial with a deliberately bulky payload."""
    floats = spec.params["floats"]
    base = float(spec.seed)
    return {
        "series": [base + i * 1e-6 for i in range(floats)],
        "seed": spec.seed,
    }


def run_child(mode: str, trials: int, floats: int) -> int:
    from repro.runner import ParallelRunner, TrialSpec

    specs = [
        TrialSpec(
            "rss-bench", i, seed=i + 1, params={"floats": floats},
            cacheable=False,
        )
        for i in range(trials)
    ]
    if mode == "merged":
        runner = ParallelRunner(n_jobs=1)
    else:
        store_dir = tempfile.mkdtemp(prefix="repro-rss-")
        runner = ParallelRunner(n_jobs=1, store_dir=store_dir)

    start = time.perf_counter()
    view = runner.run("rss-bench", payload_trial, specs)
    payloads = view.materialize() if mode == "merged" else view
    checksum = 0.0
    count = 0
    for payload in payloads:  # identical single-pass fold in both modes
        checksum += payload["series"][-1]
        count += 1
    elapsed = time.perf_counter() - start

    # ru_maxrss is KiB on Linux but bytes on macOS.
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_mib = peak / (1024.0 * 1024.0) if sys.platform == "darwin" else peak / 1024.0
    print(
        json.dumps(
            {
                "mode": mode,
                "trials": count,
                "checksum": checksum,
                "elapsed_s": elapsed,
                "peak_rss_mib": peak_mib,
            }
        )
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=1500)
    parser.add_argument("--floats", type=int, default=512)
    parser.add_argument(
        "--mode", choices=("merged", "streamed"), default=None,
        help="internal: run one mode in-process and print its JSON record",
    )
    args = parser.parse_args(argv)
    if args.mode is not None:
        return run_child(args.mode, args.trials, args.floats)

    records = {}
    for mode in ("merged", "streamed"):
        result = subprocess.run(
            [
                sys.executable, os.path.abspath(__file__),
                "--mode", mode,
                "--trials", str(args.trials),
                "--floats", str(args.floats),
            ],
            capture_output=True,
            text=True,
        )
        if result.returncode != 0:
            sys.stderr.write(result.stderr)
            return 1
        records[mode] = json.loads(result.stdout.strip().splitlines()[-1])

    if records["merged"]["checksum"] != records["streamed"]["checksum"]:
        print("error: merged and streamed folds disagree", file=sys.stderr)
        return 1

    width = max(len(m) for m in records)
    print(
        f"{'mode':<{width}}  {'trials':>7}  {'elapsed':>9}  {'peak RSS':>10}"
    )
    for mode, rec in records.items():
        print(
            f"{mode:<{width}}  {rec['trials']:>7}  "
            f"{rec['elapsed_s']:>8.2f}s  {rec['peak_rss_mib']:>7.1f} MiB"
        )
    saved = (
        records["merged"]["peak_rss_mib"] - records["streamed"]["peak_rss_mib"]
    )
    print(f"streamed store saves {saved:.1f} MiB of peak RSS at this grid size")

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        lines = [
            "## Runner peak RSS: merged vs streamed result store",
            "",
            f"{args.trials} trials x {args.floats} floats/payload, "
            "single process",
            "",
            "| mode | elapsed | peak RSS |",
            "|---|---:|---:|",
        ]
        for mode, rec in records.items():
            lines.append(
                f"| {mode} | {rec['elapsed_s']:.2f} s | "
                f"{rec['peak_rss_mib']:.1f} MiB |"
            )
        lines += [
            "",
            f"Streamed aggregation saves **{saved:.1f} MiB** of peak RSS.",
            "",
        ]
        with open(summary, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main())
