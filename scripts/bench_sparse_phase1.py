#!/usr/bin/env python
"""10k-link phase-1 bench: sparse solvers vs the dense Gram matrix.

Solves the phase-1 system ``Sigma_hat* = A v`` over a topology from the
repo's own generator at a scale — 10 000 virtual links by default —
where the historical dense normal-equation path would allocate an
800 MB ``A^T A`` before factorizing.  ``A`` is the real
intersecting-pairs matrix of a ``tree_nodes = links + 1`` random tree
(~10k paths, several million covariance equations); ``b`` is planted as
``A v_true`` plus observation noise, the shape phase 1 sees after
covariance estimation and negative-equation filtering.  Each solver
runs in a fresh subprocess so ``ru_maxrss`` is an honest per-solver
high-water mark, mirroring ``scripts/bench_store_memory.py``:

* **sparse** — CSC ``A^T A`` + SuperLU (`repro.core.sparse_solvers.
  solve_normal_sparse`), the path ``"wls"``/``"normal"`` auto-select
  above the crossover;
* **cg** — matrix-free Jacobi-preconditioned CG (`solve_normal_cg`),
  which never forms the Gram matrix at all;
* **normal-dense** — the historical dense path, run at
  ``--verify-links`` (not the full size) both as a timing reference and
  to assert the sparse solution matches it within 1e-8 relative error.

The report prints build time, solve time, peak RSS and the relative
error versus the planted ``v_true`` per solver; under GitHub Actions it
appends the same table to ``$GITHUB_STEP_SUMMARY``.  The headline
acceptance: the sparse path completes the 10k-link solve without ever
materializing a dense ``n_c x n_c`` Gram matrix.

Usage::

    python scripts/bench_sparse_phase1.py [--links 10000]
    python scripts/bench_sparse_phase1.py --mode sparse   # child entry
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time

#: Child-mode solver names mapped to repro.core.variance._solve methods.
SOLVERS = ("sparse", "cg", "normal-dense")


def build_system(num_links: int, seed: int):
    """The phase-1 system of a ``num_links``-link random tree.

    Returns ``(A, b, v_true, build_seconds)``: ``A`` is the
    intersecting-pairs matrix of the generated topology's routing matrix
    and ``b = A v_true + noise`` with loss-variance-scaled ``v_true``.
    """
    import numpy as np

    from repro.core.augmented import intersecting_pairs
    from repro.experiments.base import prepare_topology, scale_params

    start = time.perf_counter()
    params = scale_params("paper").sized(tree_nodes=num_links + 1)
    prepared = prepare_topology("tree", params, seed)
    pairs = intersecting_pairs(prepared.routing.matrix)
    build_seconds = time.perf_counter() - start

    rng = np.random.default_rng(seed + 1)
    v_true = rng.uniform(0.001, 0.1, size=pairs.num_links)
    b = pairs.matrix @ v_true + rng.normal(0.0, 1e-8, size=pairs.num_pairs)
    return pairs.matrix, b, v_true, build_seconds


def run_child(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.variance import _solve

    num_links = args.verify_links if args.mode == "normal-dense" else args.links
    A, b, v_true, build_seconds = build_system(num_links, args.seed)
    method = "normal" if args.mode == "normal-dense" else args.mode

    start = time.perf_counter()
    v = _solve(A.tocsr(), b, method)
    elapsed = time.perf_counter() - start

    relative_error = float(np.linalg.norm(v - v_true) / np.linalg.norm(v_true))
    # ru_maxrss is KiB on Linux but bytes on macOS.
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_mib = peak / (1024.0 * 1024.0) if sys.platform == "darwin" else peak / 1024.0
    print(
        json.dumps(
            {
                "mode": args.mode,
                "links": num_links,
                "equations": int(A.shape[0]),
                "build_s": build_seconds,
                "elapsed_s": elapsed,
                "peak_rss_mib": peak_mib,
                "relative_error": relative_error,
            }
        )
    )
    return 0


def verify_agreement(args: argparse.Namespace) -> float:
    """In-process check: sparse equals dense 'normal' at a size both run."""
    import numpy as np

    from repro.core.sparse_solvers import solve_normal_sparse
    from repro.core.variance import _solve

    A, b, _, _ = build_system(args.verify_links, args.seed)
    dense = _solve(A.tocsr(), b, "normal")
    via_sparse = solve_normal_sparse(A, b)
    return float(np.linalg.norm(via_sparse - dense) / np.linalg.norm(dense))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links", type=int, default=10_000)
    parser.add_argument("--verify-links", type=int, default=1500,
                        help="size of the dense reference + agreement check")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--mode", choices=SOLVERS, default=None,
        help="internal: run one solver in-process and print its JSON record",
    )
    args = parser.parse_args(argv)
    if args.mode is not None:
        return run_child(args)

    agreement = verify_agreement(args)
    if agreement > 1e-8:
        print(
            f"error: sparse vs dense normal disagreement {agreement:.2e} "
            "exceeds 1e-8",
            file=sys.stderr,
        )
        return 1
    print(
        f"sparse == dense 'normal' at {args.verify_links} links "
        f"(relative difference {agreement:.2e})"
    )

    records = {}
    for mode in SOLVERS:
        result = subprocess.run(
            [
                sys.executable, os.path.abspath(__file__),
                "--mode", mode,
                "--links", str(args.links),
                "--verify-links", str(args.verify_links),
                "--seed", str(args.seed),
            ],
            capture_output=True,
            text=True,
        )
        if result.returncode != 0:
            sys.stderr.write(result.stderr)
            return 1
        records[mode] = json.loads(result.stdout.strip().splitlines()[-1])

    width = max(len(m) for m in records)
    print(
        f"{'solver':<{width}}  {'links':>7}  {'equations':>10}  "
        f"{'build':>7}  {'solve':>8}  {'peak RSS':>10}  {'rel. error':>10}"
    )
    for mode, rec in records.items():
        print(
            f"{mode:<{width}}  {rec['links']:>7}  {rec['equations']:>10}  "
            f"{rec['build_s']:>6.1f}s  {rec['elapsed_s']:>7.2f}s  "
            f"{rec['peak_rss_mib']:>7.1f} MiB  {rec['relative_error']:>10.2e}"
        )
    dense_gram_mib = args.links * args.links * 8 / (1024.0 * 1024.0)
    print(
        f"a dense A^T A at {args.links} links would add {dense_gram_mib:.0f} "
        "MiB on top of the system itself; the sparse factorization and the "
        "matrix-free CG path never allocate it"
    )

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        lines = [
            "## Sparse phase-1 solve: 10k-link topology",
            "",
            f"{args.links} virtual links (dense reference at "
            f"{args.verify_links}); sparse == dense 'normal' to "
            f"{agreement:.2e}",
            "",
            "| solver | links | equations | build | solve | peak RSS "
            "| rel. error |",
            "|---|---:|---:|---:|---:|---:|---:|",
        ]
        for mode, rec in records.items():
            lines.append(
                f"| {mode} | {rec['links']} | {rec['equations']} | "
                f"{rec['build_s']:.1f} s | {rec['elapsed_s']:.2f} s | "
                f"{rec['peak_rss_mib']:.1f} MiB | {rec['relative_error']:.2e} |"
            )
        lines += [
            "",
            f"A dense Gram matrix at this width would add "
            f"**{dense_gram_mib:.0f} MiB**; the sparse paths never "
            "allocate it.",
            "",
        ]
        with open(summary, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main())
