#!/usr/bin/env python
"""Fail when benchmarks regress beyond a factor versus a committed baseline.

Compares two pytest-benchmark JSON documents (``--benchmark-json`` output)
by benchmark ``fullname``.  A benchmark *regresses* when::

    current_mean > threshold * baseline_mean

Benchmarks faster than ``--min-seconds`` in the baseline are compared but
never fail the gate: at sub-50 ms scales, CI-runner noise and cache effects
routinely exceed 2x and the gate would cry wolf.  Benchmarks present on only
one side are reported but do not fail the gate either (new benchmarks have
no baseline yet; removed ones have nothing to regress).

When running under GitHub Actions (``GITHUB_STEP_SUMMARY`` set), a
markdown before/after table with per-benchmark speedups is appended to
the job's step summary.

Usage::

    python scripts/check_bench_regression.py CURRENT.json BASELINE.json \
        [--threshold 2.0] [--min-seconds 0.05]

Exit status: 0 when no gated benchmark regresses, 1 otherwise, 2 on bad
input.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_means(path: str) -> "dict[str, float]":
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        raise SystemExit(2)
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, list):
        print(f"error: {path} is not pytest-benchmark JSON", file=sys.stderr)
        raise SystemExit(2)
    return {
        bench["fullname"]: float(bench["stats"]["mean"])
        for bench in benchmarks
    }


def write_step_summary(
    shared: "list[str]",
    current: "dict[str, float]",
    baseline: "dict[str, float]",
    only_current: "list[str]",
    threshold: float,
    min_seconds: float,
    num_regressions: int,
) -> None:
    """Append a markdown before/after speedup table to the CI step summary.

    No-op outside GitHub Actions (``GITHUB_STEP_SUMMARY`` unset).
    """
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "## Benchmark comparison vs committed baseline",
        "",
        "| benchmark | baseline | current | speedup | |",
        "|---|---:|---:|---:|---|",
    ]
    for name in shared:
        base, cur = baseline[name], current[name]
        speedup = base / cur if cur > 0 else float("inf")
        if cur > threshold * base:
            flag = (
                "🔴 regression"
                if base >= min_seconds
                else "⚪ noisy (below gate floor)"
            )
        elif speedup >= 1.5:
            flag = "🟢 faster"
        else:
            flag = ""
        lines.append(
            f"| `{name}` | {base * 1e3:.2f} ms | {cur * 1e3:.2f} ms | "
            f"{speedup:.2f}x | {flag} |"
        )
    for name in only_current:
        cur = current[name]
        lines.append(f"| `{name}` | — | {cur * 1e3:.2f} ms | new | 🆕 |")
    verdict = (
        f"**FAIL**: {num_regressions} benchmark(s) regressed beyond "
        f"{threshold:.1f}x."
        if num_regressions
        else f"**OK**: no benchmark regressed beyond {threshold:.1f}x."
    )
    lines += ["", verdict, ""]
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh --benchmark-json output")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="regression factor that fails the gate (default 2.0)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        help="baseline means below this are reported but never fail (default 0.05)",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 1.0:
        print("error: --threshold must exceed 1.0", file=sys.stderr)
        return 2

    current = load_means(args.current)
    baseline = load_means(args.baseline)

    shared = sorted(set(current) & set(baseline))
    only_current = sorted(set(current) - set(baseline))
    only_baseline = sorted(set(baseline) - set(current))

    regressions = []
    width = max((len(name) for name in shared), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  ratio")
    for name in shared:
        ratio = current[name] / baseline[name] if baseline[name] > 0 else float("inf")
        gated = baseline[name] >= args.min_seconds
        flag = ""
        if ratio > args.threshold:
            flag = " REGRESSION" if gated else " (ungated: below --min-seconds)"
            if gated:
                regressions.append((name, ratio))
        print(
            f"{name:<{width}}  {baseline[name]:>9.4f}s  {current[name]:>9.4f}s  "
            f"{ratio:>5.2f}x{flag}"
        )
    for name in only_current:
        print(f"note: no baseline for {name} (new benchmark?)")
    for name in only_baseline:
        print(f"note: baseline-only benchmark {name} (removed?)")

    if not shared:
        print("error: no benchmarks in common with the baseline", file=sys.stderr)
        return 2

    write_step_summary(
        shared,
        current,
        baseline,
        only_current,
        args.threshold,
        args.min_seconds,
        len(regressions),
    )
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond "
            f"{args.threshold:.1f}x:",
            file=sys.stderr,
        )
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed beyond {args.threshold:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
