#!/usr/bin/env python
"""Cross-tier benchmark report: numpy kernel tier versus numba tier.

Reads two pytest-benchmark JSON documents produced from the *same*
benchmark selection under different ``REPRO_KERNEL_TIER`` settings and
prints a per-benchmark speedup table (numpy time / numba time).  Under
GitHub Actions (``GITHUB_STEP_SUMMARY`` set) the same table is appended
to the job's step summary as markdown.

This is a report, not a gate: the compiled tier's wins vary with the
benchmark's BLAS/Python mix (kernel-bound microbenches speed up a lot,
BLAS-bound solves barely move), so there is no single honest threshold.
The regression gates live in ``check_bench_regression.py``, which both
tier runs pass through separately.

Usage::

    python scripts/compare_kernel_tiers.py NUMPY.json NUMBA.json

Exit status: 0 on success (any speedups), 2 on bad input or when the
two documents share no benchmarks.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_means(path: str) -> "dict[str, float]":
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        raise SystemExit(2)
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, list):
        print(f"error: {path} is not pytest-benchmark JSON", file=sys.stderr)
        raise SystemExit(2)
    return {
        bench["fullname"]: float(bench["stats"]["mean"])
        for bench in benchmarks
    }


def update_speedups(means: "dict[str, float]") -> "list[tuple[str, float, float, float]]":
    """Pair ``*_update_path`` benchmarks with their ``*_refactor_path`` twins.

    Returns ``(update_name, update_mean, refactor_mean, speedup)`` rows:
    the incremental-cache win (refactor time / update time) within one
    kernel tier, from the monitor growth benchmarks.
    """
    rows = []
    for name in sorted(means):
        if "update_path" not in name:
            continue
        twin = name.replace("update_path", "refactor_path")
        if twin in means and means[name] > 0:
            rows.append((name, means[name], means[twin], means[twin] / means[name]))
    return rows


def write_step_summary(shared: "list[str]", numpy_means, numba_means) -> None:
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "## Kernel tier comparison (numpy vs numba)",
        "",
        "| benchmark | numpy tier | numba tier | speedup |",
        "|---|---:|---:|---:|",
    ]
    for name in shared:
        np_time, nb_time = numpy_means[name], numba_means[name]
        speedup = np_time / nb_time if nb_time > 0 else float("inf")
        lines.append(
            f"| `{name}` | {np_time * 1e3:.2f} ms | {nb_time * 1e3:.2f} ms | "
            f"{speedup:.2f}x |"
        )
    tier_rows = [
        (tier, row)
        for tier, means in (("numpy", numpy_means), ("numba", numba_means))
        for row in update_speedups(means)
    ]
    if tier_rows:
        lines += [
            "",
            "### Incremental update vs refactor-from-scratch",
            "",
            "| benchmark | tier | update | refactor | speedup |",
            "|---|---|---:|---:|---:|",
        ]
        for tier, (name, upd, ref, speedup) in tier_rows:
            lines.append(
                f"| `{name}` | {tier} | {upd * 1e3:.2f} ms | "
                f"{ref * 1e3:.2f} ms | {speedup:.2f}x |"
            )
    lines += [""]
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("numpy_json", help="--benchmark-json from the numpy tier")
    parser.add_argument("numba_json", help="--benchmark-json from the numba tier")
    args = parser.parse_args(argv)

    numpy_means = load_means(args.numpy_json)
    numba_means = load_means(args.numba_json)
    shared = sorted(set(numpy_means) & set(numba_means))
    if not shared:
        print("error: the two documents share no benchmarks", file=sys.stderr)
        return 2

    width = max(len(name) for name in shared)
    print(f"{'benchmark':<{width}}  {'numpy':>10}  {'numba':>10}  speedup")
    for name in shared:
        np_time, nb_time = numpy_means[name], numba_means[name]
        speedup = np_time / nb_time if nb_time > 0 else float("inf")
        print(
            f"{name:<{width}}  {np_time:>9.4f}s  {nb_time:>9.4f}s  "
            f"{speedup:>6.2f}x"
        )

    for tier, means in (("numpy", numpy_means), ("numba", numba_means)):
        for name, upd, ref, speedup in update_speedups(means):
            print(
                f"incremental vs refactor [{tier}] {name}: "
                f"{upd:.4f}s vs {ref:.4f}s = {speedup:.2f}x"
            )

    write_step_summary(shared, numpy_means, numba_means)
    return 0


if __name__ == "__main__":
    sys.exit(main())
