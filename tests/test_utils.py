"""Tests for the shared utilities."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, derive_seed, spawn_rngs
from repro.utils.tables import TextTable


class TestRng:
    def test_as_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_as_rng_seeds(self):
        assert as_rng(5).random() == as_rng(5).random()

    def test_spawn_independence(self):
        a, b = spawn_rngs(7, 2)
        assert a.random() != b.random()

    def test_spawn_reproducible(self):
        first = [g.random() for g in spawn_rngs(7, 3)]
        second = [g.random() for g in spawn_rngs(7, 3)]
        assert first == second

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_derive_seed_stable(self):
        assert derive_seed(3, 4) == derive_seed(3, 4)
        assert derive_seed(3, 4) != derive_seed(3, 5)

    def test_derive_seed_none(self):
        assert derive_seed(None, 4) is None


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["name", "value"])
        table.add_row(["x", 1.0])
        table.add_row(["longer", 2.5])
        lines = table.render().splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_float_format(self):
        table = TextTable(["v"], float_fmt="{:.1f}")
        table.add_row([3.14159])
        assert "3.1" in table.render()

    def test_row_length_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_markdown(self):
        table = TextTable(["a"])
        table.add_row([1])
        md = table.render_markdown()
        assert md.startswith("| a |")
        assert "| --- |" in md

    def test_len(self):
        table = TextTable(["a"])
        assert len(table) == 0
        table.add_row([1])
        assert len(table) == 1

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])
