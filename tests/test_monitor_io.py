"""Tests for the online monitor and the JSON storage seam."""

import numpy as np
import pytest

from repro import ProberConfig, ProbingSimulator
from repro.io import (
    CampaignDocument,
    document_from_dict,
    document_to_dict,
    load_campaign,
    save_campaign,
)
from repro.monitor import OnlineLossMonitor


@pytest.fixture(scope="module")
def monitored_stream(small_tree):
    """A warm-up stream plus a congestion flip for event testing."""
    topo, paths, routing = small_tree
    config = ProberConfig(probes_per_snapshot=400, congestion_probability=0.1)
    simulator = ProbingSimulator(paths, topo.network.num_links, config=config)
    calm = simulator.run_campaign(14, routing, seed=31, truth_mode="fixed")
    return topo, paths, routing, simulator, calm


class TestMonitor:
    def test_warms_up_then_localizes(self, monitored_stream):
        topo, paths, routing, simulator, calm = monitored_stream
        monitor = OnlineLossMonitor(
            routing, window=10, refresh_interval=3, localize_always=True
        )
        reports = [monitor.observe(s) for s in calm.snapshots]
        assert not any(r.loss_rates is not None for r in reports[:9])
        assert monitor.is_warm
        assert reports[-1].loss_rates is not None

    def test_detects_persistent_congestion(self, monitored_stream):
        topo, paths, routing, simulator, calm = monitored_stream
        monitor = OnlineLossMonitor(
            routing, window=10, refresh_interval=3, localize_always=True
        )
        for snap in calm.snapshots:
            monitor.observe(snap)
        truth = calm[-1].virtual_congested(routing)
        flagged = set(monitor.currently_congested())
        actual = set(int(c) for c in np.flatnonzero(truth))
        if actual:
            overlap = len(flagged & actual) / len(actual)
            assert overlap >= 0.7

    def test_onset_and_cleared_events(self, monitored_stream):
        topo, paths, routing, simulator, calm = monitored_stream
        monitor = OnlineLossMonitor(
            routing, window=6, refresh_interval=2, localize_always=True
        )
        for snap in calm.snapshots:
            monitor.observe(snap)
        # A quiet network from here on: everything should clear.
        from repro.lossmodel import SnapshotGroundTruth

        quiet_truth = SnapshotGroundTruth(
            congested=np.zeros(topo.network.num_links, dtype=bool),
            loss_rates=np.zeros(topo.network.num_links),
        )
        cleared = []
        for seed in range(6):
            snap = simulator.run_snapshot(seed=1000 + seed, truth=quiet_truth)
            report = monitor.observe(snap)
            cleared.extend(e for e in report.events if e.kind == "cleared")
        assert cleared
        assert all(e.duration_snapshots >= 1 for e in cleared)
        assert monitor.currently_congested() == []

    def test_screening_flags_sudden_loss(self, monitored_stream):
        topo, paths, routing, simulator, calm = monitored_stream
        monitor = OnlineLossMonitor(routing, window=10, z_threshold=4.0)
        for snap in calm.snapshots:
            monitor.observe(snap)
        # Craft a snapshot where one path collapses.
        from repro.probing import Snapshot

        rates = calm[-1].path_transmission.copy()
        rates[0] = max(rates[0] - 0.5, 0.0)
        report = monitor.observe(
            Snapshot(path_transmission=rates, num_probes=400)
        )
        assert report.screened_anomalous
        assert 0 in report.anomalous_paths

    def test_validation(self, monitored_stream):
        _, _, routing, _, _ = monitored_stream
        with pytest.raises(ValueError):
            OnlineLossMonitor(routing, window=1)
        with pytest.raises(ValueError):
            OnlineLossMonitor(routing, refresh_interval=0)
        with pytest.raises(ValueError):
            OnlineLossMonitor(routing, z_threshold=0)
        with pytest.raises(ValueError):
            OnlineLossMonitor(routing, downdate_limit=-1)
        with pytest.raises(ValueError):
            OnlineLossMonitor(routing, update_limit=-1)

    def test_cache_info_passthrough(self, monitored_stream):
        _, _, routing, _, _ = monitored_stream
        monitor = OnlineLossMonitor(routing)
        info = monitor.cache_info()
        assert set(info) == {"factorization", "reduction"}
        assert all(value.entries == 0 for value in info.values())


class TestRefreshDowndate:
    """A refresh that clears a link downdates R* instead of refactorizing."""

    def test_shrinking_kept_set_downdates(self, small_tree):
        from repro.probing.snapshot import Snapshot

        _, _, routing = small_tree
        R = routing.matrix.astype(np.float64)
        varying = [2, 10, 20]
        clearing = 20

        def snapshot_at(t):
            # Noise-free log link rates: the varying columns alternate
            # between two congestion levels (across-window variance
            # ~2e-4, far above the 16 * t_l / S = 3.2e-5 cutoff); the
            # clearing column goes exactly quiet from t = 14 on, so a
            # later refresh drops exactly one kept column.
            x = np.zeros(routing.num_links)
            level = -0.02 if t % 2 == 0 else -0.05
            for column in varying:
                if column == clearing and t >= 14:
                    continue
                x[column] = level
            return Snapshot(
                path_transmission=np.exp(R @ x), num_probes=1000
            )

        monitor = OnlineLossMonitor(
            routing,
            window=6,
            refresh_interval=2,
            localize_always=True,
        )
        saw_all_varying = False
        for t in range(28):
            report = monitor.observe(snapshot_at(t))
            if report.loss_rates is not None and t < 14:
                flagged = set(
                    int(c)
                    for c in np.flatnonzero(report.loss_rates > 0.002)
                )
                saw_all_varying |= flagged == set(varying)

        assert saw_all_varying  # all three links localized while varying
        assert monitor.factorization_downdates >= 1
        assert clearing not in monitor.currently_congested()


class TestRefreshUpdate:
    """A refresh that re-flags a link updates R* instead of refactorizing."""

    @staticmethod
    def snapshot_at(routing, t, joining):
        from repro.probing.snapshot import Snapshot

        # Noise-free log link rates (the downdate test's stream run in
        # reverse): two columns vary throughout, the joining column goes
        # active at t = 14, so a later refresh adds exactly one kept
        # column.
        R = routing.matrix.astype(np.float64)
        x = np.zeros(routing.num_links)
        level = -0.02 if t % 2 == 0 else -0.05
        for column in (2, 10):
            x[column] = level
        if t >= 14:
            x[joining] = level
        return Snapshot(path_transmission=np.exp(R @ x), num_probes=1000)

    def test_growing_kept_set_updates(self, small_tree):
        _, _, routing = small_tree
        joining = 20
        monitor = OnlineLossMonitor(
            routing, window=6, refresh_interval=2, localize_always=True
        )
        report = None
        for t in range(28):
            report = monitor.observe(self.snapshot_at(routing, t, joining))

        assert monitor.factorization_updates >= 1
        assert monitor.cache_info()["reduction"].updates >= 1
        assert joining in monitor.currently_congested()

        # A refactor-from-scratch monitor fed the identical stream
        # localizes the same losses to update-path precision.
        cold = OnlineLossMonitor(
            routing,
            window=6,
            refresh_interval=2,
            localize_always=True,
            downdate_limit=0,
            update_limit=0,
        )
        cold_report = None
        for t in range(28):
            cold_report = cold.observe(self.snapshot_at(routing, t, joining))
        assert cold.factorization_updates == 0
        assert np.allclose(
            report.loss_rates, cold_report.loss_rates, atol=1e-8
        )


class TestIncrementalVariance:
    """Rolling-moment refreshes agree with the batch window path."""

    @staticmethod
    def stream(routing, steps):
        from repro.probing.snapshot import Snapshot

        R = routing.matrix.astype(np.float64)
        for t in range(steps):
            x = np.zeros(routing.num_links)
            x[2] = -0.02 - 0.01 * (t % 3)
            x[10] = -0.03 - 0.01 * ((t + 1) % 2)
            yield Snapshot(path_transmission=np.exp(R @ x), num_probes=800)

    def test_matches_batch_refresh(self, small_tree, monkeypatch):
        import repro.monitor.online as online

        # A tiny rebase interval so the drift-bounding resummation runs
        # mid-stream too.
        monkeypatch.setattr(online, "MOMENTS_REBASE_INTERVAL", 7)
        _, _, routing = small_tree
        kwargs = dict(window=6, refresh_interval=2, localize_always=True)
        fast = OnlineLossMonitor(routing, **kwargs)
        batch = OnlineLossMonitor(
            routing, incremental_variance=False, **kwargs
        )
        compared = 0
        for snap in self.stream(routing, 24):
            fast_report = fast.observe(snap)
            batch_report = batch.observe(snap)
            if fast_report.loss_rates is not None:
                assert batch_report.loss_rates is not None
                assert np.allclose(
                    fast_report.loss_rates,
                    batch_report.loss_rates,
                    atol=1e-8,
                )
                compared += 1
        assert compared >= 10
        assert fast.variance_refreshes == batch.variance_refreshes

    def test_constant_stream_skips_the_solve(self, small_tree):
        from repro.probing.snapshot import Snapshot

        _, _, routing = small_tree
        snap = Snapshot(
            path_transmission=np.full(routing.num_paths, 0.99),
            num_probes=500,
        )
        monitor = OnlineLossMonitor(
            routing, window=4, refresh_interval=1, localize_always=True
        )
        for _ in range(12):
            monitor.observe(snap)
        # Identical covariances since the last refresh: the solve is
        # skipped, the estimate stays exact.
        assert monitor.variance_refreshes >= 2
        assert monitor.variance_solves_skipped >= 1

        batch = OnlineLossMonitor(
            routing,
            window=4,
            refresh_interval=1,
            localize_always=True,
            incremental_variance=False,
        )
        for _ in range(12):
            batch.observe(snap)
        assert batch.variance_solves_skipped == 0


class TestSerialization:
    def test_round_trip(self, small_tree, tree_campaign, tmp_path):
        topo, paths, routing = small_tree
        document = CampaignDocument(
            network=topo.network,
            beacons=topo.beacons,
            destinations=topo.destinations,
            paths=paths,
            snapshots=list(tree_campaign.snapshots),
        )
        target = tmp_path / "campaign.json"
        save_campaign(document, target)
        loaded = load_campaign(target)

        assert loaded.network.num_links == topo.network.num_links
        assert [p.link_indices() for p in loaded.paths] == [
            p.link_indices() for p in paths
        ]
        for original, restored in zip(
            tree_campaign.snapshots, loaded.snapshots
        ):
            assert np.allclose(
                original.path_transmission, restored.path_transmission
            )
        # The reloaded document reproduces the same routing matrix.
        assert np.array_equal(loaded.routing().matrix, routing.matrix)

    def test_lia_runs_on_loaded_document(
        self, small_tree, tree_campaign, tmp_path
    ):
        topo, paths, routing = small_tree
        document = CampaignDocument(
            network=topo.network,
            beacons=topo.beacons,
            destinations=topo.destinations,
            paths=paths,
            snapshots=list(tree_campaign.snapshots),
        )
        target = tmp_path / "campaign.json"
        save_campaign(document, target)
        loaded = load_campaign(target)

        from repro import LossInferenceAlgorithm

        result = LossInferenceAlgorithm(loaded.routing()).run(loaded.campaign())
        assert result.num_links == routing.num_links

    def test_format_tag_checked(self):
        with pytest.raises(ValueError, match="format"):
            document_from_dict({"format": "something-else"})

    def test_width_mismatch_rejected(self, small_tree, tree_campaign):
        topo, paths, _ = small_tree
        document = CampaignDocument(
            network=topo.network,
            beacons=topo.beacons,
            destinations=topo.destinations,
            paths=paths,
            snapshots=list(tree_campaign.snapshots),
        )
        payload = document_to_dict(document)
        payload["snapshots"][0]["path_transmission"] = [1.0]
        with pytest.raises(ValueError, match="width"):
            document_from_dict(payload)
