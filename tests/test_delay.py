"""Tests for the delay-tomography extension."""

import numpy as np
import pytest

from repro.delay import (
    DelayCampaign,
    DelayInferenceAlgorithm,
    DelayModel,
    DelayProbingSimulator,
    DelaySnapshot,
)


@pytest.fixture(scope="module")
def delay_setup(small_tree):
    topo, paths, routing = small_tree
    simulator = DelayProbingSimulator(
        paths, topo.network.num_links, congestion_probability=0.1, seed=4
    )
    campaign = simulator.run_campaign(31, routing, seed=5)
    return routing, simulator, campaign


class TestDelayModel:
    def test_base_delays_in_range(self):
        model = DelayModel(base_range=(1.0, 2.0))
        base = model.draw_base_delays(1000, seed=0)
        assert base.min() >= 1.0 and base.max() <= 2.0

    def test_queue_means_only_on_congested(self):
        model = DelayModel()
        congested = np.array([True, False, True])
        means = model.draw_queue_means(congested, seed=1)
        assert means[1] == 0.0
        assert (means[[0, 2]] > 0).all()

    def test_snapshot_delays_add_queueing(self):
        model = DelayModel()
        base = np.array([1.0, 1.0])
        queue = np.array([0.0, 20.0])
        delays = model.sample_snapshot_delays(base, queue, seed=2)
        assert delays[0] == 1.0
        assert delays[1] > 1.0

    def test_theoretical_variance(self):
        model = DelayModel(queue_shape=0.8)
        assert model.theoretical_variance(np.array([10.0]))[0] == pytest.approx(
            100.0 / 0.8
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayModel(queue_shape=0.0)
        with pytest.raises(ValueError):
            DelayModel(base_range=(5.0, 1.0))


class TestDelaySimulator:
    def test_path_delay_is_link_sum(self, delay_setup, small_tree):
        routing, simulator, campaign = delay_setup
        _, paths, _ = small_tree
        snap = campaign[0]
        for path in paths[:20]:
            expected = snap.link_delays[list(path.link_indices())].sum()
            assert snap.path_delays[path.index] == pytest.approx(
                expected, abs=0.5
            )

    def test_congested_links_vary_across_snapshots(self, delay_setup, small_tree):
        routing, simulator, campaign = delay_setup
        link_delays = np.vstack([s.link_delays for s in campaign.snapshots])
        variances = link_delays.var(axis=0)
        if simulator.congested.any() and (~simulator.congested).any():
            assert (
                variances[simulator.congested].min()
                > variances[~simulator.congested].max()
            )

    def test_snapshot_validation(self):
        with pytest.raises(ValueError):
            DelaySnapshot(path_delays=np.array([-1.0]), num_probes=10)


class TestDelayInference:
    def test_variance_ordering_identifies_congested(self, delay_setup):
        routing, simulator, campaign = delay_setup
        training, _ = campaign.split_training_target()
        algorithm = DelayInferenceAlgorithm(routing)
        estimate = algorithm.learn_variances(training)
        cong_cols = routing.aggregate_any(simulator.congested)
        if not cong_cols.any():
            pytest.skip("no congested link drawn")
        order = np.argsort(estimate.variances)[::-1]
        top = order[: int(cong_cols.sum())]
        assert cong_cols[top].mean() >= 0.8

    def test_deviations_match_truth(self, delay_setup):
        routing, simulator, campaign = delay_setup
        training, target = campaign.split_training_target()
        algorithm = DelayInferenceAlgorithm(routing)
        estimate = algorithm.learn_variances(training)
        result = algorithm.infer(target, estimate)
        link_train = np.vstack(
            [s.virtual_link_delays(routing) for s in training.snapshots]
        )
        true_dev = target.virtual_link_delays(routing) - link_train.mean(axis=0)
        kept = result.kept_columns
        if len(kept):
            errors = np.abs(result.delay_deviations[kept] - true_dev[kept])
            assert np.median(errors) < 1.0  # ms

    def test_quiet_links_get_zero_deviation(self, delay_setup):
        routing, simulator, campaign = delay_setup
        algorithm = DelayInferenceAlgorithm(routing)
        result = algorithm.run(campaign)
        quiet = np.setdiff1d(
            np.arange(routing.num_links), result.kept_columns
        )
        assert np.allclose(result.delay_deviations[quiet], 0.0)

    def test_high_delay_mask(self, delay_setup):
        routing, _, campaign = delay_setup
        result = DelayInferenceAlgorithm(routing).run(campaign)
        mask = result.high_delay_links(3.0)
        assert mask.dtype == bool

    def test_needs_two_snapshots(self, delay_setup):
        routing, _, campaign = delay_setup
        short = DelayCampaign(routing=routing, snapshots=[campaign[0]])
        with pytest.raises(ValueError):
            DelayInferenceAlgorithm(routing).learn_variances(short)

    def test_cutoff_validation(self, delay_setup):
        routing, _, _ = delay_setup
        with pytest.raises(ValueError):
            DelayInferenceAlgorithm(routing, variance_cutoff_ms2=0.0)
