"""Tests for loss-rate models and congestion assignment."""

import numpy as np
import pytest

from repro.lossmodel import (
    INTERNET,
    LLRD1,
    LLRD2,
    LossRateModel,
    draw_link_propensities,
    draw_snapshot_truth,
    persistent_congestion_truth,
    truth_from_propensities,
)


class TestModels:
    def test_llrd1_parameters_match_paper(self):
        assert LLRD1.threshold == 0.002
        assert LLRD1.good_range == (0.0, 0.002)
        assert LLRD1.congested_range == (0.05, 0.2)

    def test_llrd2_wide_range(self):
        assert LLRD2.congested_range == (0.002, 1.0)

    def test_draw_rates_respect_classes(self):
        congested = np.array([True] * 50 + [False] * 50)
        rates = LLRD1.draw_rates(congested, seed=0)
        assert rates[:50].min() >= 0.05 and rates[:50].max() <= 0.2
        assert rates[50:].max() <= 0.002

    def test_classify_inverts_draw(self):
        congested = np.random.default_rng(1).random(200) < 0.3
        rates = LLRD1.draw_rates(congested, seed=2)
        assert np.array_equal(LLRD1.classify(rates), congested)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            LossRateModel("x", 0.5, (0.9, 0.1), (0.1, 0.2))
        with pytest.raises(ValueError):
            LossRateModel("x", 1.5, (0.0, 0.1), (0.1, 0.2))

    def test_internet_good_links_nearly_lossless(self):
        assert INTERNET.good_range[1] <= 1e-4


class TestSnapshotTruth:
    def test_congestion_probability_respected(self):
        truth = draw_snapshot_truth(20_000, 0.10, LLRD1, seed=0)
        assert truth.congested.mean() == pytest.approx(0.10, abs=0.01)

    def test_rates_match_marks(self):
        truth = draw_snapshot_truth(1000, 0.2, LLRD1, seed=1)
        assert np.array_equal(LLRD1.classify(truth.loss_rates), truth.congested)

    def test_transmission_complement(self):
        truth = draw_snapshot_truth(100, 0.1, LLRD1, seed=2)
        assert np.allclose(truth.transmission_rates(), 1 - truth.loss_rates)

    def test_zero_probability(self):
        truth = draw_snapshot_truth(100, 0.0, LLRD1, seed=3)
        assert not truth.congested.any()

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            draw_snapshot_truth(10, 1.5, LLRD1)


class TestPersistence:
    def test_full_persistence_keeps_marks(self):
        base = draw_snapshot_truth(500, 0.1, LLRD1, seed=4)
        evolved = persistent_congestion_truth(base, LLRD1, 0.0, seed=5)
        assert np.array_equal(evolved.congested, base.congested)

    def test_full_redraw_changes_marks(self):
        base = draw_snapshot_truth(5000, 0.3, LLRD1, seed=6)
        evolved = persistent_congestion_truth(base, LLRD1, 1.0, seed=7)
        assert not np.array_equal(evolved.congested, base.congested)

    def test_rates_redrawn_within_class(self):
        base = draw_snapshot_truth(500, 0.1, LLRD1, seed=8)
        evolved = persistent_congestion_truth(base, LLRD1, 0.0, seed=9)
        assert np.array_equal(
            LLRD1.classify(evolved.loss_rates), evolved.congested
        )


class TestPropensities:
    def test_trouble_fraction(self):
        p = draw_link_propensities(50_000, 0.1, seed=0)
        assert (p > 0).mean() == pytest.approx(0.1, abs=0.01)

    def test_range_respected(self):
        p = draw_link_propensities(10_000, 0.5, (0.3, 0.9), seed=1)
        active = p[p > 0]
        assert active.min() >= 0.3 and active.max() <= 0.9

    def test_truth_follows_propensities(self):
        p = np.zeros(10_000)
        p[:5000] = 0.5
        marks = np.zeros(10_000)
        for seed in range(20):
            truth = truth_from_propensities(p, LLRD1, seed=seed)
            marks += truth.congested
        assert marks[:5000].mean() / 20 == pytest.approx(0.5, abs=0.05)
        assert marks[5000:].sum() == 0

    def test_invalid_propensities(self):
        with pytest.raises(ValueError):
            truth_from_propensities(np.array([1.5]), LLRD1)
