"""The parallel sharded runner: determinism, caching, failure paths.

The acceptance bar: a fig5-style campaign run through ``ParallelRunner``
with ``n_jobs=1`` reproduces the sequential harness seed for seed, every
``n_jobs`` value agrees with every other, and a cached re-run skips all
completed shards.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import EXPERIMENTS
from repro.runner import (
    ParallelRunner,
    ResultView,
    SerialBackend,
    ShardExecutionError,
    TrialSpec,
    available_backends,
    compute_code_version,
    get_backend,
    register_backend,
    shard_key,
    shard_specs,
    unregister_backend,
)
from repro.runner.spec import json_roundtrip


def square_trial(spec: TrialSpec) -> dict:
    """Module-level so worker processes can unpickle it by reference."""
    return {"value": spec.seed ** 2, "tag": spec.params.get("tag")}


def fragile_trial(spec: TrialSpec) -> dict:
    if spec.index == 2:
        raise ValueError("probe storm in trial 2")
    return {"ok": spec.index}


def messy_trial(spec: TrialSpec) -> dict:
    # Tuples and int keys: JSON normalisation must canonicalise these.
    return {"pair": (1, 2), "by_m": {10: 0.5}}


def index_trial(spec: TrialSpec) -> dict:
    return {"index": spec.index}


def interrupting_trial(spec: TrialSpec) -> dict:
    raise KeyboardInterrupt


def make_specs(n: int, experiment: str = "unit") -> list:
    return [
        TrialSpec(experiment, i, seed=i + 3, params={"tag": f"t{i % 2}"})
        for i in range(n)
    ]


class TestSpecs:
    def test_key_stable_and_param_sensitive(self):
        a = TrialSpec("e", 0, seed=1, params={"x": 1, "y": [1, 2]})
        b = TrialSpec("e", 0, seed=1, params={"y": [1, 2], "x": 1})
        c = TrialSpec("e", 0, seed=1, params={"x": 2, "y": [1, 2]})
        assert a.key() == b.key()  # dict order is not identity
        assert a.key() != c.key()

    def test_sharding_is_independent_of_jobs(self):
        specs = make_specs(7)
        assert [len(s) for s in shard_specs(specs, 1)] == [1] * 7
        assert [len(s) for s in shard_specs(specs, 3)] == [3, 3, 1]
        with pytest.raises(ValueError):
            shard_specs(specs, 0)

    def test_shard_key_mixes_code_version(self):
        shard = make_specs(2)[:1]
        assert shard_key("e", shard, "v1") != shard_key("e", shard, "v2")

    def test_runner_rejects_bad_indices(self):
        specs = [TrialSpec("e", 0, seed=1), TrialSpec("e", 2, seed=1)]
        with pytest.raises(ValueError, match="0..n-1"):
            ParallelRunner().run("e", square_trial, specs)

    def test_runner_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            ParallelRunner(n_jobs=0)

    def test_runner_rejects_below_minus_one(self):
        # -1 means "all cores"; other negatives are typos, not requests
        with pytest.raises(ValueError):
            ParallelRunner(n_jobs=-5)
        assert ParallelRunner(n_jobs=-1).n_jobs >= 1


class TestBackends:
    """The pluggable execution seam: registry + payload identity."""

    def test_registry_lists_builtins(self):
        assert set(available_backends()) >= {"serial", "process", "thread"}

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            get_backend("carrier-pigeon")
        with pytest.raises(ValueError, match="unknown execution backend"):
            ParallelRunner(backend="carrier-pigeon")

    def test_default_backend_tracks_n_jobs(self):
        assert ParallelRunner(n_jobs=1).backend.name == "serial"
        assert ParallelRunner(n_jobs=2).backend.name == "process"
        assert ParallelRunner(n_jobs=2, backend="thread").backend.name == "thread"

    def test_every_backend_matches_serial(self):
        specs = make_specs(9)
        expected = ParallelRunner(n_jobs=1).run("unit", square_trial, specs)
        for backend in ("serial", "process", "thread"):
            got = ParallelRunner(n_jobs=3, backend=backend).run(
                "unit", square_trial, specs
            )
            assert got == expected

    def test_thread_backend_crash_carries_traceback(self):
        with pytest.raises(ShardExecutionError, match="probe storm"):
            ParallelRunner(n_jobs=2, backend="thread").run(
                "unit", fragile_trial, make_specs(4)
            )

    def test_serial_backend_chains_original_exception(self):
        # In-process runs keep the live exception as __cause__ (parity
        # with the pre-seam sequential path) so callers can classify it.
        with pytest.raises(ShardExecutionError) as excinfo:
            ParallelRunner(n_jobs=1).run("unit", fragile_trial, make_specs(4))
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_serial_backend_propagates_keyboard_interrupt(self):
        # Ctrl-C during an in-process run is the user talking to the
        # runner, not a trial crash: it must not be swallowed into a
        # ShardExecutionError.
        with pytest.raises(KeyboardInterrupt):
            ParallelRunner(n_jobs=1).run(
                "unit", interrupting_trial, make_specs(2)
            )

    def test_register_custom_backend(self):
        # The "write your own backend" contract from the README: one
        # class, registered by name, reachable from the runner.
        class LoggingBackend(SerialBackend):
            name = "logging"
            seen: list = []

            def run_shards(self, trial_fn, shards):
                self.seen.append(len(shards))
                return super().run_shards(trial_fn, shards)

        register_backend("logging", LoggingBackend)
        try:
            specs = make_specs(4)
            runner = ParallelRunner(backend="logging")
            got = runner.run("unit", square_trial, specs)
            assert got == ParallelRunner().run("unit", square_trial, specs)
            assert runner.backend.name == "logging"
            assert LoggingBackend.seen == [4]
        finally:
            unregister_backend("logging")
        with pytest.raises(ValueError):
            get_backend("logging")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("serial", SerialBackend)

    def test_optionless_backends_reject_backend_options(self):
        # serial/process/thread take no options; a typo'd or misrouted
        # option must fail at construction, not be silently dropped.
        with pytest.raises(TypeError):
            get_backend("serial", bind="127.0.0.1:0")
        with pytest.raises(TypeError):
            ParallelRunner(backend="thread", backend_options={"workers": 2})

    def test_backend_options_need_a_registry_name(self):
        with pytest.raises(ValueError, match="registry name"):
            ParallelRunner(
                backend=SerialBackend(), backend_options={"bind": "x"}
            )

    def test_backend_options_reach_the_factory(self):
        captured = {}

        def factory(n_jobs=1, mp_context=None, **options):
            captured.update(options, n_jobs=n_jobs)
            return SerialBackend()

        register_backend("capturing", factory)
        try:
            ParallelRunner(
                n_jobs=3, backend="capturing",
                backend_options={"flavor": "mesh"},
            )
            assert captured == {"flavor": "mesh", "n_jobs": 3}
        finally:
            unregister_backend("capturing")

    def test_shared_cache_across_backends(self, tmp_path):
        specs = make_specs(6)
        ParallelRunner(n_jobs=1, cache_dir=tmp_path).run(
            "unit", square_trial, specs
        )
        for backend in ("process", "thread"):
            runner = ParallelRunner(n_jobs=2, backend=backend, cache_dir=tmp_path)
            runner.run("unit", square_trial, specs)
            assert runner.last_stats.shards_executed == 0


class TestResultStore:
    """Streaming spill-to-disk results and the lazy view."""

    def test_view_behaves_like_a_list(self):
        specs = make_specs(5)
        view = ParallelRunner().run("unit", square_trial, specs)
        assert isinstance(view, ResultView)
        assert len(view) == 5
        assert view[0]["value"] == 9
        assert view[-1]["value"] == 49
        assert view[1:3] == [view[1], view[2]]
        assert view.materialize() == list(view)
        with pytest.raises(IndexError):
            view[5]

    def test_jsonl_store_matches_memory(self, tmp_path):
        specs = make_specs(7)
        in_ram = ParallelRunner(n_jobs=1).run("unit", square_trial, specs)
        streamed = ParallelRunner(n_jobs=1, store_dir=tmp_path).run(
            "unit", square_trial, specs
        )
        assert streamed == in_ram
        assert streamed.materialize() == in_ram.materialize()
        (spill,) = tmp_path.glob("unit-*.jsonl")
        records = [json.loads(line) for line in spill.read_text().splitlines()]
        assert sorted(r["index"] for r in records) == list(range(7))

    def test_jsonl_store_under_parallel_backends(self, tmp_path):
        specs = make_specs(8)
        expected = ParallelRunner().run("unit", square_trial, specs)
        for backend in ("process", "thread"):
            store = tmp_path / backend
            got = ParallelRunner(
                n_jobs=3, backend=backend, store_dir=store
            ).run("unit", square_trial, specs)
            assert got == expected

    def test_jsonl_store_with_cache_hits(self, tmp_path):
        specs = make_specs(5)
        cache = tmp_path / "cache"
        first = ParallelRunner(cache_dir=cache).run("unit", square_trial, specs)
        replay = ParallelRunner(cache_dir=cache, store_dir=tmp_path / "store")
        got = replay.run("unit", square_trial, specs)
        assert replay.last_stats.trials_cached == 5
        assert got == first

    def test_close_releases_handles_and_reads_still_work(self, tmp_path):
        specs = make_specs(3)
        view = ParallelRunner(store_dir=tmp_path).run(
            "unit", square_trial, specs
        )
        first = view[0]
        view.close()  # fd released; subsequent reads reopen the file
        assert view[0] == first
        assert view.materialize() == ParallelRunner().run(
            "unit", square_trial, specs
        )
        # memory-backed views accept close() as a no-op
        ParallelRunner().run("unit", square_trial, specs).close()

    def test_empty_run_returns_empty_view(self):
        view = ParallelRunner().run("unit", square_trial, [])
        assert len(view) == 0
        assert view == []


class TestDeterminismAcrossJobs:
    def test_parallel_matches_sequential(self):
        specs = make_specs(9)
        expected = ParallelRunner(n_jobs=1).run("unit", square_trial, specs)
        for n_jobs in (2, 4):
            got = ParallelRunner(n_jobs=n_jobs).run("unit", square_trial, specs)
            assert got == expected
        got = ParallelRunner(n_jobs=2, shard_size=4).run(
            "unit", square_trial, specs
        )
        assert got == expected

    def test_arrival_order_recorded_but_merge_is_index_order(self):
        specs = make_specs(6)
        runner = ParallelRunner(n_jobs=3)
        results = runner.run("unit", square_trial, specs)
        assert [r["value"] for r in results] == [(i + 3) ** 2 for i in range(6)]
        assert sorted(runner.last_stats.arrival_order) == list(range(6))

    def test_payloads_are_json_normalised_without_cache(self):
        (result,) = ParallelRunner().run(
            "unit", messy_trial, [TrialSpec("unit", 0, seed=1)]
        )
        assert result == {"pair": [1, 2], "by_m": {"10": 0.5}}
        assert result == json_roundtrip(result)


class TestShardCache:
    def test_second_run_skips_all_shards(self, tmp_path):
        specs = make_specs(5)
        first = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        a = first.run("unit", square_trial, specs)
        assert first.last_stats.trials_executed == 5

        second = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        b = second.run("unit", square_trial, specs)
        assert b == a
        assert second.last_stats.trials_executed == 0
        assert second.last_stats.trials_cached == 5

    def test_cache_shared_across_jobs_values(self, tmp_path):
        specs = make_specs(6)
        ParallelRunner(n_jobs=1, cache_dir=tmp_path).run(
            "unit", square_trial, specs
        )
        parallel = ParallelRunner(n_jobs=3, cache_dir=tmp_path)
        parallel.run("unit", square_trial, specs)
        assert parallel.last_stats.shards_executed == 0

    def test_overlapping_sweep_reuses_finished_trials(self, tmp_path):
        ParallelRunner(cache_dir=tmp_path).run(
            "unit", square_trial, make_specs(4)
        )
        wider = ParallelRunner(cache_dir=tmp_path)
        wider.run("unit", square_trial, make_specs(7))
        assert wider.last_stats.trials_cached == 4
        assert wider.last_stats.trials_executed == 3

    def test_grid_shift_keeps_cache_hits(self, tmp_path):
        # Widening a sweep shifts trial indices; cached trials whose
        # (seed, params) are unchanged must still hit.
        base = [
            TrialSpec("unit", i, seed=10 + i, params={"v": i}) for i in range(3)
        ]
        ParallelRunner(cache_dir=tmp_path).run("unit", square_trial, base)
        widened = [TrialSpec("unit", 0, seed=99, params={"v": 99})] + [
            TrialSpec("unit", i + 1, seed=10 + i, params={"v": i})
            for i in range(3)
        ]
        runner = ParallelRunner(cache_dir=tmp_path)
        results = runner.run("unit", square_trial, widened)
        assert runner.last_stats.trials_cached == 3
        assert runner.last_stats.trials_executed == 1
        assert [r["value"] for r in results] == [99 ** 2, 100, 121, 144]

    def test_seed_none_trials_are_never_cached(self, tmp_path):
        specs = [TrialSpec("unit", i, seed=None) for i in range(3)]
        for _ in range(2):
            runner = ParallelRunner(cache_dir=tmp_path)
            runner.run("unit", index_trial, specs)
            # fresh random draws by contract: always executed, never stored
            assert runner.last_stats.trials_executed == 3
            assert runner.last_stats.trials_cached == 0
        assert not list(tmp_path.iterdir())

    def test_code_version_change_invalidates(self, tmp_path):
        specs = make_specs(3)
        ParallelRunner(cache_dir=tmp_path, code_version="v1").run(
            "unit", square_trial, specs
        )
        stale = ParallelRunner(cache_dir=tmp_path, code_version="v2")
        stale.run("unit", square_trial, specs)
        assert stale.last_stats.trials_executed == 3

    def test_param_change_invalidates(self, tmp_path):
        ParallelRunner(cache_dir=tmp_path).run(
            "unit", square_trial, make_specs(3)
        )
        changed = [
            TrialSpec("unit", i, seed=i + 3, params={"tag": "other"})
            for i in range(3)
        ]
        runner = ParallelRunner(cache_dir=tmp_path)
        runner.run("unit", square_trial, changed)
        assert runner.last_stats.trials_executed == 3

    def test_truncated_entry_is_a_miss_and_repaired(self, tmp_path):
        # A torn write (killed run, full disk) leaves a JSON prefix; the
        # cache must re-execute the shard, not crash or return garbage.
        specs = make_specs(3)
        ParallelRunner(cache_dir=tmp_path).run("unit", square_trial, specs)
        for entry in (tmp_path / "unit").iterdir():
            text = entry.read_text()
            entry.write_text(text[: len(text) // 2])
        runner = ParallelRunner(cache_dir=tmp_path)
        results = runner.run("unit", square_trial, specs)
        assert runner.last_stats.trials_executed == 3
        assert [r["value"] for r in results] == [9, 16, 25]
        again = ParallelRunner(cache_dir=tmp_path)
        again.run("unit", square_trial, specs)
        assert again.last_stats.trials_executed == 0

    def test_empty_entry_is_a_miss(self, tmp_path):
        specs = make_specs(2)
        ParallelRunner(cache_dir=tmp_path).run("unit", square_trial, specs)
        for entry in (tmp_path / "unit").iterdir():
            entry.write_text("")
        runner = ParallelRunner(cache_dir=tmp_path)
        runner.run("unit", square_trial, specs)
        assert runner.last_stats.trials_executed == 2

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        # Valid JSON that is not a shard document (or disagrees with the
        # shard's trial identities) must be ignored, never trusted.
        specs = make_specs(2)
        ParallelRunner(cache_dir=tmp_path).run("unit", square_trial, specs)
        entries = sorted((tmp_path / "unit").iterdir())
        entries[0].write_text(json.dumps({"format": "alien/9", "payloads": [1]}))
        document = json.loads(entries[1].read_text())
        document["trials"][0]["seed"] = 10_000
        entries[1].write_text(json.dumps(document))
        runner = ParallelRunner(cache_dir=tmp_path)
        results = runner.run("unit", square_trial, specs)
        assert runner.last_stats.trials_executed == 2
        assert [r["value"] for r in results] == [9, 16]

    def test_code_version_hash_tracks_source_content(self, tmp_path):
        # The invalidation key is a content hash: editing any source
        # must change it, touching nothing must not.
        tree = tmp_path / "pkg"
        tree.mkdir()
        (tree / "mod.py").write_text("A = 1\n")
        first = compute_code_version(root=tree)
        assert first == compute_code_version(root=tree)
        (tree / "mod.py").write_text("A = 2\n")
        assert compute_code_version(root=tree) != first
        (tree / "extra.py").write_text("")
        assert compute_code_version(root=tree) not in (first,)

    def test_non_cacheable_trials_never_stored(self, tmp_path):
        specs = [
            TrialSpec("unit", i, seed=i + 3, cacheable=False) for i in range(3)
        ]
        for _ in range(2):
            runner = ParallelRunner(cache_dir=tmp_path)
            runner.run("unit", square_trial, specs)
            assert runner.last_stats.trials_executed == 3
            assert runner.last_stats.trials_cached == 0
        assert not list(tmp_path.iterdir())

    def test_cacheable_flag_is_not_identity(self, tmp_path):
        # cacheable is bookkeeping: flipping it must not re-key the cache.
        a = TrialSpec("unit", 0, seed=1, cacheable=True)
        b = TrialSpec("unit", 0, seed=1, cacheable=False)
        assert a.identity() == b.identity()
        assert a.key() == b.key()

    def test_corrupt_entry_is_a_miss_and_repaired(self, tmp_path):
        specs = make_specs(2)
        ParallelRunner(cache_dir=tmp_path).run("unit", square_trial, specs)
        for entry in (tmp_path / "unit").iterdir():
            entry.write_text("{ not json")
        runner = ParallelRunner(cache_dir=tmp_path)
        results = runner.run("unit", square_trial, specs)
        assert runner.last_stats.trials_executed == 2
        assert [r["value"] for r in results] == [9, 16]
        # repaired entries hit again
        again = ParallelRunner(cache_dir=tmp_path)
        again.run("unit", square_trial, specs)
        assert again.last_stats.trials_executed == 0

    def test_entries_are_valid_json_documents(self, tmp_path):
        ParallelRunner(cache_dir=tmp_path).run(
            "unit", square_trial, make_specs(1)
        )
        (entry,) = (tmp_path / "unit").iterdir()
        document = json.loads(entry.read_text())
        assert document["format"] == "repro-shard/1"
        assert document["experiment"] == "unit"
        assert len(document["payloads"]) == len(document["trials"]) == 1


class TestWorkerFailure:
    def test_sequential_crash_carries_traceback(self):
        with pytest.raises(ShardExecutionError, match="probe storm"):
            ParallelRunner(n_jobs=1).run("unit", fragile_trial, make_specs(4))

    def test_parallel_crash_carries_traceback(self):
        with pytest.raises(ShardExecutionError, match="probe storm"):
            ParallelRunner(n_jobs=2).run("unit", fragile_trial, make_specs(4))

    def test_every_backend_carries_worker_traceback_verbatim(self):
        # The worker-side traceback — file, line, exception text — must
        # survive every transport (in-process, pickle, pool future) and
        # land verbatim in the ShardExecutionError message.
        for backend in ("serial", "process", "thread"):
            with pytest.raises(ShardExecutionError) as excinfo:
                ParallelRunner(n_jobs=2, backend=backend).run(
                    "unit", fragile_trial, make_specs(4)
                )
            error = excinfo.value
            assert "ValueError: probe storm in trial 2" in error.worker_traceback
            assert "Traceback (most recent call last)" in error.worker_traceback
            assert "fragile_trial" in error.worker_traceback
            assert error.worker_traceback in str(error)

    def test_thread_backend_chains_original_exception(self):
        # Threads share the process, so (like serial) the live exception
        # must ride along as __cause__, not be flattened to text.
        with pytest.raises(ShardExecutionError) as excinfo:
            ParallelRunner(n_jobs=2, backend="thread").run(
                "unit", fragile_trial, make_specs(4)
            )
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_process_backend_error_is_text_only(self):
        # Across the process boundary arbitrary exceptions are not
        # guaranteed picklable: text is the contract, __cause__ stays
        # empty.  (Documents the asymmetry rather than hiding it.)
        with pytest.raises(ShardExecutionError) as excinfo:
            ParallelRunner(n_jobs=2, backend="process").run(
                "unit", fragile_trial, make_specs(4)
            )
        assert excinfo.value.__cause__ is None

    def test_failed_shard_is_not_cached(self, tmp_path):
        runner = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        with pytest.raises(ShardExecutionError):
            runner.run("unit", fragile_trial, make_specs(4))
        # trials before the crash were cached; the failed one was not
        retry = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        with pytest.raises(ShardExecutionError):
            retry.run("unit", fragile_trial, make_specs(4))
        assert retry.last_stats.trials_cached == 2

    def test_error_names_backend_and_cache_state(self, tmp_path):
        runner = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        with pytest.raises(ShardExecutionError) as excinfo:
            runner.run("unit", fragile_trial, make_specs(4))
        error = excinfo.value
        assert error.backend == "serial"
        assert error.cache_dir == str(tmp_path)
        assert error.shards_total == 4
        assert error.shards_completed == 2  # shards 0 and 1 ran and stored
        assert "re-invoke the same command" in str(error)
        assert str(tmp_path) in str(error)

    def test_error_counts_only_persisted_shards(self, tmp_path):
        # Executed-but-never-stored shards (seed=None / cacheable=False)
        # must not be reported as resumable.
        specs = [
            TrialSpec("unit", 0, seed=3, cacheable=False),
            TrialSpec("unit", 1, seed=4, cacheable=False),
            TrialSpec("unit", 2, seed=5),
            TrialSpec("unit", 3, seed=6),
        ]
        runner = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        with pytest.raises(ShardExecutionError) as excinfo:
            runner.run("unit", fragile_trial, specs)
        # shards 0/1 executed but were not cacheable; nothing persisted
        assert excinfo.value.shards_completed == 0

    def test_error_without_cache_warns_about_rerun(self):
        with pytest.raises(ShardExecutionError) as excinfo:
            ParallelRunner(n_jobs=2).run("unit", fragile_trial, make_specs(4))
        error = excinfo.value
        assert error.backend == "process"
        assert error.cache_dir is None
        assert "no shard cache configured" in str(error)

    def test_crashed_run_is_resumable_by_reinvocation(self, tmp_path):
        # The resume contract the error message promises: after the
        # crash, the same command (same cache) skips every shard that
        # completed and only executes the remainder.
        crashed = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        with pytest.raises(ShardExecutionError):
            crashed.run("unit", fragile_trial, make_specs(4))
        resumed = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        results = resumed.run("unit", index_trial, make_specs(4))
        assert resumed.last_stats.trials_cached == 2
        assert resumed.last_stats.trials_executed == 2
        assert [r["ok"] for r in results[:2]] == [0, 1]


class TestExperimentAcceptance:
    """The ISSUE's acceptance bar, pinned on the real fig5 campaign."""

    @staticmethod
    def fig5_data(runner):
        result = EXPERIMENTS["fig5"](scale="tiny", seed=0, runner=runner)
        return json_roundtrip(
            {
                "lia_dr": {str(m): v for m, v in result.data["lia_dr"].items()},
                "lia_fpr": {str(m): v for m, v in result.data["lia_fpr"].items()},
                "scfs_dr": result.data["scfs_dr"],
                "scfs_fpr": result.data["scfs_fpr"],
            }
        )

    def test_fig5_runner_matches_sequential_and_skips_on_rerun(self, tmp_path):
        sequential = self.fig5_data(runner=None)

        runner = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        assert self.fig5_data(runner) == sequential
        assert runner.last_stats.trials_executed == 2

        rerun = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        assert self.fig5_data(rerun) == sequential
        assert rerun.last_stats.trials_executed == 0
        assert rerun.last_stats.shards_cached == rerun.last_stats.shards_total

    def test_fig5_parallel_matches_sequential(self):
        assert self.fig5_data(ParallelRunner(n_jobs=2)) == self.fig5_data(None)

    def test_fig5_backends_payload_identical(self):
        # The ISSUE's acceptance bar: thread and process backends are
        # byte-identical to the sequential run.
        sequential = self.fig5_data(ParallelRunner(n_jobs=1))
        for backend in ("thread", "process"):
            got = self.fig5_data(ParallelRunner(n_jobs=2, backend=backend))
            assert got == sequential

    def test_fig5_streamed_store_payload_identical(self, tmp_path):
        sequential = self.fig5_data(ParallelRunner(n_jobs=1))
        streamed = ParallelRunner(n_jobs=1, store_dir=tmp_path)
        assert self.fig5_data(streamed) == sequential
        assert list(tmp_path.glob("fig5-*.jsonl"))

    def test_table2_parallel_matches_sequential(self):
        seq = EXPERIMENTS["table2"](scale="tiny", seed=0)
        par = EXPERIMENTS["table2"](
            scale="tiny", seed=0, runner=ParallelRunner(n_jobs=4)
        )
        for kind in seq.data:
            assert seq.data[kind]["dr"] == par.data[kind]["dr"]
            assert seq.data[kind]["fpr"] == par.data[kind]["fpr"]
