"""The parallel sharded runner: determinism, caching, failure paths.

The acceptance bar: a fig5-style campaign run through ``ParallelRunner``
with ``n_jobs=1`` reproduces the sequential harness seed for seed, every
``n_jobs`` value agrees with every other, and a cached re-run skips all
completed shards.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import EXPERIMENTS
from repro.runner import (
    ParallelRunner,
    ShardExecutionError,
    TrialSpec,
    shard_key,
    shard_specs,
)
from repro.runner.spec import json_roundtrip


def square_trial(spec: TrialSpec) -> dict:
    """Module-level so worker processes can unpickle it by reference."""
    return {"value": spec.seed ** 2, "tag": spec.params.get("tag")}


def fragile_trial(spec: TrialSpec) -> dict:
    if spec.index == 2:
        raise ValueError("probe storm in trial 2")
    return {"ok": spec.index}


def messy_trial(spec: TrialSpec) -> dict:
    # Tuples and int keys: JSON normalisation must canonicalise these.
    return {"pair": (1, 2), "by_m": {10: 0.5}}


def index_trial(spec: TrialSpec) -> dict:
    return {"index": spec.index}


def make_specs(n: int, experiment: str = "unit") -> list:
    return [
        TrialSpec(experiment, i, seed=i + 3, params={"tag": f"t{i % 2}"})
        for i in range(n)
    ]


class TestSpecs:
    def test_key_stable_and_param_sensitive(self):
        a = TrialSpec("e", 0, seed=1, params={"x": 1, "y": [1, 2]})
        b = TrialSpec("e", 0, seed=1, params={"y": [1, 2], "x": 1})
        c = TrialSpec("e", 0, seed=1, params={"x": 2, "y": [1, 2]})
        assert a.key() == b.key()  # dict order is not identity
        assert a.key() != c.key()

    def test_sharding_is_independent_of_jobs(self):
        specs = make_specs(7)
        assert [len(s) for s in shard_specs(specs, 1)] == [1] * 7
        assert [len(s) for s in shard_specs(specs, 3)] == [3, 3, 1]
        with pytest.raises(ValueError):
            shard_specs(specs, 0)

    def test_shard_key_mixes_code_version(self):
        shard = make_specs(2)[:1]
        assert shard_key("e", shard, "v1") != shard_key("e", shard, "v2")

    def test_runner_rejects_bad_indices(self):
        specs = [TrialSpec("e", 0, seed=1), TrialSpec("e", 2, seed=1)]
        with pytest.raises(ValueError, match="0..n-1"):
            ParallelRunner().run("e", square_trial, specs)

    def test_runner_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            ParallelRunner(n_jobs=0)

    def test_runner_rejects_below_minus_one(self):
        # -1 means "all cores"; other negatives are typos, not requests
        with pytest.raises(ValueError):
            ParallelRunner(n_jobs=-5)
        assert ParallelRunner(n_jobs=-1).n_jobs >= 1


class TestDeterminismAcrossJobs:
    def test_parallel_matches_sequential(self):
        specs = make_specs(9)
        expected = ParallelRunner(n_jobs=1).run("unit", square_trial, specs)
        for n_jobs in (2, 4):
            got = ParallelRunner(n_jobs=n_jobs).run("unit", square_trial, specs)
            assert got == expected
        got = ParallelRunner(n_jobs=2, shard_size=4).run(
            "unit", square_trial, specs
        )
        assert got == expected

    def test_arrival_order_recorded_but_merge_is_index_order(self):
        specs = make_specs(6)
        runner = ParallelRunner(n_jobs=3)
        results = runner.run("unit", square_trial, specs)
        assert [r["value"] for r in results] == [(i + 3) ** 2 for i in range(6)]
        assert sorted(runner.last_stats.arrival_order) == list(range(6))

    def test_payloads_are_json_normalised_without_cache(self):
        (result,) = ParallelRunner().run(
            "unit", messy_trial, [TrialSpec("unit", 0, seed=1)]
        )
        assert result == {"pair": [1, 2], "by_m": {"10": 0.5}}
        assert result == json_roundtrip(result)


class TestShardCache:
    def test_second_run_skips_all_shards(self, tmp_path):
        specs = make_specs(5)
        first = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        a = first.run("unit", square_trial, specs)
        assert first.last_stats.trials_executed == 5

        second = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        b = second.run("unit", square_trial, specs)
        assert b == a
        assert second.last_stats.trials_executed == 0
        assert second.last_stats.trials_cached == 5

    def test_cache_shared_across_jobs_values(self, tmp_path):
        specs = make_specs(6)
        ParallelRunner(n_jobs=1, cache_dir=tmp_path).run(
            "unit", square_trial, specs
        )
        parallel = ParallelRunner(n_jobs=3, cache_dir=tmp_path)
        parallel.run("unit", square_trial, specs)
        assert parallel.last_stats.shards_executed == 0

    def test_overlapping_sweep_reuses_finished_trials(self, tmp_path):
        ParallelRunner(cache_dir=tmp_path).run(
            "unit", square_trial, make_specs(4)
        )
        wider = ParallelRunner(cache_dir=tmp_path)
        wider.run("unit", square_trial, make_specs(7))
        assert wider.last_stats.trials_cached == 4
        assert wider.last_stats.trials_executed == 3

    def test_grid_shift_keeps_cache_hits(self, tmp_path):
        # Widening a sweep shifts trial indices; cached trials whose
        # (seed, params) are unchanged must still hit.
        base = [
            TrialSpec("unit", i, seed=10 + i, params={"v": i}) for i in range(3)
        ]
        ParallelRunner(cache_dir=tmp_path).run("unit", square_trial, base)
        widened = [TrialSpec("unit", 0, seed=99, params={"v": 99})] + [
            TrialSpec("unit", i + 1, seed=10 + i, params={"v": i})
            for i in range(3)
        ]
        runner = ParallelRunner(cache_dir=tmp_path)
        results = runner.run("unit", square_trial, widened)
        assert runner.last_stats.trials_cached == 3
        assert runner.last_stats.trials_executed == 1
        assert [r["value"] for r in results] == [99 ** 2, 100, 121, 144]

    def test_seed_none_trials_are_never_cached(self, tmp_path):
        specs = [TrialSpec("unit", i, seed=None) for i in range(3)]
        for _ in range(2):
            runner = ParallelRunner(cache_dir=tmp_path)
            runner.run("unit", index_trial, specs)
            # fresh random draws by contract: always executed, never stored
            assert runner.last_stats.trials_executed == 3
            assert runner.last_stats.trials_cached == 0
        assert not list(tmp_path.iterdir())

    def test_code_version_change_invalidates(self, tmp_path):
        specs = make_specs(3)
        ParallelRunner(cache_dir=tmp_path, code_version="v1").run(
            "unit", square_trial, specs
        )
        stale = ParallelRunner(cache_dir=tmp_path, code_version="v2")
        stale.run("unit", square_trial, specs)
        assert stale.last_stats.trials_executed == 3

    def test_param_change_invalidates(self, tmp_path):
        ParallelRunner(cache_dir=tmp_path).run(
            "unit", square_trial, make_specs(3)
        )
        changed = [
            TrialSpec("unit", i, seed=i + 3, params={"tag": "other"})
            for i in range(3)
        ]
        runner = ParallelRunner(cache_dir=tmp_path)
        runner.run("unit", square_trial, changed)
        assert runner.last_stats.trials_executed == 3

    def test_corrupt_entry_is_a_miss_and_repaired(self, tmp_path):
        specs = make_specs(2)
        ParallelRunner(cache_dir=tmp_path).run("unit", square_trial, specs)
        for entry in (tmp_path / "unit").iterdir():
            entry.write_text("{ not json")
        runner = ParallelRunner(cache_dir=tmp_path)
        results = runner.run("unit", square_trial, specs)
        assert runner.last_stats.trials_executed == 2
        assert [r["value"] for r in results] == [9, 16]
        # repaired entries hit again
        again = ParallelRunner(cache_dir=tmp_path)
        again.run("unit", square_trial, specs)
        assert again.last_stats.trials_executed == 0

    def test_entries_are_valid_json_documents(self, tmp_path):
        ParallelRunner(cache_dir=tmp_path).run(
            "unit", square_trial, make_specs(1)
        )
        (entry,) = (tmp_path / "unit").iterdir()
        document = json.loads(entry.read_text())
        assert document["format"] == "repro-shard/1"
        assert document["experiment"] == "unit"
        assert len(document["payloads"]) == len(document["trials"]) == 1


class TestWorkerFailure:
    def test_sequential_crash_carries_traceback(self):
        with pytest.raises(ShardExecutionError, match="probe storm"):
            ParallelRunner(n_jobs=1).run("unit", fragile_trial, make_specs(4))

    def test_parallel_crash_carries_traceback(self):
        with pytest.raises(ShardExecutionError, match="probe storm"):
            ParallelRunner(n_jobs=2).run("unit", fragile_trial, make_specs(4))

    def test_failed_shard_is_not_cached(self, tmp_path):
        runner = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        with pytest.raises(ShardExecutionError):
            runner.run("unit", fragile_trial, make_specs(4))
        # trials before the crash were cached; the failed one was not
        retry = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        with pytest.raises(ShardExecutionError):
            retry.run("unit", fragile_trial, make_specs(4))
        assert retry.last_stats.trials_cached == 2


class TestExperimentAcceptance:
    """The ISSUE's acceptance bar, pinned on the real fig5 campaign."""

    @staticmethod
    def fig5_data(runner):
        result = EXPERIMENTS["fig5"](scale="tiny", seed=0, runner=runner)
        return json_roundtrip(
            {
                "lia_dr": {str(m): v for m, v in result.data["lia_dr"].items()},
                "lia_fpr": {str(m): v for m, v in result.data["lia_fpr"].items()},
                "scfs_dr": result.data["scfs_dr"],
                "scfs_fpr": result.data["scfs_fpr"],
            }
        )

    def test_fig5_runner_matches_sequential_and_skips_on_rerun(self, tmp_path):
        sequential = self.fig5_data(runner=None)

        runner = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        assert self.fig5_data(runner) == sequential
        assert runner.last_stats.trials_executed == 2

        rerun = ParallelRunner(n_jobs=1, cache_dir=tmp_path)
        assert self.fig5_data(rerun) == sequential
        assert rerun.last_stats.trials_executed == 0
        assert rerun.last_stats.shards_cached == rerun.last_stats.shards_total

    def test_fig5_parallel_matches_sequential(self):
        assert self.fig5_data(ParallelRunner(n_jobs=2)) == self.fig5_data(None)

    def test_table2_parallel_matches_sequential(self):
        seq = EXPERIMENTS["table2"](scale="tiny", seed=0)
        par = EXPERIMENTS["table2"](
            scale="tiny", seed=0, runner=ParallelRunner(n_jobs=4)
        )
        for kind in seq.data:
            assert seq.data[kind]["dr"] == par.data[kind]["dr"]
            assert seq.data[kind]["fpr"] == par.data[kind]["fpr"]
