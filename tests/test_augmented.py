"""Tests for the augmented matrix A (Definition 1 machinery)."""

import numpy as np
import pytest

from repro.core.augmented import (
    AugmentedMatrixBuilder,
    augmented_matrix,
    augmented_rank,
    has_identifiable_variances,
    intersecting_pairs,
    num_pair_rows,
    pair_from_row_index,
    pair_row_index,
)


class TestPairIndexing:
    def test_round_trip_all_pairs(self):
        n = 13
        seen = set()
        for i in range(n):
            for j in range(i, n):
                row = pair_row_index(i, j, n)
                assert pair_from_row_index(row, n) == (i, j)
                seen.add(row)
        assert seen == set(range(num_pair_rows(n)))

    def test_vectorised_matches_scalar(self):
        n = 9
        i = np.array([0, 2, 5])
        j = np.array([3, 2, 8])
        rows = pair_row_index(i, j, n)
        for a, b, r in zip(i, j, rows):
            assert pair_row_index(int(a), int(b), n) == r

    def test_rejects_unordered(self):
        with pytest.raises(ValueError):
            pair_row_index(3, 1, 5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pair_row_index(0, 9, 5)
        with pytest.raises(ValueError):
            pair_from_row_index(num_pair_rows(5), 5)


class TestDenseAugmented:
    def test_shape(self, figure2):
        _, _, routing = figure2
        A = augmented_matrix(routing.matrix)
        assert A.shape == (num_pair_rows(6), 8)

    def test_rows_are_elementwise_products(self, figure2):
        _, _, routing = figure2
        R = routing.to_dense()
        A = augmented_matrix(routing.matrix)
        n = routing.num_paths
        for i in range(n):
            for j in range(i, n):
                row = pair_row_index(i, j, n)
                assert np.array_equal(A[row], R[i] * R[j])

    def test_diagonal_rows_equal_r(self, figure1):
        _, _, routing = figure1
        A = augmented_matrix(routing.matrix)
        n = routing.num_paths
        for i in range(n):
            assert np.array_equal(
                A[pair_row_index(i, i, n)], routing.to_dense()[i]
            )


class TestIntersectingPairs:
    def test_matches_nonzero_dense_rows(self, figure2):
        _, _, routing = figure2
        dense = augmented_matrix(routing.matrix)
        pairs = intersecting_pairs(routing.matrix)
        n = routing.num_paths
        nonzero_rows = {
            r for r in range(dense.shape[0]) if dense[r].any()
        }
        built_rows = {
            pair_row_index(int(i), int(j), n)
            for i, j in zip(pairs.pair_i, pairs.pair_j)
        }
        assert built_rows == nonzero_rows
        # And the contents agree row by row.
        for k, (i, j) in enumerate(zip(pairs.pair_i, pairs.pair_j)):
            row = pair_row_index(int(i), int(j), n)
            assert np.array_equal(
                pairs.matrix[k].toarray().ravel(), dense[row]
            )

    def test_tree_pairs(self, small_tree):
        _, _, routing = small_tree
        pairs = intersecting_pairs(routing.matrix)
        assert pairs.num_links == routing.num_links
        # Every diagonal pair intersects itself.
        assert pairs.num_pairs >= routing.num_paths

    def test_zero_coverage_rejected(self):
        with pytest.raises(ValueError):
            intersecting_pairs(np.zeros((3, 2), dtype=np.uint8))


class TestRankAndIdentifiability:
    def test_figure_examples_identifiable(self, figure1, figure2):
        for _, _, routing in (figure1, figure2):
            assert has_identifiable_variances(routing.matrix)

    def test_tree_full_rank(self, small_tree):
        _, _, routing = small_tree
        assert augmented_rank(routing.matrix) == routing.num_links

    def test_duplicate_columns_not_identifiable(self):
        # Two identical columns (alias links) can never be separated.
        R = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        assert not has_identifiable_variances(R)


class TestBuilder:
    def test_incremental_matches_batch(self, figure2):
        _, _, routing = figure2
        builder = AugmentedMatrixBuilder(routing.num_links)
        for i in range(routing.num_paths):
            builder.add_path(np.flatnonzero(routing.matrix[i]))
        built = builder.build()
        direct = intersecting_pairs(routing.matrix)
        assert np.array_equal(
            built.matrix.toarray(), direct.matrix.toarray()
        )

    def test_remove_path(self, figure2):
        _, _, routing = figure2
        builder = AugmentedMatrixBuilder(routing.num_links)
        for i in range(routing.num_paths):
            builder.add_path(np.flatnonzero(routing.matrix[i]))
        builder.remove_path(0)
        assert builder.num_paths == routing.num_paths - 1
        rebuilt = builder.routing_matrix()
        assert np.array_equal(rebuilt, routing.matrix[1:])

    def test_caching(self, figure1):
        _, _, routing = figure1
        builder = AugmentedMatrixBuilder(routing.num_links)
        builder.add_path([0, 1])
        first = builder.build()
        assert builder.build() is first  # cached
        builder.add_path([0, 2])
        assert builder.build() is not first  # invalidated

    def test_invalid_paths_rejected(self):
        builder = AugmentedMatrixBuilder(4)
        with pytest.raises(ValueError):
            builder.add_path([])
        with pytest.raises(ValueError):
            builder.add_path([7])
        with pytest.raises(IndexError):
            builder.remove_path(0)
