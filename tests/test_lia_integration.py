"""End-to-end integration tests of the LIA pipeline."""

import numpy as np
import pytest

from repro import LossInferenceAlgorithm, ProberConfig, ProbingSimulator
from repro.lossmodel import LLRD1, LLRD2
from repro.metrics import evaluate_location


class TestTreePipeline:
    @pytest.fixture(scope="class")
    def outcome(self, small_tree, tree_campaign):
        _, _, routing = small_tree
        lia = LossInferenceAlgorithm(routing)
        result = lia.run(tree_campaign)
        target = tree_campaign[-1]
        return routing, result, target

    def test_detection_quality(self, outcome):
        routing, result, target = outcome
        metrics = evaluate_location(
            result.loss_rates,
            target.virtual_congested(routing),
            routing,
            LLRD1.threshold,
        )
        assert metrics.detection_rate >= 0.85
        assert metrics.false_positive_rate <= 0.25

    def test_rate_accuracy_on_congested(self, outcome):
        routing, result, target = outcome
        realized = target.realized_virtual_loss_rates(routing)
        congested = target.virtual_congested(routing)
        found = congested & (result.loss_rates > LLRD1.threshold)
        if found.any():
            errors = np.abs(result.loss_rates[found] - realized[found])
            assert np.median(errors) < 0.02

    def test_good_links_near_zero(self, outcome):
        routing, result, target = outcome
        good = ~target.virtual_congested(routing)
        assert np.median(result.loss_rates[good]) < 1e-3

    def test_transmission_rates_valid(self, outcome):
        _, result, _ = outcome
        assert (result.transmission_rates > 0).all()
        assert (result.transmission_rates <= 1).all()

    def test_congested_links_mask(self, outcome):
        _, result, _ = outcome
        mask = result.congested_links(0.002)
        assert mask.sum() == (result.loss_rates > 0.002).sum()


class TestMeshPipeline:
    def test_planetlab_like_end_to_end(self, small_mesh):
        topo, paths, routing = small_mesh
        config = ProberConfig(
            probes_per_snapshot=500, congestion_probability=0.10
        )
        sim = ProbingSimulator(
            paths, topo.network.num_links, config=config
        )
        campaign = sim.run_campaign(26, routing, seed=5)
        result = LossInferenceAlgorithm(routing).run(campaign)
        target = campaign[-1]
        metrics = evaluate_location(
            result.loss_rates,
            target.virtual_congested(routing),
            routing,
            LLRD1.threshold,
        )
        assert metrics.detection_rate >= 0.8
        assert metrics.false_positive_rate <= 0.35

    def test_llrd2_model_works(self, small_mesh):
        topo, paths, routing = small_mesh
        sim = ProbingSimulator(
            paths,
            topo.network.num_links,
            model=LLRD2,
            config=ProberConfig(probes_per_snapshot=500),
        )
        campaign = sim.run_campaign(26, routing, seed=6)
        result = LossInferenceAlgorithm(routing).run(campaign)
        assert result.num_links == routing.num_links


class TestDriverPlumbing:
    def test_variance_reuse_across_snapshots(self, small_tree, tree_campaign):
        _, _, routing = small_tree
        lia = LossInferenceAlgorithm(routing)
        training, target = tree_campaign.split_training_target()
        estimate = lia.learn_variances(training)
        a = lia.infer(target, estimate)
        b = lia.infer(tree_campaign[0], estimate)
        assert a.variance_estimate is b.variance_estimate

    def test_pairs_cached(self, small_tree):
        _, _, routing = small_tree
        lia = LossInferenceAlgorithm(routing)
        assert lia.pairs is lia.pairs

    def test_mismatched_variances_rejected(self, small_tree, tree_campaign):
        _, _, routing = small_tree
        lia = LossInferenceAlgorithm(routing)
        training, target = tree_campaign.split_training_target()
        estimate = lia.learn_variances(training)
        from dataclasses import replace

        truncated = replace(estimate, variances=estimate.variances[:-1])
        with pytest.raises(ValueError):
            lia.infer(target, truncated)

    def test_invalid_construction(self, small_tree):
        _, _, routing = small_tree
        with pytest.raises(ValueError):
            LossInferenceAlgorithm(routing, variance_method="bogus")
        with pytest.raises(ValueError):
            LossInferenceAlgorithm(routing, reduction_strategy="bogus")
        with pytest.raises(ValueError):
            LossInferenceAlgorithm(routing, congestion_threshold=2.0)
        with pytest.raises(ValueError):
            LossInferenceAlgorithm(routing, cutoff_scale=-1)

    def test_explicit_num_training(self, small_tree, tree_campaign):
        _, _, routing = small_tree
        lia = LossInferenceAlgorithm(routing)
        result = lia.run(tree_campaign, num_training=10)
        assert result.num_links == routing.num_links

    @pytest.mark.parametrize("strategy", ("gap", "paper", "greedy"))
    def test_alternate_reductions_run(
        self, small_tree, tree_campaign, strategy
    ):
        _, _, routing = small_tree
        lia = LossInferenceAlgorithm(routing, reduction_strategy=strategy)
        result = lia.run(tree_campaign)
        assert result.reduction.strategy == strategy
